"""Sharded campaign driver: nationwide scale in bounded memory.

The driver splits a campaign into (day, BS-range) **shards**, fans the
shards across the pipeline executors, and keeps only each shard's
:class:`~repro.campaign.sketches.CampaignAggregate` — sessions are
synthesized into a per-process reused arena, folded into the sketches,
and dropped before the next sub-chunk is drawn.  Peak memory is bounded
by the per-worker chunk budget, never by campaign size.

Determinism and resume rest on three invariants:

* every (day, BS) unit runs on its own spawned seed stream
  (:func:`repro.core.generator.unit_seed`), so a shard's sessions are
  byte-identical to the same units' slice of any other sharding;
* sketch merges are bit-exactly associative and commutative, and the
  parent always folds shard aggregates in canonical shard-index order,
  so serial, parallel and resumed runs produce byte-identical campaign
  aggregates (same :meth:`CampaignAggregate.digest`);
* each completed shard is checkpointed through the content-keyed
  artifact cache (kind ``campaign-shard``) under a key derived from the
  models, the root seed, the shard's unit set and the sketch
  configuration — a killed run resumes exactly, recomputing only the
  shards whose checkpoints are missing or fail validation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from ..core.generator import (
    TrafficGenerator,
    clear_unit_memos,
    coerce_root_seed,
)
from ..dataset.records import SessionArena
from ..io.cache import ArtifactCache, CacheError, content_key
from ..obs.progress import ProgressTracker
from ..pipeline.context import mint_trace_id
from ..pipeline.executors import ParallelExecutor, SerialExecutor, peak_rss_mb
from .sketches import (
    DEFAULT_HLL_PRECISION,
    DEFAULT_HLL_SEED,
    SKETCH_FORMAT_VERSION,
    CampaignAggregate,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs import Telemetry

#: Artifact kind of per-shard checkpoint aggregates in the cache.
CHECKPOINT_KIND = "campaign-shard"

#: Checkpoints are canonical-JSON aggregate dumps.
CHECKPOINT_SUFFIX = ".json"

#: Default number of base stations per shard: at paper-scale arrival
#: rates one shard stays a few hundred thousand sessions — seconds of
#: work and a few MB of arena per worker.
DEFAULT_SHARD_BS = 64

#: Default per-worker sub-chunk budget (expected sessions drawn into the
#: arena at once); the worker's peak RSS scales with this, not the shard.
DEFAULT_SHARD_CHUNK_SESSIONS = 250_000

#: Per-process reusable worker state (the shard arena).  Never pickled;
#: each worker process grows its own lazily and reuses it forever.
_WORKER_STATE: dict[str, object] = {}


class CampaignError(ValueError):
    """Raised on invalid campaign configuration."""


@dataclass(frozen=True)
class Shard:
    """One unit of campaign work: a (day, BS-range) slice.

    ``index`` is the shard's position in the canonical day-major plan;
    the parent folds shard aggregates in index order so the merged
    campaign is byte-identical no matter which workers finished first.
    """

    index: int
    day: int
    bs_ids: tuple[int, ...]

    def units(self) -> list[tuple[int, int]]:
        """The shard's (day, bs_id) work units in canonical order."""
        return [(self.day, bs_id) for bs_id in self.bs_ids]


@dataclass(frozen=True)
class CampaignResult:
    """Outcome of a sharded campaign run.

    ``aggregate`` is the campaign-level statistic bundle; the shard
    counters record how much work the run actually performed versus
    resumed from checkpoints.
    """

    aggregate: CampaignAggregate
    n_shards: int
    resumed_shards: int
    computed_shards: int
    root_seed: int
    trace_id: str | None = None

    def digest(self) -> str:
        """Byte-identity fingerprint of the merged aggregate."""
        return self.aggregate.digest()

    def provenance(self) -> dict:
        """Metadata identifying the run lineage that produced the bytes."""
        return {"trace_id": self.trace_id}

    def summary(self) -> dict:
        """Headline numbers for CLI output and manifests."""
        return {
            **self.aggregate.summary(),
            "shards": self.n_shards,
            "resumed_shards": self.resumed_shards,
            "computed_shards": self.computed_shards,
            "digest": self.digest(),
            "trace_id": self.trace_id,
        }


def plan_shards(
    bs_ids: Iterable[int], n_days: int, shard_bs: int = DEFAULT_SHARD_BS
) -> list[Shard]:
    """Partition a campaign into day-major (day, BS-range) shards.

    BS identifiers are sorted first, so the plan — and therefore every
    shard's content key — is independent of the insertion order of the
    arrival-model mapping.  The plan depends only on (bs_ids, n_days,
    shard_bs), never on sampled data.
    """
    ordered = sorted(set(int(b) for b in bs_ids))
    if not ordered:
        raise CampaignError("campaign needs at least one base station")
    if n_days < 1:
        raise CampaignError("n_days must be >= 1")
    if shard_bs < 1:
        raise CampaignError("shard_bs must be >= 1")
    shards: list[Shard] = []
    for day in range(n_days):
        for lo in range(0, len(ordered), shard_bs):
            shards.append(
                Shard(
                    index=len(shards),
                    day=day,
                    bs_ids=tuple(ordered[lo : lo + shard_bs]),
                )
            )
    return shards


def _shard_arena() -> SessionArena:
    """This worker process's reusable shard arena."""
    arena = _WORKER_STATE.get("arena")
    if arena is None:
        arena = SessionArena(capacity=1 << 16)
        # repro-lint: disable-next-line=P204 -- per-process arena reuse; every sub-chunk resets it before writing
        _WORKER_STATE["arena"] = arena
    return arena


def _sub_chunks(
    generator: TrafficGenerator,
    units: Sequence[tuple[int, int]],
    chunk_sessions: int,
) -> list[list[tuple[int, int]]]:
    """Split a shard's units so each slice stays under the chunk budget.

    Uses the generator's expected per-unit session counts — a pure
    function of the models — so the split never depends on sampled data
    and cannot perturb the aggregates (which are merge-order-free
    anyway).
    """
    chunks: list[list[tuple[int, int]]] = []
    current: list[tuple[int, int]] = []
    accumulated = 0.0
    for day, bs_id in units:
        expected = generator.expected_unit_sessions(bs_id)
        if current and accumulated + expected > chunk_sessions:
            chunks.append(current)
            current, accumulated = [], 0.0
        current.append((day, bs_id))
        accumulated += expected
    chunks.append(current)
    return chunks


def _run_shard(item: tuple) -> dict:
    """Worker entry point: synthesize one shard, return its aggregate.

    ``item`` carries only the shard's own arrival models (not the whole
    campaign's), the shared mix/bank, the root seed and the sketch
    configuration — everything picklable.  Sessions stream through this
    process's reused arena in expectation-bounded sub-chunks and are
    dropped as soon as the sketches absorbed them; the return value is
    the aggregate's exact serialized form.
    """
    (
        shard,
        arrivals,
        mix,
        bank,
        root_seed,
        chunk_sessions,
        precision,
        hll_seed,
    ) = item
    generator = TrafficGenerator(arrivals, mix, bank)
    aggregate = CampaignAggregate.empty(precision=precision, seed=hll_seed)
    arena = _shard_arena()
    for units in _sub_chunks(generator, shard.units(), chunk_sessions):
        arena.reset()
        table = generator.generate_units(units, root_seed, arena=arena)
        aggregate.update_table(table)
    aggregate.count_units(len(shard.bs_ids))
    # A campaign never revisits a unit, so the engine's per-unit seed
    # memos can only grow across shards — drop them to keep long-lived
    # workers bounded by the shard.
    clear_unit_memos()
    return aggregate.to_dict()


def _shard_key(
    shard: Shard,
    arrivals: dict,
    mix,
    bank,
    root_seed: int,
    precision: int,
    hll_seed: int,
) -> str:
    """Content key of one shard's checkpoint aggregate.

    Derived from the facts that determine the aggregate's bytes: the
    shard's own models, the root seed, the unit set and the sketch
    configuration (including the serialization format version).  The
    chunk budget is deliberately excluded — chunking cannot change the
    aggregate, so re-running with a different budget still resumes.
    Scoping the models to the shard's BSs means growing the campaign
    never invalidates already-completed shards.
    """
    return content_key(
        {
            "artifact": "campaign-shard-aggregate",
            "format": SKETCH_FORMAT_VERSION,
            "mix": mix.probabilities(),
            "bank": json.loads(bank.to_json()),
            "arrivals": {str(bs_id): arrivals[bs_id] for bs_id in shard.bs_ids},
            "day": shard.day,
            "bs_ids": list(shard.bs_ids),
            "seed": root_seed,
            "hll": {"precision": precision, "seed": hll_seed},
        }
    )


def _load_checkpoint(path: Path) -> CampaignAggregate:
    """Parse and validate one checkpoint; any defect raises upstream.

    Called inside :meth:`ArtifactCache.fetch`, which converts every
    exception — truncated JSON, wrong format version, misaligned arrays —
    into a :class:`CacheError`, which the driver treats as "recompute
    this shard".
    """
    with open(path, "r", encoding="utf-8") as fh:
        return CampaignAggregate.from_dict(json.load(fh))


def _store_checkpoint(
    cache: ArtifactCache,
    key: str,
    aggregate: CampaignAggregate,
    trace_id: str | None = None,
) -> None:
    """Atomically persist one shard aggregate as canonical JSON.

    With a trace id, the checkpoint rides a ``provenance`` envelope key
    *outside* the aggregate's own serialization:
    :meth:`CampaignAggregate.from_dict` ignores unknown top-level keys,
    so resume, digests and the canonical form are untouched — but any
    spooled checkpoint names the run lineage that produced it.  The
    trace id is itself a pure function of the root seed, so same-seed
    runs still write byte-identical checkpoints.
    """
    document = aggregate.to_dict()
    if trace_id is not None:
        document["provenance"] = {"trace_id": trace_id}
    payload = json.dumps(
        document, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")

    def save(tmp: Path) -> None:
        with open(tmp, "wb") as fh:
            fh.write(payload)

    cache.store(CHECKPOINT_KIND, key, CHECKPOINT_SUFFIX, save)


def run_campaign(
    generator: TrafficGenerator,
    n_days: int,
    seed: int | np.integer | np.random.Generator,
    *,
    shard_bs: int = DEFAULT_SHARD_BS,
    chunk_sessions: int = DEFAULT_SHARD_CHUNK_SESSIONS,
    executor: SerialExecutor | ParallelExecutor | None = None,
    cache: ArtifactCache | None = None,
    resume: bool = True,
    telemetry: "Telemetry | None" = None,
    hll_precision: int = DEFAULT_HLL_PRECISION,
    hll_seed: int = DEFAULT_HLL_SEED,
    trace_id: str | None = None,
) -> CampaignResult:
    """Run a sharded campaign and return its merged aggregates.

    Shards are planned day-major over the generator's sorted BS ids
    (:func:`plan_shards`), dispatched across ``executor`` in waves, and
    checkpointed through ``cache`` as they complete.  With ``resume``
    (the default), shards whose checkpoints load and validate are folded
    straight from the cache; missing or corrupt checkpoints are
    recomputed.  ``resume=False`` recomputes everything (refreshing the
    checkpoints).  Serial, parallel and kill-then-resume runs produce
    byte-identical aggregates — same :meth:`CampaignResult.digest`.

    ``chunk_sessions`` bounds each worker's arena by expected session
    count; it shapes memory only, never the result (and is excluded from
    checkpoint keys).

    ``trace_id`` names the run lineage in checkpoints, heartbeats and the
    result; when omitted it is taken from the telemetry (minted by
    ``RunContext``) or derived from the root seed — either way a pure
    function of the seed, so provenance never perturbs byte-identity.
    With telemetry attached, the driver also maintains a live
    ``progress.json`` (atomic rewrite per wave, EWMA rates, ETA) and
    emits ``heartbeat`` events — both strictly observational.
    """
    if chunk_sessions < 1:
        raise CampaignError("chunk_sessions must be >= 1")
    root_seed = coerce_root_seed(seed)
    shards = plan_shards(generator.arrival_models, n_days, shard_bs)
    runner = executor if executor is not None else SerialExecutor()
    obs = telemetry
    if trace_id is None:
        trace_id = getattr(obs, "trace_id", None) or mint_trace_id(root_seed)

    keys: dict[int, str] = {}
    resumed: dict[int, CampaignAggregate] = {}
    pending: list[Shard] = []
    for shard in shards:
        if cache is not None:
            keys[shard.index] = _shard_key(
                shard,
                generator.arrival_models,
                generator.mix,
                generator.bank,
                root_seed,
                hll_precision,
                hll_seed,
            )
        restored = None
        if (
            cache is not None
            and resume
            and cache.has(CHECKPOINT_KIND, keys[shard.index], CHECKPOINT_SUFFIX)
        ):
            try:
                restored = cache.fetch(
                    CHECKPOINT_KIND,
                    keys[shard.index],
                    CHECKPOINT_SUFFIX,
                    _load_checkpoint,
                )
            except CacheError:
                restored = None  # corrupt or stale: recompute below
        if restored is not None:
            resumed[shard.index] = restored
        else:
            pending.append(shard)

    computed: dict[int, CampaignAggregate] = {}
    wave = max(1, getattr(runner, "jobs", 1))
    n_resumed, n_computed = len(resumed), 0
    total = CampaignAggregate.empty(precision=hll_precision, seed=hll_seed)
    folded = 0
    sessions_done = sum(a.n_sessions for a in resumed.values())
    progress = ProgressTracker(
        obs, total_shards=len(shards), trace_id=trace_id
    )
    wave_number = 0

    def beat() -> None:
        """One progress snapshot + heartbeat for the current state."""
        progress.update(
            n_resumed + n_computed,
            sessions_done,
            wave=wave_number,
            peak_rss_mb=peak_rss_mb(),
        )

    def absorb() -> None:
        """Fold every aggregate already available, in canonical order.

        The fold is streaming: as soon as the next shard (by index) has
        an aggregate — restored or freshly computed — it is merged into
        ``total`` and dropped, so the parent never retains more than one
        dispatch wave of aggregates plus any restored shards still
        waiting behind a pending one.  Merge associativity makes this
        byte-identical to a single fold at the end.
        """
        nonlocal folded
        while folded < len(shards):
            index = shards[folded].index
            if index in resumed:
                total.merge(resumed.pop(index))
            elif index in computed:
                total.merge(computed.pop(index))
            else:
                return
            folded += 1

    def dispatch(batch: list[Shard]) -> None:
        """Run one wave of shards, checkpointing each as it lands."""
        nonlocal n_computed, sessions_done
        items = [
            (
                shard,
                {bs_id: generator.arrival_models[bs_id] for bs_id in shard.bs_ids},
                generator.mix,
                generator.bank,
                root_seed,
                chunk_sessions,
                hll_precision,
                hll_seed,
            )
            for shard in batch
        ]
        for shard, payload in zip(batch, runner.map(_run_shard, items)):
            aggregate = CampaignAggregate.from_dict(payload)
            computed[shard.index] = aggregate
            n_computed += 1
            sessions_done += aggregate.n_sessions
            if cache is not None:
                _store_checkpoint(
                    cache, keys[shard.index], aggregate, trace_id
                )

    def execute() -> None:
        """Dispatch every pending shard, wave by wave, folding as we go."""
        nonlocal wave_number
        absorb()  # leading run of restored shards
        if progress.enabled:
            beat()  # wave 0: surface the resumed state immediately
        for lo in range(0, len(pending), wave):
            wave_number += 1
            dispatch(pending[lo : lo + wave])
            absorb()
            if progress.enabled:
                beat()

    if obs:
        with obs.span(
            "campaign",
            kind="campaign",
            attrs={
                "shards": len(shards),
                "resumed": len(resumed),
                "days": n_days,
                "bs": len(generator.arrival_models),
            },
        ) as span:
            execute()
            span.attrs["computed"] = n_computed
    else:
        execute()
    absorb()  # trailing run of restored shards

    if obs:
        obs.metrics.counter("campaign.shards").inc(len(shards))
        obs.metrics.counter("campaign.shards_resumed").inc(n_resumed)
        obs.metrics.counter("campaign.shards_computed").inc(n_computed)
        obs.metrics.counter("campaign.sessions").inc(total.n_sessions)
        obs.metrics.gauge("campaign.units").set(total.n_units)
        obs.metrics.gauge("campaign.distinct_estimate").set(
            round(total.distinct_sessions(), 1)
        )

    return CampaignResult(
        aggregate=total,
        n_shards=len(shards),
        resumed_shards=n_resumed,
        computed_shards=n_computed,
        root_seed=root_seed,
        trace_id=trace_id,
    )
