"""Smoke tests: every example script runs to completion.

Examples are part of the public documentation; they must not rot.  Each
runs in a subprocess with a generous timeout; the slowest (full use-case
walkthroughs) are excluded here because the benchmark suite exercises the
same entry points at equal or larger scale.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "probe_pipeline.py",
    "fit_custom_service.py",
    "packet_level_bridge.py",
    "app_layer_sessions.py",
    "model_release_roundtrip.py",
    "model_drift.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()  # every example narrates its output


def test_all_examples_are_known():
    # New example scripts must be registered here or in the slow set the
    # benches cover, so none silently escapes CI.
    known = set(FAST_EXAMPLES) | {
        "slicing_capacity_planning.py",   # covered by bench_table2_slicing
        "vran_energy.py",                 # covered by bench_fig13b
        "characterize_campaign.py",       # covered by bench_fig04/06/08
    }
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == known
