"""Documentation integrity tests.

The docs are part of the deliverable: the API reference generator must run
and cover the package, and every public item must carry a docstring.
"""

import importlib
import inspect
import pkgutil

import repro


def iter_public_items():
    modules = [repro]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        modules.append(importlib.import_module(info.name))
    for module in modules:
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue
            if inspect.isclass(obj) or inspect.isfunction(obj):
                yield f"{module.__name__}.{name}", obj


class TestDocstrings:
    def test_every_module_has_a_docstring(self):
        missing = []
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            module = importlib.import_module(info.name)
            if not inspect.getdoc(module):
                missing.append(info.name)
        assert missing == []

    def test_every_public_item_has_a_docstring(self):
        missing = [
            name for name, obj in iter_public_items() if not inspect.getdoc(obj)
        ]
        assert missing == []

    def test_every_public_method_has_a_docstring(self):
        missing = []
        for name, obj in iter_public_items():
            if not inspect.isclass(obj):
                continue
            for member_name, member in vars(obj).items():
                if member_name.startswith("_"):
                    continue
                target = member
                if isinstance(member, (classmethod, staticmethod)):
                    target = member.__func__
                elif isinstance(member, property):
                    target = member.fget
                elif not inspect.isfunction(member):
                    continue
                if target is not None and not inspect.getdoc(target):
                    missing.append(f"{name}.{member_name}")
        assert missing == []


class TestApiDocGenerator:
    def test_generator_runs_and_covers_layers(self, tmp_path, monkeypatch):
        import tools.gen_api_docs as gen

        output = tmp_path / "API.md"
        monkeypatch.setattr(gen, "OUTPUT", output)
        gen.main()
        text = output.read_text()
        for module in (
            "repro.core.volume_model",
            "repro.dataset.simulator",
            "repro.usecases.vran.binpacking",
            "repro.io.traces",
        ):
            assert f"## `{module}`" in text

    def test_committed_reference_is_fresh_enough(self):
        # The committed docs/API.md must at least mention every subpackage.
        from pathlib import Path

        text = Path("docs/API.md").read_text()
        for token in ("repro.core", "repro.dataset", "repro.analysis",
                      "repro.usecases", "repro.io"):
            assert token in text


class TestReportGenerator:
    def test_report_builds_from_artifacts(self, tmp_path, monkeypatch):
        import tools.gen_report as gen

        output_dir = tmp_path / "output"
        output_dir.mkdir()
        (output_dir / "fig03_arrivals.txt").write_text("rows here\n")
        (output_dir / "custom_extra.txt").write_text("extra artefact\n")
        report = tmp_path / "REPORT.md"
        monkeypatch.setattr(gen, "OUTPUT_DIR", output_dir)
        monkeypatch.setattr(gen, "REPORT", report)
        gen.main()
        text = report.read_text()
        assert "Fig 3" in text
        assert "rows here" in text
        assert "custom_extra" in text  # unlisted artefacts appended

    def test_report_requires_artifacts(self, tmp_path, monkeypatch):
        import pytest
        import tools.gen_report as gen

        monkeypatch.setattr(gen, "OUTPUT_DIR", tmp_path / "absent")
        with pytest.raises(SystemExit):
            gen.main()
