"""Tests for the per-(s, c, t) aggregation pipeline (Section 3.2)."""

import numpy as np
import pytest

from repro.dataset.aggregation import (
    DURATION_CENTERS,
    DURATION_EDGES,
    N_DURATION_BINS,
    AggregationError,
    DurationVolumeCurve,
    aggregate_per_bs_day,
    minute_arrival_counts,
    pooled_duration_volume,
    pooled_volume_pdf,
    service_shares,
    share_variability,
)
from repro.dataset.records import SessionTable


class TestDurationBins:
    def test_edges_cover_one_second_to_one_day(self):
        assert DURATION_EDGES[0] == 1.0
        assert DURATION_EDGES[-1] == 86400.0

    def test_centers_inside_edges(self):
        assert np.all(DURATION_CENTERS > DURATION_EDGES[:-1])
        assert np.all(DURATION_CENTERS < DURATION_EDGES[1:])


class TestDurationVolumeCurve:
    def test_observed_filters_empty_bins(self):
        means = np.zeros(N_DURATION_BINS)
        counts = np.zeros(N_DURATION_BINS)
        means[10], counts[10] = 5.0, 3.0
        curve = DurationVolumeCurve(means, counts)
        durations, volumes, weights = curve.observed()
        assert durations.size == 1
        assert volumes[0] == 5.0
        assert weights[0] == 3.0

    def test_throughput_conversion(self):
        means = np.zeros(N_DURATION_BINS)
        counts = np.zeros(N_DURATION_BINS)
        means[10], counts[10] = 5.0, 1.0
        curve = DurationVolumeCurve(means, counts)
        durations, thr = curve.throughput_mbps()
        assert thr[0] == pytest.approx(5.0 * 8.0 / durations[0])

    def test_wrong_shape_raises(self):
        with pytest.raises(AggregationError):
            DurationVolumeCurve(np.zeros(3), np.zeros(3))


class TestAggregatePerBsDay:
    def test_keys_are_unique(self, campaign_stats):
        keys = [(s.service, s.bs_id, s.day) for s in campaign_stats]
        assert len(keys) == len(set(keys))

    def test_session_counts_add_up(self, campaign, campaign_stats):
        assert sum(s.n_sessions for s in campaign_stats) == len(campaign)

    def test_volume_counts_match_n_sessions(self, campaign_stats):
        for entry in campaign_stats[:50]:
            assert entry.volume_counts.sum() == entry.n_sessions
            assert entry.dv_counts.sum() == entry.n_sessions
            assert entry.minute_counts.sum() == entry.n_sessions

    def test_volume_pdf_normalized(self, campaign_stats):
        pdf = campaign_stats[0].volume_pdf()
        assert pdf.total_mass == pytest.approx(1.0)

    def test_duration_volume_means_positive(self, campaign_stats):
        curve = campaign_stats[0].duration_volume()
        _, volumes, _ = curve.observed()
        assert np.all(volumes > 0)

    def test_empty_table_gives_no_stats(self):
        assert aggregate_per_bs_day(SessionTable.empty()) == []


class TestPooling:
    def test_pooled_pdf_equals_weighted_average(self, campaign, campaign_stats):
        """Pooling raw sessions implements Eq (2) exactly."""
        from repro.dataset.averaging import average_volume_pdf, filter_stats

        service = "Facebook"
        pooled = pooled_volume_pdf(campaign.for_service(service))
        averaged = average_volume_pdf(filter_stats(campaign_stats, service=service))
        assert np.allclose(pooled.density, averaged.density, atol=1e-9)

    def test_pooled_pdf_empty_table(self):
        assert pooled_volume_pdf(SessionTable.empty()).is_empty

    def test_pooled_curve_counts_total(self, campaign):
        sub = campaign.for_service("Netflix")
        curve = pooled_duration_volume(sub)
        assert curve.counts.sum() == len(sub)

    def test_pooled_curve_monotone_trend(self, campaign):
        # v(d) grows with duration for every service (Section 5.3).
        sub = campaign.for_service("Instagram")
        durations, volumes, counts = pooled_duration_volume(sub).observed()
        heavy = counts > 50
        log_d, log_v = np.log10(durations[heavy]), np.log10(volumes[heavy])
        slope = np.polyfit(log_d, log_v, 1)[0]
        assert slope > 0


class TestMinuteArrivalCounts:
    def test_total_matches_sessions(self, campaign, network):
        from tests.conftest import CAMPAIGN_DAYS

        bs_ids = [0, 1, 2]
        counts = minute_arrival_counts(campaign, bs_ids, CAMPAIGN_DAYS)
        assert counts.sum() == len(campaign.for_bs_ids(bs_ids))
        assert counts.size == len(bs_ids) * CAMPAIGN_DAYS * 1440

    def test_includes_zero_minutes(self, campaign):
        from tests.conftest import CAMPAIGN_DAYS

        counts = minute_arrival_counts(campaign, [0], CAMPAIGN_DAYS)
        assert (counts == 0).any()

    def test_empty_bs_list_raises(self, campaign):
        with pytest.raises(AggregationError):
            minute_arrival_counts(campaign, [], 1)


class TestShares:
    def test_service_shares_sum_to_one(self, campaign):
        shares = service_shares(campaign)
        assert sum(s for s, _ in shares.values()) == pytest.approx(1.0)
        assert sum(t for _, t in shares.values()) == pytest.approx(1.0)

    def test_shares_of_empty_table_raise(self):
        with pytest.raises(AggregationError):
            service_shares(SessionTable.empty())

    def test_share_variability_small_for_head_service(self, campaign):
        # Table 1: session-share CV is ~1 % for the dominant services.
        session_cv, traffic_cv = share_variability(campaign, "Facebook")
        assert session_cv < 0.1
        assert traffic_cv < 0.5

    def test_share_variability_unknown_service_raises(self, campaign):
        with pytest.raises(AggregationError):
            share_variability(campaign, "nope")


class TestCurveFromSessions:
    def test_matches_pooled_computation(self, campaign):
        sub = campaign.for_service("Deezer")
        direct = DurationVolumeCurve.from_sessions(
            sub.duration_s.astype(float), sub.volume_mb.astype(float)
        )
        pooled = pooled_duration_volume(sub)
        assert np.allclose(direct.mean_volume_mb, pooled.mean_volume_mb)
        assert np.allclose(direct.counts, pooled.counts)

    def test_empty_input(self):
        curve = DurationVolumeCurve.from_sessions(np.array([]), np.array([]))
        assert curve.counts.sum() == 0

    def test_misaligned_rejected(self):
        with pytest.raises(AggregationError):
            DurationVolumeCurve.from_sessions(np.ones(2), np.ones(3))

    def test_nonpositive_rejected(self):
        with pytest.raises(AggregationError):
            DurationVolumeCurve.from_sessions(
                np.array([0.0]), np.array([1.0])
            )
