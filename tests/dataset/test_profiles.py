"""Tests for the ground-truth generative profiles."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataset.profiles import (
    ANCHOR_MEAN_MB,
    MAX_DURATION_S,
    MIN_DURATION_S,
    PROFILES,
    ProfileError,
    get_profile,
)
from repro.dataset.services import SERVICES, get_service


class TestRegistry:
    def test_every_service_has_a_profile(self):
        assert set(PROFILES) == {s.name for s in SERVICES}

    def test_get_profile_unknown_raises(self):
        with pytest.raises(ProfileError):
            get_profile("nope")

    def test_mean_volume_solves_table1_traffic_ratio(self):
        # The profile mean is solved so that session_share * mean_volume
        # reproduces the Table 1 traffic shares (with ANCHOR_MEAN_MB = 8).
        for service in ("Facebook", "Netflix", "Deezer", "Gmail"):
            info = get_service(service)
            target = info.traffic_share_pct / info.session_share_pct * ANCHOR_MEAN_MB
            assert PROFILES[service].mean_volume_mb() == pytest.approx(
                target, rel=0.01
            )

    def test_betas_span_papers_range(self):
        # Fig 10: exponents span roughly 0.1 .. 1.8.
        betas = [p.beta for p in PROFILES.values()]
        assert min(betas) >= 0.1
        assert max(betas) <= 1.85
        assert max(betas) > 1.5  # video streaming super-linear exists

    def test_video_streaming_super_linear(self):
        for service in ("Netflix", "Twitch", "FB Live", "Youtube"):
            assert PROFILES[service].beta > 1.0

    def test_interactive_sub_linear(self):
        for service in ("Facebook", "Amazon", "Waze", "Pokemon GO", "Uber"):
            assert PROFILES[service].beta < 1.0

    def test_netflix_has_paper_peaks(self):
        # Section 4.2: Netflix modes at ~40 MB and a drop past 200 MB.
        mus = [10**c.mu for c in PROFILES["Netflix"].mixture.components[1:]]
        assert any(abs(m - 40.0) < 1.0 for m in mus)
        assert any(abs(m - 200.0) < 5.0 for m in mus)

    def test_deezer_has_two_song_modes(self):
        mus = [10**c.mu for c in PROFILES["Deezer"].mixture.components[1:]]
        assert any(abs(m - 3.5) < 0.2 for m in mus)
        assert any(abs(m - 7.6) < 0.3 for m in mus)


class TestSampling:
    def test_volumes_positive(self):
        rng = np.random.default_rng(0)
        volumes = PROFILES["Facebook"].sample_full_volumes(rng, 1000)
        assert np.all(volumes > 0)

    def test_sample_mean_matches_analytic(self):
        rng = np.random.default_rng(1)
        profile = PROFILES["Instagram"]
        volumes = profile.sample_full_volumes(rng, 400000)
        assert volumes.mean() == pytest.approx(profile.mean_volume_mb(), rel=0.05)

    def test_duration_bounds(self):
        rng = np.random.default_rng(2)
        profile = PROFILES["Netflix"]
        volumes = profile.sample_full_volumes(rng, 10000)
        durations = profile.duration_for_volume(volumes, rng)
        assert durations.min() >= MIN_DURATION_S
        assert durations.max() <= MAX_DURATION_S

    def test_duration_noiseless_is_exact_inverse(self):
        profile = PROFILES["Deezer"]
        volumes = np.array([1.0, 5.0, 20.0])
        durations = profile.duration_for_volume(volumes)
        assert np.allclose(
            profile.expected_volume_at(durations), volumes, rtol=1e-9
        )

    def test_duration_rejects_nonpositive_volume(self):
        with pytest.raises(ProfileError):
            PROFILES["Waze"].duration_for_volume(np.array([0.0]))

    def test_power_law_anchored_at_typical_duration(self):
        profile = PROFILES["Netflix"]
        median = 10 ** profile.mixture.components[0].mu
        duration = profile.duration_for_volume(np.array([median]))[0]
        assert duration == pytest.approx(profile.typical_duration_s, rel=0.01)


@given(service=st.sampled_from([s.name for s in SERVICES]))
@settings(max_examples=31, deadline=None)
def test_property_profiles_internally_consistent(service):
    """Every profile has positive alpha, a normalized mixture and durations
    that invert the power law."""
    profile = PROFILES[service]
    assert profile.alpha > 0
    assert sum(profile.mixture.weights) == pytest.approx(1.0)
    volumes = np.array([0.5 * profile.mean_volume_mb(), profile.mean_volume_mb()])
    durations = profile.duration_for_volume(volumes)
    clipped = (durations == MIN_DURATION_S) | (durations == MAX_DURATION_S)
    recovered = profile.expected_volume_at(durations)
    assert np.allclose(recovered[~clipped], volumes[~clipped], rtol=1e-9)
