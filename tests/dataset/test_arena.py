"""SessionArena: reservation, growth, views, snapshots, memmap backing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset.records import (
    DEFAULT_ARENA_CAPACITY,
    ROW_BYTES,
    TABLE_SCHEMA,
    RecordsError,
    SessionArena,
    SessionTable,
)


def fill_rows(arena: SessionArena, n: int, *, day: int = 0) -> slice:
    """Reserve ``n`` rows and fill them with simple valid session data."""
    rows = arena.reserve(n)
    base = np.arange(n)
    arena.column("service_idx")[rows] = (base % 3).astype(np.int16)
    arena.column("bs_id")[rows] = 7
    arena.column("day")[rows] = day
    arena.column("start_minute")[rows] = (base % 1440).astype(np.int16)
    arena.column("duration_s")[rows] = 60.0
    arena.column("volume_mb")[rows] = 1.5
    arena.column("truncated")[rows] = False
    return rows


class TestReserveAndGrow:
    def test_reserve_returns_consecutive_slices(self):
        arena = SessionArena(capacity=16)
        assert arena.reserve(5) == slice(0, 5)
        assert arena.reserve(3) == slice(5, 8)
        assert len(arena) == 8

    def test_growth_preserves_filled_rows(self):
        arena = SessionArena(capacity=4)
        fill_rows(arena, 4, day=1)
        before = arena.snapshot()
        fill_rows(arena, 100, day=2)  # forces reallocation
        assert arena.capacity >= 104
        after = arena.view(0, 4)
        for spec in TABLE_SCHEMA:
            np.testing.assert_array_equal(
                getattr(after, spec.name), getattr(before, spec.name)
            )

    def test_growth_is_geometric(self):
        arena = SessionArena(capacity=8)
        arena.reserve(9)
        assert arena.capacity == 16  # doubled, not just fitted

    def test_negative_reserve_rejected(self):
        with pytest.raises(RecordsError):
            SessionArena(capacity=4).reserve(-1)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(RecordsError):
            SessionArena(capacity=0)

    def test_default_capacity(self):
        assert SessionArena().capacity == DEFAULT_ARENA_CAPACITY

    def test_columns_have_schema_dtypes(self):
        arena = SessionArena(capacity=4)
        for spec in TABLE_SCHEMA:
            assert arena.column(spec.name).dtype == spec.np_dtype


class TestReset:
    def test_reset_rewinds_without_reallocating(self):
        arena = SessionArena(capacity=32)
        fill_rows(arena, 10)
        buffer_before = arena.column("volume_mb")
        arena.reset()
        assert len(arena) == 0
        assert arena.capacity == 32
        assert arena.column("volume_mb") is buffer_before
        assert fill_rows(arena, 4) == slice(0, 4)


class TestViewsAndSnapshots:
    def test_view_is_zero_copy(self):
        arena = SessionArena(capacity=16)
        fill_rows(arena, 8)
        table = arena.view(2, 6)
        assert isinstance(table, SessionTable)
        assert len(table) == 4
        assert np.shares_memory(table.volume_mb, arena.column("volume_mb"))
        arena.column("volume_mb")[2] = 99.0
        assert table.volume_mb[0] == np.float32(99.0)

    def test_snapshot_owns_its_data(self):
        arena = SessionArena(capacity=16)
        fill_rows(arena, 8)
        table = arena.snapshot(0, 8)
        arena.column("volume_mb")[0] = 123.0
        assert table.volume_mb[0] == np.float32(1.5)

    def test_view_defaults_to_filled_region(self):
        arena = SessionArena(capacity=16)
        fill_rows(arena, 5)
        assert len(arena.view()) == 5
        assert len(arena.snapshot()) == 5

    def test_view_beyond_filled_rows_rejected(self):
        arena = SessionArena(capacity=16)
        fill_rows(arena, 5)
        with pytest.raises(RecordsError):
            arena.view(0, 6)
        with pytest.raises(RecordsError):
            arena.snapshot(4, 3)
        with pytest.raises(RecordsError):
            arena.view(-1, 2)

    def test_view_validates_on_demand(self):
        arena = SessionArena(capacity=8)
        rows = fill_rows(arena, 3)
        arena.column("duration_s")[rows] = 0.0
        table = arena.view()  # O(1), not validated
        with pytest.raises(RecordsError):
            table.validate()


class TestBudgetAndIntrospection:
    def test_from_budget_mb_capacity(self):
        arena = SessionArena.from_budget_mb(1.0)
        assert arena.capacity == (1 << 20) // ROW_BYTES
        assert arena.nbytes <= (1 << 20)

    def test_from_budget_mb_rejects_non_positive(self):
        with pytest.raises(RecordsError):
            SessionArena.from_budget_mb(0.0)

    def test_fill_ratio_and_nbytes(self):
        arena = SessionArena(capacity=10)
        assert arena.fill_ratio == 0.0
        fill_rows(arena, 5)
        assert arena.fill_ratio == pytest.approx(0.5)
        assert arena.nbytes == 10 * ROW_BYTES


class TestMemmapBacked:
    def test_columns_live_in_files(self, tmp_path):
        arena = SessionArena(capacity=8, memmap_dir=tmp_path / "arena")
        fill_rows(arena, 4)
        files = sorted(p.name for p in (tmp_path / "arena").iterdir())
        assert len(files) == len(TABLE_SCHEMA)
        assert all(name.endswith(".g1.dat") for name in files)
        assert isinstance(arena.column("volume_mb"), np.memmap)

    def test_growth_replaces_files_and_keeps_data(self, tmp_path):
        arena = SessionArena(capacity=4, memmap_dir=tmp_path / "arena")
        fill_rows(arena, 4, day=3)
        fill_rows(arena, 20, day=4)  # grow: generation 2 files
        files = sorted(p.name for p in (tmp_path / "arena").iterdir())
        assert len(files) == len(TABLE_SCHEMA)  # stale g1 files unlinked
        assert all(".g2." in name for name in files)
        table = arena.view()
        assert list(np.unique(table.day)) == [3, 4]

    def test_memmap_matches_anonymous_arena(self, tmp_path):
        plain = SessionArena(capacity=8)
        mapped = SessionArena(capacity=8, memmap_dir=tmp_path / "arena")
        fill_rows(plain, 6)
        fill_rows(mapped, 6)
        a, b = plain.snapshot(), mapped.snapshot()
        for spec in TABLE_SCHEMA:
            np.testing.assert_array_equal(
                getattr(a, spec.name), getattr(b, spec.name)
            )
