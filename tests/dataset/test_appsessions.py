"""Tests for the application-layer session extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataset.appsessions import (
    DEFAULT_APP_PROFILES,
    AppSessionError,
    AppSessionProfile,
    AppSessionTable,
    expand_app_sessions,
)
from repro.dataset.records import SERVICE_INDEX, SERVICE_NAMES, SessionTable


def arrivals(n, rng=None):
    rng = rng or np.random.default_rng(0)
    return (
        rng.integers(0, 1200, n),
        np.zeros(n, dtype=int),
        rng.integers(0, 5, n),
    )


class TestAppSessionProfile:
    def test_unknown_service_rejected(self):
        with pytest.raises(AppSessionError):
            AppSessionProfile("nope")

    def test_invalid_mean_flows_rejected(self):
        with pytest.raises(AppSessionError):
            AppSessionProfile("Facebook", mean_flows=0.5)

    def test_invalid_parallel_fraction_rejected(self):
        with pytest.raises(AppSessionError):
            AppSessionProfile("Facebook", parallel_fraction=1.5)

    def test_flow_count_mean(self):
        profile = AppSessionProfile("Facebook", mean_flows=2.5)
        counts = profile.sample_flow_counts(np.random.default_rng(1), 50000)
        assert counts.min() >= 1
        assert counts.mean() == pytest.approx(2.5, rel=0.05)

    def test_single_flow_profile(self):
        profile = AppSessionProfile("Netflix", mean_flows=1.0)
        counts = profile.sample_flow_counts(np.random.default_rng(2), 100)
        assert np.all(counts == 1)

    def test_default_profiles_cover_catalog(self):
        assert set(DEFAULT_APP_PROFILES) == set(SERVICE_NAMES)
        # Messaging services open more flows than streaming ones.
        assert (
            DEFAULT_APP_PROFILES["WhatsApp"].mean_flows
            > DEFAULT_APP_PROFILES["Netflix"].mean_flows
        )


class TestExpandAppSessions:
    def test_volume_conserved_per_app_session(self):
        rng = np.random.default_rng(3)
        minutes, day, bs = arrivals(200)
        table = expand_app_sessions("Facebook", minutes, day, bs, rng)
        app_volumes = table.app_session_volumes_mb()
        assert np.all(app_volumes > 0)
        assert table.n_app_sessions() == 200
        assert table.flows.volume_mb.sum() == pytest.approx(
            app_volumes.sum(), rel=1e-5
        )

    def test_flow_count_matches_app_ids(self):
        rng = np.random.default_rng(4)
        minutes, day, bs = arrivals(100)
        table = expand_app_sessions("Telegram", minutes, day, bs, rng)
        assert table.flows_per_app_session().sum() == len(table.flows)

    def test_all_flows_carry_the_service(self):
        rng = np.random.default_rng(5)
        minutes, day, bs = arrivals(50)
        table = expand_app_sessions("Deezer", minutes, day, bs, rng)
        assert np.all(table.flows.service_idx == SERVICE_INDEX["Deezer"])

    def test_sequential_flows_start_later(self):
        rng = np.random.default_rng(6)
        profile = AppSessionProfile(
            "Facebook", mean_flows=4.0, parallel_fraction=0.0,
            think_time_s=300.0,
        )
        minutes = np.zeros(50, dtype=int)
        table = expand_app_sessions(
            "Facebook", minutes, np.zeros(50, int), np.zeros(50, int),
            rng, profile=profile,
        )
        # With zero start minutes and long think times, later flows of
        # multi-flow sessions start at later minutes.
        assert table.flows.start_minute.max() > 0

    def test_parallel_flows_start_together(self):
        rng = np.random.default_rng(7)
        profile = AppSessionProfile(
            "App Store", mean_flows=3.0, parallel_fraction=1.0
        )
        minutes = np.full(30, 100)
        table = expand_app_sessions(
            "App Store", minutes, np.zeros(30, int), np.zeros(30, int),
            rng, profile=profile,
        )
        assert np.all(table.flows.start_minute == 100)

    def test_flow_sizes_smaller_than_app_sessions(self):
        # Splitting shifts the per-flow volume distribution left.
        rng = np.random.default_rng(8)
        minutes, day, bs = arrivals(3000)
        table = expand_app_sessions("WhatsApp", minutes, day, bs, rng)
        mean_flow = table.flows.volume_mb.mean()
        mean_app = table.app_session_volumes_mb().mean()
        assert mean_flow < mean_app

    def test_profile_service_mismatch_rejected(self):
        rng = np.random.default_rng(9)
        minutes, day, bs = arrivals(5)
        with pytest.raises(AppSessionError):
            expand_app_sessions(
                "Facebook", minutes, day, bs, rng,
                profile=AppSessionProfile("Netflix"),
            )

    def test_misaligned_columns_rejected(self):
        rng = np.random.default_rng(10)
        with pytest.raises(AppSessionError):
            expand_app_sessions(
                "Facebook", np.zeros(3, int), np.zeros(2, int),
                np.zeros(3, int), rng,
            )

    def test_first_app_id_offsets_grouping(self):
        rng = np.random.default_rng(11)
        minutes, day, bs = arrivals(10)
        table = expand_app_sessions(
            "Facebook", minutes, day, bs, rng, first_app_id=1000
        )
        assert table.app_id.min() == 1000


class TestAppSessionTable:
    def test_misaligned_app_ids_rejected(self):
        flows = SessionTable(
            service_idx=np.array([0]),
            bs_id=np.array([0]),
            day=np.array([0]),
            start_minute=np.array([0]),
            duration_s=np.array([1.0]),
            volume_mb=np.array([1.0]),
            truncated=np.array([False]),
        )
        with pytest.raises(AppSessionError):
            AppSessionTable(flows=flows, app_id=np.array([0, 1]))


@given(
    service=st.sampled_from(["Facebook", "Netflix", "Apple iCloud"]),
    n=st.integers(min_value=1, max_value=60),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=25, deadline=None)
def test_property_expansion_invariants(service, n, seed):
    """Expansion always yields >= n flows, valid minutes, positive sizes."""
    rng = np.random.default_rng(seed)
    minutes = rng.integers(0, 1440, n)
    table = expand_app_sessions(
        service, minutes, np.zeros(n, int), np.zeros(n, int), rng
    )
    assert len(table.flows) >= n
    assert table.n_app_sessions() == n
    assert table.flows.start_minute.max() <= 1439
    assert np.all(table.flows.volume_mb > 0)
    assert np.all(table.flows.duration_s >= 1.0)
