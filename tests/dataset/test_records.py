"""Tests for the columnar session table."""

import numpy as np
import pytest

from repro.dataset.records import (
    SERVICE_INDEX,
    SERVICE_NAMES,
    RecordsError,
    SessionRecord,
    SessionTable,
)


def small_table():
    return SessionTable(
        service_idx=np.array([0, 1, 0, 5]),
        bs_id=np.array([0, 0, 1, 1]),
        day=np.array([0, 0, 0, 1]),
        start_minute=np.array([10, 20, 30, 40]),
        duration_s=np.array([60.0, 120.0, 30.0, 600.0]),
        volume_mb=np.array([1.0, 2.0, 0.5, 50.0]),
        truncated=np.array([False, True, False, False]),
    )


class TestConstruction:
    def test_len(self):
        assert len(small_table()) == 4

    def test_empty(self):
        assert len(SessionTable.empty()) == 0

    def test_misaligned_columns_raise(self):
        with pytest.raises(RecordsError):
            SessionTable(
                service_idx=np.array([0, 1]),
                bs_id=np.array([0]),
                day=np.array([0, 0]),
                start_minute=np.array([0, 0]),
                duration_s=np.array([1.0, 1.0]),
                volume_mb=np.array([1.0, 1.0]),
                truncated=np.array([False, False]),
            )

    def test_negative_duration_rejected(self):
        with pytest.raises(RecordsError):
            SessionTable(
                service_idx=np.array([0]),
                bs_id=np.array([0]),
                day=np.array([0]),
                start_minute=np.array([0]),
                duration_s=np.array([-1.0]),
                volume_mb=np.array([1.0]),
                truncated=np.array([False]),
            )

    def test_bad_service_index_rejected(self):
        with pytest.raises(RecordsError):
            SessionTable(
                service_idx=np.array([len(SERVICE_NAMES)]),
                bs_id=np.array([0]),
                day=np.array([0]),
                start_minute=np.array([0]),
                duration_s=np.array([1.0]),
                volume_mb=np.array([1.0]),
                truncated=np.array([False]),
            )

    def test_bad_minute_rejected(self):
        with pytest.raises(RecordsError):
            SessionTable(
                service_idx=np.array([0]),
                bs_id=np.array([0]),
                day=np.array([0]),
                start_minute=np.array([1440]),
                duration_s=np.array([1.0]),
                volume_mb=np.array([1.0]),
                truncated=np.array([False]),
            )


class TestSelection:
    def test_select_mask(self):
        table = small_table()
        sub = table.select(table.bs_id == 1)
        assert len(sub) == 2
        assert set(sub.bs_id) == {1}

    def test_select_wrong_mask_length(self):
        with pytest.raises(RecordsError):
            small_table().select(np.array([True]))

    def test_for_service(self):
        table = small_table()
        sub = table.for_service(SERVICE_NAMES[0])
        assert len(sub) == 2

    def test_for_unknown_service_raises(self):
        with pytest.raises(RecordsError):
            small_table().for_service("nope")

    def test_for_bs_ids(self):
        assert len(small_table().for_bs_ids([0])) == 2

    def test_for_days(self):
        assert len(small_table().for_days([1])) == 1

    def test_concatenate(self):
        merged = SessionTable.concatenate([small_table(), small_table()])
        assert len(merged) == 8

    def test_concatenate_empty_list(self):
        assert len(SessionTable.concatenate([])) == 0

    SCHEMA_DTYPES = {
        "service_idx": np.int16,
        "bs_id": np.int32,
        "day": np.int16,
        "start_minute": np.int16,
        "duration_s": np.float32,
        "volume_mb": np.float32,
        "truncated": np.bool_,
    }

    def test_empty_table_has_exact_schema_dtypes(self):
        table = SessionTable.empty()
        for column, dtype in self.SCHEMA_DTYPES.items():
            assert getattr(table, column).dtype == dtype, column

    def test_concatenate_all_empty_pieces_keeps_schema(self):
        # A campaign where every BS sampled zero arrivals must still yield
        # a schema-correct empty table.
        merged = SessionTable.concatenate([SessionTable.empty()] * 5)
        assert len(merged) == 0
        for column, dtype in self.SCHEMA_DTYPES.items():
            assert getattr(merged, column).dtype == dtype, column

    def test_concatenate_empty_with_populated_keeps_schema(self):
        merged = SessionTable.concatenate(
            [SessionTable.empty(), small_table(), SessionTable.empty()]
        )
        assert len(merged) == 4
        for column, dtype in self.SCHEMA_DTYPES.items():
            assert getattr(merged, column).dtype == dtype, column


class TestDerived:
    def test_throughput(self):
        table = small_table()
        thr = table.throughput_mbps()
        assert thr[0] == pytest.approx(1.0 * 8.0 / 60.0)

    def test_total_volume(self):
        assert small_table().total_volume_mb() == pytest.approx(53.5)

    def test_rows_iteration(self):
        rows = list(small_table().rows())
        assert len(rows) == 4
        assert isinstance(rows[0], SessionRecord)
        assert rows[0].service == SERVICE_NAMES[0]
        assert rows[1].truncated

    def test_record_throughput(self):
        record = SessionRecord("Facebook", 0, 0, 10, 100.0, 5.0, False)
        assert record.throughput_mbps == pytest.approx(0.4)

    def test_record_zero_duration_throughput_raises(self):
        record = SessionRecord("Facebook", 0, 0, 10, 0.0, 100.0, False)
        with pytest.raises(RecordsError):
            record.throughput_mbps

    def test_table_zero_duration_throughput_raises(self):
        # validate=False is the only way a zero duration reaches the
        # derived quantity; it must raise instead of returning inf.
        table = SessionTable(
            np.array([0], dtype=np.int16),
            np.array([0], dtype=np.int32),
            np.array([0], dtype=np.int16),
            np.array([10], dtype=np.int16),
            np.array([0.0], dtype=np.float32),
            np.array([1.0], dtype=np.float32),
            np.array([False]),
            validate=False,
        )
        with pytest.raises(RecordsError):
            table.throughput_mbps()

    def test_service_index_consistency(self):
        for name, idx in SERVICE_INDEX.items():
            assert SERVICE_NAMES[idx] == name
