"""Tests for the two-probe measurement platform emulation (Section 3.1)."""

import pytest

from repro.dataset.collection import (
    AttachmentEvent,
    CollectionError,
    FiveTuple,
    GatewayProbe,
    Packet,
    Protocol,
    RanProbe,
    correlate,
)


def tcp_tuple(port=443):
    return FiveTuple(Protocol.TCP, "10.0.0.1", "151.101.1.1", 50000, port)


def udp_tuple(port=3478):
    return FiveTuple(Protocol.UDP, "10.0.0.2", "151.101.1.2", 50001, port)


def classifier(five_tuple):
    return "Netflix" if five_tuple.protocol is Protocol.TCP else "WhatsApp"


class TestFiveTuple:
    def test_invalid_port_rejected(self):
        with pytest.raises(CollectionError):
            FiveTuple(Protocol.TCP, "a", "b", -1, 443)

    def test_hashable_as_flow_key(self):
        assert tcp_tuple() == tcp_tuple()
        assert hash(tcp_tuple()) == hash(tcp_tuple())


class TestGatewayProbe:
    def test_single_session_reconstruction(self):
        probe = GatewayProbe(classifier)
        packets = [
            Packet(0.0, tcp_tuple(), ue_id=1, size_bytes=1000),
            Packet(5.0, tcp_tuple(), ue_id=1, size_bytes=2000),
            Packet(9.0, tcp_tuple(), ue_id=1, size_bytes=500, fin=True),
        ]
        sessions = probe.reconstruct(packets)
        assert len(sessions) == 1
        assert sessions[0].volume_bytes == 3500
        assert sessions[0].service == "Netflix"
        assert sessions[0].start_s == 0.0
        assert sessions[0].end_s == 9.0

    def test_fin_terminates_session(self):
        probe = GatewayProbe(classifier)
        packets = [
            Packet(0.0, tcp_tuple(), 1, 100, fin=True),
            Packet(1.0, tcp_tuple(), 1, 200),
        ]
        sessions = probe.reconstruct(packets)
        assert len(sessions) == 2

    def test_udp_idle_timeout_splits_sessions(self):
        probe = GatewayProbe(classifier)
        packets = [
            Packet(0.0, udp_tuple(), 2, 100),
            Packet(500.0, udp_tuple(), 2, 100),  # > 120 s UDP timeout
        ]
        sessions = probe.reconstruct(packets)
        assert len(sessions) == 2

    def test_service_specific_timeout_override(self):
        # Section 3.2: timeouts are service-specific.
        probe = GatewayProbe(classifier, timeouts_s={"WhatsApp": 1000.0})
        packets = [
            Packet(0.0, udp_tuple(), 2, 100),
            Packet(500.0, udp_tuple(), 2, 100),
        ]
        assert len(probe.reconstruct(packets)) == 1

    def test_parallel_flows_kept_apart(self):
        probe = GatewayProbe(classifier)
        packets = sorted(
            [
                Packet(0.0, tcp_tuple(443), 1, 100),
                Packet(0.5, tcp_tuple(8443), 1, 200),
                Packet(1.0, tcp_tuple(443), 1, 100),
            ],
            key=lambda p: p.timestamp_s,
        )
        sessions = probe.reconstruct(packets)
        assert len(sessions) == 2

    def test_unordered_stream_rejected(self):
        probe = GatewayProbe(classifier)
        packets = [
            Packet(5.0, tcp_tuple(), 1, 100),
            Packet(0.0, tcp_tuple(), 1, 100),
        ]
        with pytest.raises(CollectionError):
            probe.reconstruct(packets)

    def test_unknown_service_from_classifier_rejected(self):
        probe = GatewayProbe(lambda ft: "MadeUpApp")
        with pytest.raises(CollectionError):
            probe.reconstruct([Packet(0.0, tcp_tuple(), 1, 100)])


class TestRanProbe:
    def test_serving_bs_follows_handover(self):
        probe = RanProbe(
            [
                AttachmentEvent(0.0, ue_id=1, bs_id=10),
                AttachmentEvent(50.0, ue_id=1, bs_id=11),
            ]
        )
        assert probe.serving_bs(1, 10.0) == 10
        assert probe.serving_bs(1, 60.0) == 11

    def test_unknown_ue_raises(self):
        probe = RanProbe([])
        with pytest.raises(CollectionError):
            probe.serving_bs(9, 0.0)

    def test_attachment_intervals_split_at_handover(self):
        probe = RanProbe(
            [
                AttachmentEvent(0.0, 1, 10),
                AttachmentEvent(30.0, 1, 11),
            ]
        )
        intervals = probe.attachment_intervals(1, 10.0, 70.0)
        assert intervals == [(10.0, 30.0, 10), (30.0, 70.0, 11)]

    def test_single_cell_interval(self):
        probe = RanProbe([AttachmentEvent(0.0, 1, 10)])
        assert probe.attachment_intervals(1, 5.0, 25.0) == [(5.0, 25.0, 10)]


class TestCorrelate:
    def test_handover_creates_two_transport_sessions(self):
        # Section 3.2: a handover is recorded as a concluded session at the
        # old BS and a newly established one at the new BS.
        gateway = GatewayProbe(classifier)
        packets = [
            Packet(0.0, tcp_tuple(), 1, 1_000_000),
            Packet(100.0, tcp_tuple(), 1, 1_000_000, fin=True),
        ]
        sessions = gateway.reconstruct(packets)
        ran = RanProbe(
            [AttachmentEvent(0.0, 1, 10), AttachmentEvent(60.0, 1, 11)]
        )
        records = correlate(sessions, ran)
        assert len(records) == 2
        assert records[0].bs_id == 10
        assert records[1].bs_id == 11
        assert records[0].truncated
        assert not records[1].truncated
        # Volume split proportionally to time in cell.
        assert records[0].volume_mb == pytest.approx(1.2)
        assert records[1].volume_mb == pytest.approx(0.8)

    def test_stationary_session_single_record(self):
        gateway = GatewayProbe(classifier)
        sessions = gateway.reconstruct(
            [
                Packet(0.0, tcp_tuple(), 1, 500_000),
                Packet(30.0, tcp_tuple(), 1, 500_000, fin=True),
            ]
        )
        ran = RanProbe([AttachmentEvent(0.0, 1, 7)])
        records = correlate(sessions, ran)
        assert len(records) == 1
        assert records[0].bs_id == 7
        assert not records[0].truncated
        assert records[0].volume_mb == pytest.approx(1.0)

    def test_day_and_minute_attribution(self):
        gateway = GatewayProbe(classifier)
        start = 86400.0 + 3600.0  # day 1, minute 60
        sessions = gateway.reconstruct(
            [
                Packet(start, tcp_tuple(), 1, 1000),
                Packet(start + 10, tcp_tuple(), 1, 1000, fin=True),
            ]
        )
        ran = RanProbe([AttachmentEvent(0.0, 1, 3)])
        record = correlate(sessions, ran)[0]
        assert record.day == 1
        assert record.start_minute == 60


class TestServiceSpecificTimeouts:
    def test_streaming_flows_survive_longer_silences(self):
        # Netflix (streaming class): 600 s idle timeout by default.
        probe = GatewayProbe(lambda ft: "Netflix")
        packets = [
            Packet(0.0, tcp_tuple(), 1, 100),
            Packet(400.0, tcp_tuple(), 1, 100),  # > TCP default, < streaming
        ]
        assert len(probe.reconstruct(packets)) == 1

    def test_messaging_flows_time_out_quickly(self):
        # WhatsApp (messaging class): 120 s idle timeout.
        probe = GatewayProbe(lambda ft: "WhatsApp")
        packets = [
            Packet(0.0, tcp_tuple(), 1, 100),
            Packet(200.0, tcp_tuple(), 1, 100),
        ]
        assert len(probe.reconstruct(packets)) == 2

    def test_explicit_override_beats_behaviour_default(self):
        probe = GatewayProbe(lambda ft: "Netflix", timeouts_s={"Netflix": 10.0})
        packets = [
            Packet(0.0, tcp_tuple(), 1, 100),
            Packet(50.0, tcp_tuple(), 1, 100),
        ]
        assert len(probe.reconstruct(packets)) == 2
