"""Tests for the end-to-end measurement campaign simulator."""

import numpy as np
import pytest

from repro.dataset.circadian import peak_minute_mask
from repro.dataset.network import Network, NetworkConfig
from repro.dataset.records import SERVICE_INDEX
from repro.dataset.simulator import SimulationConfig, simulate


class TestSimulationConfig:
    def test_invalid_days_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(n_days=0)

    def test_invalid_chain_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(max_handover_chain=-1)

    def test_weekend_day_classification(self):
        config = SimulationConfig(n_days=9)
        assert config.weekend_days() == [5, 6]
        assert config.working_days() == [0, 1, 2, 3, 4, 7, 8]


class TestSimulate:
    def test_campaign_covers_all_days(self, campaign):
        from tests.conftest import CAMPAIGN_DAYS

        assert set(np.unique(campaign.day)) == set(range(CAMPAIGN_DAYS))

    def test_campaign_covers_all_bs(self, campaign, network):
        assert set(np.unique(campaign.bs_id)) == set(range(len(network)))

    def test_session_shares_match_table1(self, campaign):
        counts = np.bincount(campaign.service_idx, minlength=31)
        share_fb = counts[SERVICE_INDEX["Facebook"]] / counts.sum()
        assert share_fb == pytest.approx(0.366, abs=0.02)

    def test_busy_bs_serves_more_sessions(self, campaign, network):
        low = len(campaign.for_bs_ids(network.bs_ids_in_decile(0)))
        high = len(campaign.for_bs_ids(network.bs_ids_in_decile(9)))
        assert high > 10 * low

    def test_arrivals_follow_circadian_rhythm(self, campaign):
        mask = peak_minute_mask()
        minute_counts = np.bincount(campaign.start_minute, minlength=1440)
        assert minute_counts[mask].mean() > 3 * minute_counts[~mask].mean()

    def test_transient_sessions_present_with_significant_frequency(self, campaign):
        # Insight (e): partial sessions occur with significant frequency.
        assert 0.02 < campaign.truncated.mean() < 0.5

    def test_transients_populate_low_volume_head(self, campaign):
        # Section 4.2: in-transit truncation produces "many very short
        # sessions generating reduced traffic loads in the left part of the
        # distributions".  For a streaming service, the typical truncated
        # session carries far less than the typical complete one.
        netflix = campaign.for_service("Netflix")
        cut = netflix.select(netflix.truncated)
        full = netflix.select(~netflix.truncated)
        assert np.median(cut.volume_mb) < np.median(full.volume_mb)
        assert np.median(cut.duration_s) < np.median(full.duration_s)

    def test_no_continuation_variant(self, network):
        rng = np.random.default_rng(5)
        table = simulate(
            network,
            SimulationConfig(n_days=1, handover_continuation=False),
            rng,
        )
        assert len(table) > 0

    def test_reproducible_with_same_seed(self, network):
        config = SimulationConfig(n_days=1)
        a = simulate(network, config, np.random.default_rng(42))
        b = simulate(network, config, np.random.default_rng(42))
        assert len(a) == len(b)
        assert np.array_equal(a.volume_mb, b.volume_mb)

    def test_handovers_stay_within_decile(self):
        # Continuations land at cells of the same load class.
        rng = np.random.default_rng(6)
        net = Network(NetworkConfig(n_bs=20), np.random.default_rng(7))
        table = simulate(net, SimulationConfig(n_days=1), rng)
        # Low-decile cells must not show sessions far above their organic
        # volume scale at a rate that only busy-cell spillover would cause.
        low = table.for_bs_ids(net.bs_ids_in_decile(0))
        high = table.for_bs_ids(net.bs_ids_in_decile(9))
        assert len(low) < 0.1 * len(high)


class TestWeekendRates:
    def test_weekend_days_carry_fewer_arrivals(self):
        # Days 5-6 are the weekend; BS-level workload drops while the
        # session-level statistics stay put (Section 4.4).
        net = Network(NetworkConfig(n_bs=10), np.random.default_rng(20))
        table = simulate(
            net,
            SimulationConfig(n_days=7, weekend_rate_factor=0.7),
            np.random.default_rng(21),
        )
        per_day = np.bincount(table.day, minlength=7)
        workdays = per_day[[0, 1, 2, 3, 4]].mean()
        weekend = per_day[[5, 6]].mean()
        assert weekend < 0.85 * workdays

    def test_session_statistics_invariant_across_day_types(self):
        from repro.analysis.emd import emd
        from repro.dataset.aggregation import pooled_volume_pdf

        net = Network(NetworkConfig(n_bs=10), np.random.default_rng(22))
        config = SimulationConfig(n_days=7, weekend_rate_factor=0.7)
        table = simulate(net, config, np.random.default_rng(23))
        fb = table.for_service("Facebook")
        work = pooled_volume_pdf(fb.for_days(config.working_days()))
        weekend = pooled_volume_pdf(fb.for_days(config.weekend_days()))
        assert emd(work, weekend) < 0.03

    def test_invalid_weekend_factor_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(weekend_rate_factor=0.0)

    def test_rate_scale_validated(self):
        from repro.dataset.circadian import sample_day_arrival_counts

        net = Network(NetworkConfig(n_bs=10), np.random.default_rng(24))
        with pytest.raises(ValueError):
            sample_day_arrival_counts(
                net.station(0), np.random.default_rng(0), rate_scale=0.0
            )
