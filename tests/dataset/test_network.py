"""Tests for the synthetic BS population."""

import numpy as np
import pytest

from repro.dataset.network import (
    CITIES,
    FIRST_DECILE_PEAK_RATE,
    LAST_DECILE_PEAK_RATE,
    RAT,
    Network,
    NetworkConfig,
    Region,
    decile_peak_rate,
)


@pytest.fixture(scope="module")
def net():
    return Network(NetworkConfig(n_bs=100), np.random.default_rng(0))


class TestDecilePeakRate:
    def test_anchors_match_paper(self):
        # Section 5.1: 1.21 sessions/min (first decile) to 71 (last).
        assert decile_peak_rate(0) == FIRST_DECILE_PEAK_RATE
        assert decile_peak_rate(9) == LAST_DECILE_PEAK_RATE

    def test_growth_is_geometric(self):
        ratios = [
            decile_peak_rate(i + 1) / decile_peak_rate(i) for i in range(9)
        ]
        assert np.allclose(ratios, ratios[0])

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            decile_peak_rate(10)
        with pytest.raises(ValueError):
            decile_peak_rate(-1)


class TestNetworkConfig:
    def test_too_small_network_rejected(self):
        with pytest.raises(ValueError):
            NetworkConfig(n_bs=5)

    def test_region_fractions_validated(self):
        with pytest.raises(ValueError):
            NetworkConfig(urban_fraction=0.8, semi_urban_fraction=0.5)

    def test_nr_fraction_validated(self):
        with pytest.raises(ValueError):
            NetworkConfig(nr_fraction=1.5)


class TestNetwork:
    def test_population_size(self, net):
        assert len(net) == 100

    def test_deciles_equal_tenths(self, net):
        for decile in range(10):
            assert len(net.bs_ids_in_decile(decile)) == 10

    def test_peak_rates_grow_with_decile(self, net):
        means = [
            np.mean([net.station(b).peak_rate for b in net.bs_ids_in_decile(d)])
            for d in range(10)
        ]
        assert means == sorted(means)
        assert means[0] == pytest.approx(FIRST_DECILE_PEAK_RATE, rel=0.2)
        assert means[9] == pytest.approx(LAST_DECILE_PEAK_RATE, rel=0.2)

    def test_night_scale_tracks_peak_rate(self, net):
        for station in net:
            assert station.night_scale == pytest.approx(station.peak_rate / 8.0)

    def test_peak_sigma_is_tenth_of_mu(self, net):
        for station in net:
            assert station.peak_sigma == pytest.approx(station.peak_rate / 10.0)

    def test_regions_cover_population(self, net):
        total = sum(len(net.bs_ids_in_region(r)) for r in Region)
        assert total == len(net)

    def test_cities_only_in_urban_areas(self, net):
        for city in CITIES:
            for bs_id in net.bs_ids_in_city(city):
                assert net.station(bs_id).region is Region.URBAN

    def test_unknown_city_raises(self, net):
        with pytest.raises(ValueError):
            net.bs_ids_in_city("Atlantis")

    def test_rats_cover_population(self, net):
        total = sum(len(net.bs_ids_with_rat(r)) for r in RAT)
        assert total == len(net)

    def test_nr_fraction_approximate(self, net):
        nr = len(net.bs_ids_with_rat(RAT.NR))
        assert nr / len(net) == pytest.approx(0.2, abs=0.1)

    def test_peak_rates_array_indexed_by_bs_id(self, net):
        rates = net.peak_rates()
        for station in net:
            assert rates[station.bs_id] == station.peak_rate
