"""Tests for the Eq (1)/(2) statistics averaging."""

import numpy as np
import pytest

from repro.dataset.aggregation import AggregationError
from repro.dataset.averaging import (
    average_duration_volume,
    average_volume_pdf,
    filter_stats,
    total_sessions,
)


class TestFilterStats:
    def test_filter_by_service(self, campaign_stats):
        selected = filter_stats(campaign_stats, service="Netflix")
        assert selected
        assert all(s.service == "Netflix" for s in selected)

    def test_filter_by_bs(self, campaign_stats):
        selected = filter_stats(campaign_stats, bs_ids=[0, 1])
        assert {s.bs_id for s in selected} <= {0, 1}

    def test_filter_by_day(self, campaign_stats):
        selected = filter_stats(campaign_stats, days=[0])
        assert {s.day for s in selected} == {0}

    def test_combined_filter(self, campaign_stats):
        selected = filter_stats(
            campaign_stats, service="Facebook", bs_ids=[3], days=[1]
        )
        for s in selected:
            assert (s.service, s.bs_id, s.day) == ("Facebook", 3, 1)


class TestAverageVolumePdf:
    def test_average_is_normalized(self, campaign_stats):
        pdf = average_volume_pdf(filter_stats(campaign_stats, service="Facebook"))
        assert pdf.total_mass == pytest.approx(1.0)

    def test_weights_are_session_counts(self, campaign_stats):
        stats = filter_stats(campaign_stats, service="Deezer")
        pdf = average_volume_pdf(stats)
        assert pdf.n_samples == pytest.approx(total_sessions(stats))

    def test_single_entry_average_is_itself(self, campaign_stats):
        entry = filter_stats(campaign_stats, service="Facebook")[0]
        pdf = average_volume_pdf([entry])
        assert np.allclose(pdf.density, entry.volume_pdf().density)

    def test_empty_selection_raises(self):
        with pytest.raises(AggregationError):
            average_volume_pdf([])


class TestAverageDurationVolume:
    def test_average_covers_union_of_bins(self, campaign_stats):
        stats = filter_stats(campaign_stats, service="Facebook")
        merged = average_duration_volume(stats)
        observed_bins = set()
        for entry in stats:
            observed_bins |= set(np.flatnonzero(entry.dv_counts > 0))
        assert set(np.flatnonzero(merged.counts > 0)) == observed_bins

    def test_eq1_weighting(self, campaign_stats):
        # Hand-check Eq (1) on one duration bin across two entries.
        stats = filter_stats(campaign_stats, service="Instagram")[:2]
        merged = average_duration_volume(stats)
        curves = [s.duration_volume() for s in stats]
        shared = (
            (curves[0].counts > 0) & (curves[1].counts > 0)
        )
        if not shared.any():
            pytest.skip("fixture entries share no duration bin")
        b = int(np.flatnonzero(shared)[0])
        w0, w1 = stats[0].n_sessions, stats[1].n_sessions
        expected = (
            w0 * curves[0].mean_volume_mb[b] + w1 * curves[1].mean_volume_mb[b]
        ) / (w0 + w1)
        assert merged.mean_volume_mb[b] == pytest.approx(expected)

    def test_counts_accumulate(self, campaign_stats):
        stats = filter_stats(campaign_stats, service="Facebook")
        merged = average_duration_volume(stats)
        assert merged.counts.sum() == sum(s.dv_counts.sum() for s in stats)

    def test_empty_selection_raises(self):
        with pytest.raises(AggregationError):
            average_duration_volume([])


class TestTotalSessions:
    def test_total_matches_sum_of_weights(self, campaign_stats):
        from repro.dataset.averaging import total_sessions

        selected = campaign_stats[:25]
        assert total_sessions(selected) == sum(
            s.n_sessions for s in selected
        )

    def test_empty_selection_is_zero(self):
        from repro.dataset.averaging import total_sessions

        assert total_sessions([]) == 0
