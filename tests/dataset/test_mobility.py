"""Tests for the mobility model and session truncation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataset.mobility import MobilityModel, truncate_sessions


class TestMobilityModel:
    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            MobilityModel(transit_fraction=1.5)

    def test_invalid_median_rejected(self):
        with pytest.raises(ValueError):
            MobilityModel(stationary_median_s=0.0)

    def test_dwell_samples_positive(self):
        model = MobilityModel()
        dwells = model.sample_dwell_s(np.random.default_rng(0), 10000)
        assert np.all(dwells > 0)

    def test_two_populations_visible(self):
        model = MobilityModel(transit_fraction=0.5)
        dwells = model.sample_dwell_s(np.random.default_rng(1), 50000)
        short = np.mean(dwells < 600)
        assert short == pytest.approx(0.5, abs=0.03)

    def test_all_transit(self):
        model = MobilityModel(transit_fraction=1.0)
        dwells = model.sample_dwell_s(np.random.default_rng(2), 5000)
        assert np.median(dwells) == pytest.approx(model.transit_median_s, rel=0.1)

    def test_no_transit(self):
        model = MobilityModel(transit_fraction=0.0)
        dwells = model.sample_dwell_s(np.random.default_rng(3), 5000)
        assert np.median(dwells) == pytest.approx(
            model.stationary_median_s, rel=0.1
        )


class TestTruncation:
    def test_untouched_when_dwell_exceeds_duration(self):
        volumes, durations, truncated = truncate_sessions(
            np.array([10.0]), np.array([100.0]), np.array([500.0]), np.array([1.0])
        )
        assert volumes[0] == 10.0
        assert durations[0] == 100.0
        assert not truncated[0]

    def test_linear_accrual_for_beta_one(self):
        volumes, durations, truncated = truncate_sessions(
            np.array([10.0]), np.array([100.0]), np.array([50.0]), np.array([1.0])
        )
        assert truncated[0]
        assert durations[0] == 50.0
        assert volumes[0] == pytest.approx(5.0)

    def test_superlinear_accrual_backloads_volume(self):
        # beta > 1: early truncation captures less than the linear share.
        volumes, _, _ = truncate_sessions(
            np.array([10.0]), np.array([100.0]), np.array([50.0]), np.array([2.0])
        )
        assert volumes[0] == pytest.approx(2.5)

    def test_sublinear_accrual_frontloads_volume(self):
        volumes, _, _ = truncate_sessions(
            np.array([10.0]), np.array([100.0]), np.array([50.0]), np.array([0.5])
        )
        assert volumes[0] == pytest.approx(10.0 / np.sqrt(2.0))

    def test_truncated_sessions_stay_on_power_law(self):
        # The session's offset from v(d) = alpha d^beta is preserved.
        alpha, beta = 0.01, 1.4
        full_duration = np.array([1000.0])
        full_volume = alpha * full_duration**beta * 1.7  # offset 1.7
        dwell = np.array([200.0])
        volumes, durations, _ = truncate_sessions(
            full_volume, full_duration, dwell, np.array([beta])
        )
        offset = volumes / (alpha * durations**beta)
        assert offset[0] == pytest.approx(1.7)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            truncate_sessions(
                np.ones(2), np.ones(3), np.ones(2), np.ones(2)
            )


@given(
    volume=st.floats(min_value=0.01, max_value=1e4),
    duration=st.floats(min_value=1.0, max_value=1e5),
    dwell=st.floats(min_value=0.5, max_value=1e5),
    beta=st.floats(min_value=0.1, max_value=1.8),
)
@settings(max_examples=60, deadline=None)
def test_property_truncation_never_increases(volume, duration, dwell, beta):
    """Truncation can only reduce volume and duration, never below zero."""
    volumes, durations, truncated = truncate_sessions(
        np.array([volume]), np.array([duration]), np.array([dwell]), np.array([beta])
    )
    assert 0 < volumes[0] <= volume * (1 + 1e-12)
    assert 0 < durations[0] <= duration
    assert truncated[0] == (dwell < duration)
