"""Tests for the Table 1 service catalog."""

import pytest

from repro.dataset.services import (
    SERVICES,
    TABLE1_SERVICES,
    BehaviourClass,
    LiteratureCategory,
    UnknownServiceError,
    all_service_names,
    category_session_shares,
    get_service,
    services_in_category,
    session_share_fractions,
    traffic_share_fractions,
)


class TestCatalog:
    def test_31_modelled_services(self):
        # Section 5.4: models for 31 services, including all of Table 1.
        assert len(SERVICES) == 31

    def test_28_table1_rows(self):
        assert len(TABLE1_SERVICES) == 28

    def test_names_are_unique(self):
        names = all_service_names()
        assert len(names) == len(set(names))

    def test_table1_facebook_row(self):
        fb = get_service("Facebook")
        assert fb.session_share_pct == 36.52
        assert fb.session_share_cv == 1.15
        assert fb.traffic_share_pct == 32.53
        assert fb.traffic_share_cv == 1.68

    def test_table1_netflix_row(self):
        nf = get_service("Netflix")
        assert nf.session_share_pct == 2.40
        assert nf.traffic_share_pct == 11.10

    def test_unknown_service_raises(self):
        with pytest.raises(UnknownServiceError):
            get_service("TikTak")

    def test_session_shares_roughly_total_100(self):
        total = sum(s.session_share_pct for s in SERVICES)
        assert total == pytest.approx(100.0, abs=1.0)

    def test_traffic_shares_roughly_total_100(self):
        total = sum(s.traffic_share_pct for s in SERVICES)
        assert total == pytest.approx(100.0, abs=1.0)


class TestFractions:
    def test_session_fractions_are_a_distribution(self):
        fractions = session_share_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert all(f >= 0 for f in fractions.values())

    def test_traffic_fractions_are_a_distribution(self):
        fractions = traffic_share_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_fraction_ordering_matches_table(self):
        fractions = session_share_fractions()
        assert fractions["Facebook"] > fractions["Instagram"] > fractions["Uber"]


class TestCategories:
    def test_every_service_categorized(self):
        members = [
            name
            for category in LiteratureCategory
            for name in services_in_category(category)
        ]
        assert sorted(members) == sorted(all_service_names())

    def test_movie_streaming_is_netflix(self):
        # Section 6.1.1 aggregation: MS carries ~2.24 % of sessions, which
        # in Table 1 is the Netflix share.
        assert services_in_category(LiteratureCategory.MOVIE_STREAMING) == [
            "Netflix"
        ]

    def test_category_shares_sum_to_one(self):
        shares = category_session_shares()
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_behaviour_classes_cover_catalog(self):
        classes = {s.behaviour for s in SERVICES}
        assert classes == set(BehaviourClass)

    def test_streaming_services_marked_streaming(self):
        for name in ("Netflix", "Twitch", "Deezer", "FB Live", "Spotify"):
            assert get_service(name).behaviour is BehaviourClass.STREAMING
