"""Tests for the bounded-memory streaming aggregation."""

import numpy as np
import pytest

from repro.dataset.network import Network, NetworkConfig
from repro.dataset.simulator import SimulationConfig
from repro.dataset.streaming import (
    CampaignAccumulator,
    StreamingError,
    simulate_aggregated,
)


class TestCampaignAccumulator:
    def test_matches_pooled_aggregation(self, campaign):
        from repro.dataset.aggregation import (
            pooled_duration_volume,
            pooled_volume_pdf,
        )

        accumulator = CampaignAccumulator()
        # Feed the campaign in awkward batch sizes.
        edges = [0, 1000, 5000, len(campaign)]
        index = np.arange(len(campaign))
        for lo, hi in zip(edges[:-1], edges[1:]):
            accumulator.update(
                campaign.select((index >= lo) & (index < hi))
            )

        assert accumulator.n_sessions == len(campaign)
        for service in ("Facebook", "Netflix"):
            streamed = accumulator.volume_pdf(service)
            pooled = pooled_volume_pdf(campaign.for_service(service))
            assert np.allclose(streamed.density, pooled.density)
            streamed_curve = accumulator.duration_volume(service)
            pooled_curve = pooled_duration_volume(campaign.for_service(service))
            assert np.allclose(
                streamed_curve.mean_volume_mb, pooled_curve.mean_volume_mb
            )

    def test_shares_match_table_computation(self, campaign):
        from repro.dataset.aggregation import service_shares

        accumulator = CampaignAccumulator()
        accumulator.update(campaign)
        streamed = accumulator.service_shares()
        direct = service_shares(campaign)
        for name in ("Facebook", "Deezer"):
            assert streamed[name][0] == pytest.approx(direct[name][0])
            assert streamed[name][1] == pytest.approx(direct[name][1], rel=1e-5)

    def test_truncated_fraction(self, campaign):
        accumulator = CampaignAccumulator()
        accumulator.update(campaign)
        assert accumulator.truncated_fraction == pytest.approx(
            float(campaign.truncated.mean())
        )

    def test_empty_accumulator_raises(self):
        accumulator = CampaignAccumulator()
        with pytest.raises(StreamingError):
            accumulator.service_shares()
        with pytest.raises(StreamingError):
            accumulator.truncated_fraction

    def test_empty_batch_is_noop(self):
        from repro.dataset.records import SessionTable

        accumulator = CampaignAccumulator()
        accumulator.update(SessionTable.empty())
        assert accumulator.n_sessions == 0

    def test_arrival_histogram_growth(self):
        accumulator = CampaignAccumulator()
        counts = np.zeros(1440, dtype=int)
        counts[0] = 500  # forces histogram growth past the initial size
        accumulator.update_arrivals(3, counts)
        pmf = accumulator.arrival_count_pmf(3)
        assert pmf[500] > 0
        assert pmf.sum() == pytest.approx(1.0)

    def test_arrival_pmf_unknown_decile_raises(self):
        with pytest.raises(StreamingError):
            CampaignAccumulator().arrival_count_pmf(0)

    def test_bad_minute_counts_rejected(self):
        with pytest.raises(StreamingError):
            CampaignAccumulator().update_arrivals(0, np.zeros(10))


class TestSimulateAggregated:
    @pytest.fixture(scope="class")
    def accumulator(self):
        network = Network(NetworkConfig(n_bs=10), np.random.default_rng(0))
        return simulate_aggregated(
            network, SimulationConfig(n_days=2), np.random.default_rng(1)
        )

    def test_produces_sessions(self, accumulator):
        assert accumulator.n_sessions > 10_000

    def test_statistics_match_materialized_simulation(self, accumulator):
        # Same network/seed structure at small scale: shares and shapes
        # agree with the materializing simulator within sampling noise.
        from repro.dataset.simulator import simulate

        network = Network(NetworkConfig(n_bs=10), np.random.default_rng(0))
        table = simulate(
            network,
            SimulationConfig(n_days=2, handover_continuation=False),
            np.random.default_rng(2),
        )
        streamed = accumulator.service_shares()["Facebook"][0]
        from repro.dataset.aggregation import service_shares

        direct = service_shares(table)["Facebook"][0]
        assert streamed == pytest.approx(direct, rel=0.05)

    def test_arrival_pmf_is_bimodal(self, accumulator):
        # Decile 10: night Pareto (scale ~9) and day Gaussian (mu ~73)
        # modes with a depleted valley in between (Fig 3's bi-modality).
        pmf = accumulator.arrival_count_pmf(9)
        night = pmf[:36].sum()
        valley = pmf[36:55].sum()
        day = pmf[55:].sum()
        assert night > 0.25
        assert day > 0.3
        assert valley < 0.5 * min(night, day)

    def test_fit_bank_from_streamed_statistics(self, accumulator):
        bank = accumulator.fit_bank(min_sessions=500)
        assert "Facebook" in bank
        assert "Netflix" in bank
        assert bank.get("Netflix").duration.beta > 1.0
