"""Tests for the circadian day/night arrival structure."""

import numpy as np
import pytest

from repro.dataset.circadian import (
    DAY_START_HOUR,
    MINUTES_PER_DAY,
    NIGHT_START_HOUR,
    is_peak_minute,
    n_peak_minutes,
    peak_minute_mask,
    sample_day_arrival_counts,
)
from repro.dataset.network import Network, NetworkConfig


class TestPhases:
    def test_peak_window_boundaries(self):
        assert not is_peak_minute(DAY_START_HOUR * 60 - 1)
        assert is_peak_minute(DAY_START_HOUR * 60)
        assert is_peak_minute(NIGHT_START_HOUR * 60 - 1)
        assert not is_peak_minute(NIGHT_START_HOUR * 60)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            is_peak_minute(MINUTES_PER_DAY)
        with pytest.raises(ValueError):
            is_peak_minute(-1)

    def test_mask_matches_predicate(self):
        mask = peak_minute_mask()
        assert mask.shape == (MINUTES_PER_DAY,)
        for minute in (0, 479, 480, 720, 1319, 1320, 1439):
            assert mask[minute] == is_peak_minute(minute)

    def test_peak_covers_14_hours(self):
        # 8:00 to 22:00 is 14 hours (Section 6.1: off-peak 10pm-8am).
        assert n_peak_minutes() == 14 * 60


class TestSampling:
    @pytest.fixture(scope="class")
    def station(self):
        return Network(NetworkConfig(n_bs=10), np.random.default_rng(0)).station(9)

    def test_counts_shape_and_type(self, station):
        counts = sample_day_arrival_counts(station, np.random.default_rng(1))
        assert counts.shape == (MINUTES_PER_DAY,)
        assert counts.dtype == np.int64
        assert counts.min() >= 0

    def test_day_mean_matches_station_rate(self, station):
        rng = np.random.default_rng(2)
        days = np.stack(
            [sample_day_arrival_counts(station, rng) for _ in range(10)]
        )
        mask = peak_minute_mask()
        assert days[:, mask].mean() == pytest.approx(station.peak_rate, rel=0.05)

    def test_night_much_quieter_than_day(self, station):
        rng = np.random.default_rng(3)
        counts = sample_day_arrival_counts(station, rng)
        mask = peak_minute_mask()
        assert counts[~mask].mean() < 0.3 * counts[mask].mean()

    def test_transitions_are_sharp(self, station):
        # Bi-modality: intermediate rates between the night scale and the
        # day mean are rare (Section 4.1).
        rng = np.random.default_rng(4)
        days = np.stack(
            [sample_day_arrival_counts(station, rng) for _ in range(5)]
        ).ravel()
        lo = station.night_scale * 3
        hi = station.peak_rate * 0.7
        intermediate = np.mean((days > lo) & (days < hi))
        assert intermediate < 0.1
