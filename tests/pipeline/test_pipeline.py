"""Tests for stage wiring, execution and artifact caching."""

import json

import pytest

from repro.io.cache import ArtifactCache
from repro.pipeline.context import RunContext
from repro.pipeline.stages import (
    ArtifactSpec,
    Pipeline,
    PipelineError,
    Stage,
)


def _const_stage(name, value, requires=(), spec=None):
    """A stage producing a fixed value under its own name."""
    return Stage(
        name=name,
        produces=name,
        fn=lambda ctx, artifacts: value,
        requires=tuple(requires),
        spec=spec,
    )


def _json_spec(key_parts):
    """Artifact spec persisting a JSON-able value."""
    return ArtifactSpec(
        kind="testkind",
        suffix=".json",
        save=lambda path, value: path.write_text(json.dumps(value)),
        load=lambda path: json.loads(path.read_text()),
        key_parts=key_parts,
    )


class TestWiring:
    def test_empty_pipeline_rejected(self):
        with pytest.raises(PipelineError):
            Pipeline([])

    def test_duplicate_stage_names_rejected(self):
        with pytest.raises(PipelineError):
            Pipeline([_const_stage("a", 1), _const_stage("a", 2)])

    def test_unsatisfiable_requirement_rejected(self):
        with pytest.raises(PipelineError, match="requires"):
            Pipeline([_const_stage("a", 1, requires=("missing",))])

    def test_requirement_from_declared_input_accepted(self):
        pipeline = Pipeline(
            [_const_stage("a", 1, requires=("seeded",))], inputs=("seeded",)
        )
        run = pipeline.run(RunContext(seed=0), initial={"seeded": 9})
        assert run.artifact("a") == 1

    def test_double_produce_rejected(self):
        stage_b = Stage(name="b", produces="a", fn=lambda ctx, artifacts: 2)
        with pytest.raises(PipelineError, match="produced twice"):
            Pipeline([_const_stage("a", 1), stage_b])

    def test_missing_initial_input_rejected(self):
        pipeline = Pipeline([_const_stage("a", 1)], inputs=("seeded",))
        with pytest.raises(PipelineError, match="missing initial"):
            pipeline.run(RunContext(seed=0))


class TestExecution:
    def test_stages_see_prior_artifacts(self):
        double = Stage(
            name="double",
            produces="doubled",
            fn=lambda ctx, artifacts: artifacts["base"] * 2,
            requires=("base",),
        )
        run = Pipeline([_const_stage("base", 21), double]).run(
            RunContext(seed=0)
        )
        assert run.artifact("doubled") == 42

    def test_stage_sees_run_context(self):
        seeded = Stage(
            name="seeded",
            produces="value",
            fn=lambda ctx, artifacts: int(ctx.rng("x").integers(0, 1 << 30)),
        )
        a = Pipeline([seeded]).run(RunContext(seed=5)).artifact("value")
        b = Pipeline([seeded]).run(RunContext(seed=5)).artifact("value")
        assert a == b

    def test_events_and_observer(self):
        seen = []
        run = Pipeline([_const_stage("a", 1), _const_stage("b", 2)]).run(
            RunContext(seed=0), observer=seen.append
        )
        assert [e.stage for e in run.events] == ["a", "b"]
        assert seen == run.events
        assert run.event("a").status == "computed"
        assert "computed" in run.event("a").describe()

    def test_unknown_artifact_and_event_raise(self):
        run = Pipeline([_const_stage("a", 1)]).run(RunContext(seed=0))
        with pytest.raises(PipelineError):
            run.artifact("nope")
        with pytest.raises(PipelineError):
            run.event("nope")


class TestCaching:
    def _counting_stage(self, calls, spec):
        def fn(ctx, artifacts):
            calls.append(1)
            return {"seed": ctx.seed, "n": len(calls)}

        return Stage(name="work", produces="work", fn=fn, spec=spec)

    def test_second_run_hits_cache(self, tmp_path):
        calls = []
        spec = _json_spec(lambda ctx, artifacts: {"seed": ctx.seed})
        pipeline = Pipeline([self._counting_stage(calls, spec)])
        ctx = RunContext(seed=3, cache=ArtifactCache(tmp_path))

        first = pipeline.run(ctx)
        second = pipeline.run(ctx)
        assert len(calls) == 1  # stage body ran once
        assert first.event("work").status == "computed"
        assert second.event("work").status == "cached"
        assert second.event("work").key == first.event("work").key
        assert "cache hit" in second.event("work").describe()
        assert second.artifact("work") == first.artifact("work")

    def test_key_change_misses(self, tmp_path):
        calls = []
        spec = _json_spec(lambda ctx, artifacts: {"seed": ctx.seed})
        pipeline = Pipeline([self._counting_stage(calls, spec)])
        cache = ArtifactCache(tmp_path)

        pipeline.run(RunContext(seed=3, cache=cache))
        pipeline.run(RunContext(seed=4, cache=cache))
        assert len(calls) == 2  # different seed, different key

    def test_corrupt_entry_recomputed_and_overwritten(self, tmp_path):
        calls = []
        spec = _json_spec(lambda ctx, artifacts: {"seed": ctx.seed})
        pipeline = Pipeline([self._counting_stage(calls, spec)])
        cache = ArtifactCache(tmp_path)
        ctx = RunContext(seed=3, cache=cache)

        first = pipeline.run(ctx)
        key = first.event("work").key
        cache.path_for("testkind", key, ".json").write_text("not json {")

        second = pipeline.run(ctx)
        assert len(calls) == 2  # recomputed, not crashed
        assert second.event("work").status == "computed"
        # The broken artifact was overwritten; a third run hits again.
        assert pipeline.run(ctx).event("work").status == "cached"

    def test_no_cache_always_computes(self, tmp_path):
        calls = []
        spec = _json_spec(lambda ctx, artifacts: {"seed": ctx.seed})
        pipeline = Pipeline([self._counting_stage(calls, spec)])

        pipeline.run(RunContext(seed=3))
        pipeline.run(RunContext(seed=3))
        assert len(calls) == 2

    def test_describe_spells_out_cache_provenance(self, tmp_path):
        spec = _json_spec(lambda ctx, artifacts: {"seed": ctx.seed})
        pipeline = Pipeline([self._counting_stage([], spec)])
        ctx = RunContext(seed=3, cache=ArtifactCache(tmp_path))

        first = pipeline.run(ctx).event("work")
        assert first.cache_status == "miss"
        assert f"cache miss -> {first.key[:8]}" in first.describe()
        second = pipeline.run(ctx).event("work")
        assert second.cache_status == "hit"
        assert f"cache hit [{second.key[:8]}]" in second.describe()
        # Uncacheable stages carry no provenance at all.
        bare = Pipeline([_const_stage("a", 1)]).run(ctx).event("a")
        assert bare.cache_status is None
        assert "cache" not in bare.describe()


class TestPipelineTelemetry:
    """A context's telemetry observes stages and records stage spans."""

    def test_telemetry_is_default_observer_and_spans_stages(self, tmp_path):
        from repro.obs.telemetry import Telemetry

        telemetry = Telemetry(verbosity=0)
        ctx = RunContext(seed=0, telemetry=telemetry)
        run = Pipeline([_const_stage("a", 1), _const_stage("b", 2)]).run(ctx)
        stage_spans = telemetry.span_records("stage")
        assert [s.name for s in stage_spans] == ["a", "b"]
        assert telemetry.metrics.counter("pipeline.stages").value == 2
        # Explicit observers still win over the telemetry default.
        seen = []
        Pipeline([_const_stage("c", 3)]).run(ctx, observer=seen.append)
        assert [e.stage for e in seen] == ["c"]
        assert run.events[0].stage == "a"

    def test_stage_span_carries_cache_attrs(self, tmp_path):
        from repro.obs.telemetry import Telemetry

        spec = _json_spec(lambda ctx, artifacts: {"seed": ctx.seed})
        stage = Stage(
            name="work", produces="work",
            fn=lambda ctx, artifacts: {"x": 1}, spec=spec,
        )
        telemetry = Telemetry(verbosity=0)
        ctx = RunContext(
            seed=3,
            cache=ArtifactCache(tmp_path, telemetry=telemetry),
            telemetry=telemetry,
        )
        Pipeline([stage]).run(ctx)
        Pipeline([stage]).run(ctx)
        first, second = telemetry.span_records("stage")
        assert first.attrs["cache"] == "miss"
        assert second.attrs["cache"] == "hit"
        assert first.attrs["key"] == second.attrs["key"]
        assert telemetry.metrics.counter("cache.hit").value == 1
        assert telemetry.metrics.counter("cache.stores").value == 1
