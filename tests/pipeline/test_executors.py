"""Tests for the serial and process-pool executors."""

import pytest

from repro.pipeline.executors import (
    ExecutorError,
    ParallelExecutor,
    SerialExecutor,
    default_jobs,
    make_executor,
)


def _square(x):
    """Module-level work function (picklable for the process pool)."""
    return x * x


class TestSerialExecutor:
    def test_map_preserves_order(self):
        assert SerialExecutor().map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_map_empty(self):
        assert SerialExecutor().map(_square, []) == []

    def test_context_manager_is_noop(self):
        with SerialExecutor() as executor:
            assert executor.jobs == 1
        executor.close()  # idempotent


class TestParallelExecutor:
    def test_map_matches_serial(self):
        items = list(range(20))
        expected = SerialExecutor().map(_square, items)
        with ParallelExecutor(jobs=2) as executor:
            assert executor.map(_square, items) == expected

    def test_map_empty_without_spawning_pool(self):
        executor = ParallelExecutor(jobs=2)
        assert executor.map(_square, []) == []
        assert executor._pool is None  # lazy: no workers for empty input

    def test_close_reaps_pool(self):
        executor = ParallelExecutor(jobs=2)
        executor.map(_square, [1, 2, 3])
        assert executor._pool is not None
        executor.close()
        assert executor._pool is None

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ExecutorError):
            ParallelExecutor(jobs=0)


class TestMakeExecutor:
    def test_one_job_is_serial(self):
        assert isinstance(make_executor(1), SerialExecutor)

    def test_many_jobs_is_parallel(self):
        executor = make_executor(3)
        assert isinstance(executor, ParallelExecutor)
        assert executor.jobs == 3

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ExecutorError):
            make_executor(0)

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1
