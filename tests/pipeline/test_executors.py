"""Tests for the serial and process-pool executors."""

import pytest

from repro.pipeline.executors import (
    ExecutorError,
    ParallelExecutor,
    SerialExecutor,
    WorkerError,
    default_jobs,
    make_executor,
)


def _square(x):
    """Module-level work function (picklable for the process pool)."""
    return x * x


def _boom_on_negative(x):
    """Module-level work function that fails on negative input."""
    if x < 0:
        raise ValueError(f"boom on {x}")
    return x * x


class TestSerialExecutor:
    def test_map_preserves_order(self):
        assert SerialExecutor().map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_map_empty(self):
        assert SerialExecutor().map(_square, []) == []

    def test_context_manager_is_noop(self):
        with SerialExecutor() as executor:
            assert executor.jobs == 1
        executor.close()  # idempotent


class TestParallelExecutor:
    def test_map_matches_serial(self):
        items = list(range(20))
        expected = SerialExecutor().map(_square, items)
        with ParallelExecutor(jobs=2) as executor:
            assert executor.map(_square, items) == expected

    def test_map_empty_without_spawning_pool(self):
        executor = ParallelExecutor(jobs=2)
        assert executor.map(_square, []) == []
        assert executor._pool is None  # lazy: no workers for empty input

    def test_close_reaps_pool(self):
        executor = ParallelExecutor(jobs=2)
        executor.map(_square, [1, 2, 3])
        assert executor._pool is not None
        executor.close()
        assert executor._pool is None

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ExecutorError):
            ParallelExecutor(jobs=0)


class TestWorkerFailures:
    """A raising work unit surfaces its original traceback, deterministically."""

    def test_serial_executor_propagates_original_exception(self):
        with pytest.raises(ValueError, match="boom on -3"):
            SerialExecutor().map(_boom_on_negative, [1, -3, 2])

    def test_worker_error_carries_original_traceback(self):
        with ParallelExecutor(jobs=2) as executor:
            with pytest.raises(WorkerError) as excinfo:
                executor.map(_boom_on_negative, [1, 2, -3, 4])
        message = str(excinfo.value)
        assert "ValueError: boom on -3" in message
        assert "Traceback" in message
        assert "_boom_on_negative" in excinfo.value.worker_traceback

    def test_first_failing_input_index_reported(self):
        # Several failing items: the reported unit must be the first in
        # *input* order, not whichever worker happened to finish first.
        items = [5, -1, 3, -7, -2, 8]
        with ParallelExecutor(jobs=4) as executor:
            with pytest.raises(WorkerError) as excinfo:
                executor.map(_boom_on_negative, items)
        assert excinfo.value.item_index == 1

    def test_failure_index_stable_across_runs(self):
        items = list(range(30)) + [-9] + list(range(30)) + [-4]
        indices = set()
        for _ in range(3):
            with ParallelExecutor(jobs=4) as executor:
                with pytest.raises(WorkerError) as excinfo:
                    executor.map(_boom_on_negative, items)
            indices.add(excinfo.value.item_index)
        assert indices == {30}

    def test_pool_survives_a_failing_map(self):
        executor = ParallelExecutor(jobs=2)
        try:
            with pytest.raises(WorkerError):
                executor.map(_boom_on_negative, [1, -1])
            # The same pool must keep serving subsequent maps.
            assert executor.map(_square, [1, 2, 3]) == [1, 4, 9]
        finally:
            executor.close()

    def test_worker_error_is_an_executor_error(self):
        assert issubclass(WorkerError, ExecutorError)


class TestExecutorTelemetry:
    """Instrumented executors report per-unit spans — without changing results."""

    def _telemetry(self):
        from repro.obs.telemetry import Telemetry

        return Telemetry(verbosity=0)

    def test_serial_map_records_unit_spans(self):
        telemetry = self._telemetry()
        result = SerialExecutor(telemetry=telemetry).map(_square, [3, 1, 2])
        assert result == [9, 1, 4]
        assert len(telemetry.span_records("executor")) == 1
        units = telemetry.span_records("unit")
        assert [u.name for u in units] == ["unit-0", "unit-1", "unit-2"]
        assert telemetry.metrics.counter("executor.units").value == 3

    def test_parallel_map_records_worker_and_unit_spans(self):
        telemetry = self._telemetry()
        items = list(range(12))
        with ParallelExecutor(jobs=2, telemetry=telemetry) as executor:
            assert executor.map(_square, items) == [i * i for i in items]
        workers = telemetry.span_records("worker")
        units = telemetry.span_records("unit")
        assert len(workers) >= 1
        assert len(units) == 12
        worker_ids = {w.span_id for w in workers}
        assert all(u.parent_id in worker_ids for u in units)
        (executor_span,) = telemetry.span_records("executor")
        assert executor_span.attrs["items"] == 12
        assert "utilization" in executor_span.attrs

    def test_worker_error_carries_span_context(self):
        telemetry = self._telemetry()
        with telemetry.span("fan-out", kind="stage"):
            with ParallelExecutor(jobs=2, telemetry=telemetry) as executor:
                with pytest.raises(WorkerError) as excinfo:
                    executor.map(_boom_on_negative, [1, -3, 2])
        error = excinfo.value
        assert error.item_index == 1
        assert error.stage == "fan-out"
        assert error.elapsed_s is not None and error.elapsed_s >= 0.0
        assert "of stage 'fan-out'" in str(error)

    def test_untelemetered_worker_error_has_no_span_context(self):
        with ParallelExecutor(jobs=2) as executor:
            with pytest.raises(WorkerError) as excinfo:
                executor.map(_boom_on_negative, [-1])
        assert excinfo.value.stage is None

    def test_make_executor_threads_telemetry_through(self):
        telemetry = self._telemetry()
        assert make_executor(1, telemetry=telemetry).telemetry is telemetry
        executor = make_executor(2, telemetry=telemetry)
        assert executor.telemetry is telemetry
        executor.close()


class TestMakeExecutor:
    def test_one_job_is_serial(self):
        assert isinstance(make_executor(1), SerialExecutor)

    def test_many_jobs_is_parallel(self):
        executor = make_executor(3)
        assert isinstance(executor, ParallelExecutor)
        assert executor.jobs == 3

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ExecutorError):
            make_executor(0)

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1


class TestRssUnits:
    """``ru_maxrss`` units are platform-dependent: bytes on macOS, KiB on
    Linux.  The divisor must be derived per call from the *current*
    platform, never frozen at import time, so a module imported on one
    platform and exercised under a mocked another reports correctly."""

    def test_darwin_reports_bytes(self):
        from repro.pipeline.executors import _rss_to_mb

        assert _rss_to_mb("darwin") == 1024.0 * 1024.0

    def test_linux_reports_kib(self):
        from repro.pipeline.executors import _rss_to_mb

        assert _rss_to_mb("linux") == 1024.0

    def test_defaults_to_live_platform(self, monkeypatch):
        import repro.pipeline.executors as executors

        monkeypatch.setattr(executors.sys, "platform", "darwin")
        assert executors._rss_to_mb() == 1024.0 * 1024.0
        monkeypatch.setattr(executors.sys, "platform", "linux")
        assert executors._rss_to_mb() == 1024.0

    def test_peak_rss_uses_current_platform(self, monkeypatch):
        import repro.pipeline.executors as executors

        monkeypatch.setattr(executors.sys, "platform", "linux")
        as_linux = executors.peak_rss_mb()
        monkeypatch.setattr(executors.sys, "platform", "darwin")
        as_darwin = executors.peak_rss_mb()
        # Same ru_maxrss reading, divisors 1024 apart (allow for RSS
        # growth between the two getrusage calls).
        assert as_linux > 0.0
        assert as_darwin <= as_linux / 1000.0
