"""Tests for seed streams and the run context."""

import numpy as np
import pytest

from repro.pipeline.context import (
    MAX_ROOT_SEED,
    RunContext,
    SeedStreamError,
    coerce_root_seed,
    stream_rng,
    stream_seed,
)


class TestStreamSeed:
    def test_equal_keys_equal_streams(self):
        a = stream_rng(7, "bs-day", 3, 12).integers(0, 1 << 30, 8)
        b = stream_rng(7, "bs-day", 3, 12).integers(0, 1 << 30, 8)
        assert np.array_equal(a, b)

    def test_different_keys_differ(self):
        a = stream_rng(7, "bs-day", 3, 12).integers(0, 1 << 30, 8)
        b = stream_rng(7, "bs-day", 3, 13).integers(0, 1 << 30, 8)
        c = stream_rng(7, "bs-day", 4, 12).integers(0, 1 << 30, 8)
        assert not np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_different_roots_differ(self):
        a = stream_rng(7, "network").integers(0, 1 << 30, 8)
        b = stream_rng(8, "network").integers(0, 1 << 30, 8)
        assert not np.array_equal(a, b)

    def test_creation_order_is_irrelevant(self):
        # Materializing streams in any order yields the same draws: the
        # stream depends only on (root, key), never on spawn history.
        forward = [stream_rng(5, "u", i).integers(0, 1 << 30) for i in range(6)]
        backward = [
            stream_rng(5, "u", i).integers(0, 1 << 30)
            for i in reversed(range(6))
        ]
        assert forward == backward[::-1]

    def test_string_words_are_stable(self):
        # Pinned values: string key elements must hash identically across
        # processes, platforms and Python versions (SHA-256, not hash()).
        seq = stream_seed(0, "bs-day", 1)
        assert seq.spawn_key == (8989963400969191037, 1)

    def test_empty_key_rejected(self):
        with pytest.raises(SeedStreamError):
            stream_seed(0)

    def test_negative_int_key_rejected(self):
        with pytest.raises(SeedStreamError):
            stream_seed(0, -1)

    def test_non_int_non_str_key_rejected(self):
        with pytest.raises(SeedStreamError):
            stream_seed(0, 1.5)
        with pytest.raises(SeedStreamError):
            stream_seed(0, True)


class TestCoerceRootSeed:
    def test_int_passthrough(self):
        assert coerce_root_seed(42) == 42
        assert coerce_root_seed(np.int64(42)) == 42

    def test_generator_twins_draw_same_root(self):
        a = coerce_root_seed(np.random.default_rng(3))
        b = coerce_root_seed(np.random.default_rng(3))
        assert a == b
        assert 0 <= a < MAX_ROOT_SEED

    def test_negative_rejected(self):
        with pytest.raises(SeedStreamError):
            coerce_root_seed(-1)

    def test_bool_rejected(self):
        with pytest.raises(SeedStreamError):
            coerce_root_seed(True)

    def test_other_types_rejected(self):
        with pytest.raises(SeedStreamError):
            coerce_root_seed("seed")


class TestRunContext:
    def test_rng_matches_stream_rng(self):
        ctx = RunContext(seed=11)
        a = ctx.rng("network").integers(0, 1 << 30, 4)
        b = stream_rng(11, "network").integers(0, 1 << 30, 4)
        assert np.array_equal(a, b)

    def test_seed_sequence_key(self):
        ctx = RunContext(seed=11)
        assert ctx.seed_sequence("a", 2).spawn_key == stream_seed(
            11, "a", 2
        ).spawn_key

    def test_executor_matches_jobs(self):
        from repro.pipeline.executors import ParallelExecutor, SerialExecutor

        assert isinstance(RunContext(seed=0).executor(), SerialExecutor)
        with RunContext(seed=0, jobs=2).executor() as executor:
            assert isinstance(executor, ParallelExecutor)
            assert executor.jobs == 2

    def test_invalid_settings_rejected(self):
        with pytest.raises(SeedStreamError):
            RunContext(seed=-1)
        with pytest.raises(SeedStreamError):
            RunContext(seed=0, jobs=0)
