"""Command-line entry points: ``python -m repro.lint`` and the CLI verb."""

from __future__ import annotations

import json

from repro.lint import validate_report
from repro.lint.app import find_repo_root, main

BAD = "import numpy as np\nrng = np.random.default_rng()\n"


def _repo(tmp_path):
    """A minimal repo (pyproject marker + one violating module)."""
    (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
    pkg = tmp_path / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text(BAD)
    return tmp_path


def test_find_repo_root(tmp_path):
    """The nearest pyproject.toml upward wins."""
    root = _repo(tmp_path)
    nested = root / "src" / "repro"
    assert find_repo_root(nested) == root
    assert find_repo_root(root) == root


def test_main_exit_one_on_findings(tmp_path, capsys):
    """A violating tree exits 1 and prints the finding."""
    root = _repo(tmp_path)
    code = main(["--root", str(root)])
    out = capsys.readouterr().out
    assert code == 1
    assert "D102" in out
    assert "checked 1 files" in out


def test_main_exit_zero_on_clean(tmp_path, capsys):
    """A clean tree exits 0."""
    root = _repo(tmp_path)
    (root / "src" / "repro" / "core" / "bad.py").write_text(
        '"""Fine."""\nVALUE = 1\n'
    )
    assert main(["--root", str(root)]) == 0


def test_json_output_file_validates(tmp_path, capsys):
    """--format json --output writes a schema-conforming artifact."""
    root = _repo(tmp_path)
    out_file = tmp_path / "lint-report.json"
    code = main([
        "--root", str(root), "--format", "json", "--output", str(out_file),
    ])
    assert code == 1
    payload = json.loads(out_file.read_text())
    validate_report(payload)
    assert payload["counts"]["errors"] == 1
    # stdout carries the same report.
    assert json.loads(capsys.readouterr().out) == payload


def test_write_baseline_then_clean(tmp_path, capsys):
    """--write-baseline grandfathers the tree; the next run exits 0."""
    root = _repo(tmp_path)
    baseline = tmp_path / "baseline.json"
    assert main([
        "--root", str(root), "--baseline", str(baseline), "--write-baseline",
    ]) == 0
    assert baseline.exists()
    assert main(["--root", str(root), "--baseline", str(baseline)]) == 0
    # Fixing the violation makes the baseline entry stale: exit 1 again.
    (root / "src" / "repro" / "core" / "bad.py").write_text(
        '"""Fixed."""\nVALUE = 1\n'
    )
    code = main(["--root", str(root), "--baseline", str(baseline)])
    out = capsys.readouterr().out
    assert code == 1
    assert "stale baseline" in out


def test_update_baseline_preserves_justifications(tmp_path, capsys):
    """--update-baseline keeps surviving entries' hand-written reasons."""
    root = _repo(tmp_path)
    baseline = tmp_path / "baseline.json"
    main(["--root", str(root), "--baseline", str(baseline),
          "--write-baseline"])
    # Hand-justify the entry, then grow a second violation.
    payload = json.loads(baseline.read_text())
    payload["findings"][0]["justification"] = "legacy fuzz harness"
    baseline.write_text(json.dumps(payload))
    (root / "src" / "repro" / "core" / "worse.py").write_text(BAD)
    capsys.readouterr()
    assert main(["--root", str(root), "--baseline", str(baseline),
                 "--update-baseline"]) == 0
    out = capsys.readouterr().out
    assert "1 justifications preserved" in out
    entries = {
        e["path"]: e["justification"]
        for e in json.loads(baseline.read_text())["findings"]
    }
    assert entries["src/repro/core/bad.py"] == "legacy fuzz harness"
    assert entries["src/repro/core/worse.py"] == "TODO: justify or fix"
    # A fixed violation drops out of the regenerated baseline entirely.
    (root / "src" / "repro" / "core" / "worse.py").write_text(
        '"""Fixed."""\nVALUE = 1\n'
    )
    assert main(["--root", str(root), "--baseline", str(baseline),
                 "--update-baseline"]) == 0
    paths = [
        e["path"] for e in json.loads(baseline.read_text())["findings"]
    ]
    assert paths == ["src/repro/core/bad.py"]


def test_no_baseline_flag_reports_grandfathered(tmp_path, capsys):
    """--no-baseline surfaces baselined findings again."""
    root = _repo(tmp_path)
    baseline = tmp_path / "baseline.json"
    main(["--root", str(root), "--baseline", str(baseline),
          "--write-baseline"])
    capsys.readouterr()
    code = main(["--root", str(root), "--baseline", str(baseline),
                 "--no-baseline"])
    assert code == 1
    assert "D102" in capsys.readouterr().out


def test_fail_on_error_tolerates_warnings(tmp_path):
    """A warnings-only tree passes under --fail-on error."""
    root = _repo(tmp_path)
    (root / "src" / "repro" / "core" / "bad.py").write_text(
        '"""Prints."""\n\n\ndef fit(x):\n    """Fit."""\n    print(x)\n'
    )
    assert main(["--root", str(root)]) == 1
    assert main(["--root", str(root), "--fail-on", "error"]) == 0


def test_list_rules(capsys):
    """--list-rules prints the catalog with ids and severities."""
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("D101", "P203", "S305"):
        assert rule_id in out


def test_unknown_path_is_usage_error(tmp_path, capsys):
    """Exit code 2 distinguishes usage errors from findings."""
    root = _repo(tmp_path)
    assert main(["--root", str(root), "no_such_path"]) == 2


def test_cli_lint_verb(repo_root, capsys, monkeypatch):
    """``repro-traffic lint`` dispatches into the same runner."""
    from repro.cli import main as cli_main

    monkeypatch.chdir(repo_root)
    code = cli_main(["lint", "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    validate_report(payload)
    assert code == 0
    assert payload["findings"] == []


def test_module_entry_point(repo_root):
    """``python -m repro.lint`` exits 0 on the shipped tree."""
    import subprocess
    import sys

    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", "--format", "json"],
        cwd=repo_root,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(repo_root / "src"), "PATH": "/usr/bin:/bin"},
        check=False,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    validate_report(json.loads(proc.stdout))
