"""Tests of the repro-lint static-analysis framework."""
