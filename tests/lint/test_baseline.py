"""Baseline round-trip: save/load, matching, staleness, justification."""

from __future__ import annotations

import json

import pytest

from repro.lint import Baseline, BaselineError, Finding
from repro.lint.baseline import BaselineEntry


def _finding(rule="D102", path="src/repro/core/x.py", symbol="build"):
    """A minimal finding for baseline-matching tests."""
    return Finding(
        path=path, line=10, col=4, rule=rule,
        severity="error", message="m", symbol=symbol,
    )


def test_round_trip(tmp_path):
    """save → load preserves entries, deterministically ordered."""
    baseline = Baseline.from_findings(
        [_finding(), _finding(rule="S305", symbol="fit")],
        justification="grandfathered in PR 5",
    )
    path = tmp_path / "baseline.json"
    baseline.save(path)
    loaded = Baseline.load(path)
    assert sorted(e.rule for e in loaded.entries) == ["D102", "S305"]
    assert all(e.justification == "grandfathered in PR 5"
               for e in loaded.entries)
    # Saving twice produces byte-identical files (diff-friendly).
    text1 = path.read_text()
    loaded.save(path)
    assert path.read_text() == text1


def test_missing_file_is_empty_baseline(tmp_path):
    """A repo without a baseline file simply has nothing grandfathered."""
    baseline = Baseline.load(tmp_path / "nope.json")
    assert baseline.entries == []


def test_apply_splits_new_and_baselined():
    """Covered findings drop out; uncovered ones stay actionable."""
    baseline = Baseline([
        BaselineEntry("D102", "src/repro/core/x.py", "build", "legacy"),
    ])
    covered = _finding()
    fresh = _finding(rule="D101")
    new, baselined, stale = baseline.apply([covered, fresh])
    assert new == [fresh]
    assert baselined == 1
    assert stale == []


def test_matching_ignores_line_numbers():
    """Entries anchor on (rule, path, symbol) — edits above don't churn."""
    entry = BaselineEntry("D102", "src/repro/core/x.py", "build", "legacy")
    moved = Finding(
        path="src/repro/core/x.py", line=999, col=0, rule="D102",
        severity="error", message="m", symbol="build",
    )
    assert entry.matches(moved)


def test_stale_entries_reported():
    """An entry matching nothing must be deleted — baselines only shrink."""
    baseline = Baseline([
        BaselineEntry("D102", "src/repro/core/gone.py", "old", "legacy"),
    ])
    new, baselined, stale = baseline.apply([_finding()])
    assert len(new) == 1
    assert baselined == 0
    assert stale == baseline.entries


def test_empty_justification_rejected(tmp_path):
    """Every grandfathered finding must say why it is tolerated."""
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({
        "version": 1,
        "findings": [
            {"rule": "D102", "path": "x.py", "symbol": "f",
             "justification": "  "},
        ],
    }))
    with pytest.raises(BaselineError, match="justification"):
        Baseline.load(path)


def test_wrong_version_rejected(tmp_path):
    """Future format versions fail loudly instead of misparsing."""
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 99, "findings": []}))
    with pytest.raises(BaselineError, match="version"):
        Baseline.load(path)


def test_invalid_json_rejected(tmp_path):
    """Corrupt files are a usage error, not an empty baseline."""
    path = tmp_path / "baseline.json"
    path.write_text("{not json")
    with pytest.raises(BaselineError, match="invalid JSON"):
        Baseline.load(path)


def test_shipped_baseline_is_empty_and_valid(repo_root):
    """The checked-in baseline loads and is empty — the goal state."""
    baseline = Baseline.load(repo_root / "baselines/repro_lint_baseline.json")
    assert baseline.entries == []
