"""Positive and negative fixtures for every P-series rule."""

from __future__ import annotations

from .helpers import run_rule


class TestP201WorkerCallable:
    """P201 flags non-picklable callables shipped to executors."""

    def test_flags_lambda_submit(self):
        """A lambda cannot be pickled by qualified name."""
        bad = """
            def run(executor, items):
                return executor.map(lambda x: x + 1, items)
        """
        assert len(run_rule("P201", bad)) == 1

    def test_flags_nested_function(self):
        """A function defined inside another function is just as bad."""
        bad = """
            def run(pool, items):
                def kernel(x):
                    return x + 1
                return pool.map(kernel, items)
        """
        found = run_rule("P201", bad)
        assert len(found) == 1
        assert "kernel" in found[0].message

    def test_allows_module_level_kernel(self):
        """A module-level kernel function is the sanctioned shape."""
        good = """
            def kernel(x):
                return x + 1

            def run(executor, items):
                return executor.map(kernel, items)
        """
        assert run_rule("P201", good) == []

    def test_non_executor_receiver_ignored(self):
        """``seq.map(lambda …)`` on a non-executor name is fine."""
        good = """
            def run(frame, items):
                return frame.map(lambda x: x + 1)
        """
        assert run_rule("P201", good) == []


class TestP202GlobalWrite:
    """P202 flags runtime rebinding of module globals."""

    def test_flags_global_rebind(self):
        """``global X; X = …`` diverges per worker process."""
        bad = """
            CACHE = None

            def warm():
                global CACHE
                CACHE = 42
        """
        found = run_rule("P202", bad)
        assert len(found) == 1
        assert "CACHE" in found[0].message

    def test_allows_read_only_global(self):
        """Reading a module constant involves no ``global`` statement."""
        good = """
            LIMIT = 10

            def check(x):
                return x < LIMIT
        """
        assert run_rule("P202", good) == []


class TestP203ExecutorBypass:
    """P203 confines process-pool primitives to pipeline.executors."""

    def test_flags_concurrent_futures_import(self):
        """Direct ``concurrent.futures`` use skips the audited contract."""
        bad = "from concurrent.futures import ProcessPoolExecutor\n"
        assert len(run_rule("P203", bad)) == 1

    def test_flags_multiprocessing_import(self):
        """``import multiprocessing`` is the same bypass."""
        assert len(run_rule("P203", "import multiprocessing\n")) == 1

    def test_executor_module_itself_exempt(self):
        """The one sanctioned module may import the primitives."""
        src = "import concurrent.futures\n"
        assert run_rule("P203", src, "src/repro/pipeline/executors.py") == []

    def test_tools_out_of_scope(self):
        """Scripts outside src/ are not part of the shipped contract."""
        src = "import multiprocessing\n"
        assert run_rule("P203", src, "tools/profile.py") == []


class TestP204ModuleMutableMutation:
    """P204 flags runtime writes into module-level containers."""

    def test_flags_dict_subscript_write(self):
        """``REGISTRY[key] = …`` inside a function is an ad-hoc cache."""
        bad = """
            REGISTRY = {}

            def register(key, value):
                REGISTRY[key] = value
        """
        found = run_rule("P204", bad)
        assert len(found) == 1
        assert "REGISTRY" in found[0].message

    def test_flags_list_append(self):
        """Mutator methods count too."""
        bad = """
            SEEN = []

            def note(x):
                SEEN.append(x)
        """
        assert len(run_rule("P204", bad)) == 1

    def test_allows_import_time_fill(self):
        """Filling a module table at import time is initialization."""
        good = """
            TABLE = {}
            for name in ("a", "b"):
                TABLE[name] = len(name)
        """
        assert run_rule("P204", good) == []

    def test_allows_local_shadow(self):
        """A local variable of the same name is not the module container."""
        good = """
            CACHE = {}

            def build():
                CACHE = {}
                CACHE["x"] = 1
                return CACHE
        """
        assert run_rule("P204", good) == []
