"""The rule catalog in docs/LINTING.md mirrors the registry exactly.

Every registered rule must own a ``| Xnnn | severity | ... |`` row, and
every row must name a registered rule — the documentation equivalent of
the C-series drift checks, applied to the linter itself.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.lint import all_rules

REPO_ROOT = Path(__file__).resolve().parents[2]
DOC_PATH = REPO_ROOT / "docs" / "LINTING.md"

#: A catalog table row: ``| D101 | error | ... |``.
ROW = re.compile(r"^\| ([A-Z][0-9]{3}) \| (error|warning) \|", re.MULTILINE)


def _doc_rows() -> dict[str, str]:
    text = DOC_PATH.read_text(encoding="utf-8")
    return {match.group(1): match.group(2) for match in ROW.finditer(text)}


def test_every_registered_rule_has_a_catalog_row():
    rows = _doc_rows()
    missing = [rule.id for rule in all_rules() if rule.id not in rows]
    assert missing == [], f"rules missing from docs/LINTING.md: {missing}"


def test_every_catalog_row_names_a_registered_rule():
    known = {rule.id for rule in all_rules()}
    ghosts = sorted(set(_doc_rows()) - known)
    assert ghosts == [], f"docs/LINTING.md documents unknown rules: {ghosts}"


def test_documented_severity_matches_registry():
    rows = _doc_rows()
    mismatched = [
        (rule.id, rule.severity, rows[rule.id])
        for rule in all_rules()
        if rule.id in rows and rows[rule.id] != rule.severity
    ]
    assert mismatched == []


def test_new_series_sections_exist():
    text = DOC_PATH.read_text(encoding="utf-8")
    for heading in ("W-series", "T-series", "C-series"):
        assert heading in text, f"docs/LINTING.md lacks a {heading} section"
