"""Project graph, dataflow fixpoints, and the driver's whole-program pass.

The integration tests build a real on-disk tree containing a violation
only a project rule can see, then pin the driver contract: serial and
parallel runs byte-identical (project findings included), inline
suppressions covering project findings, and subtree/rule-filtered runs
skipping the pass entirely.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.lint import lint_paths, render_json, summarize_source
from repro.lint.graph import module_of

from .helpers import build_graph

SERVE_SNIPPET = """
import threading

class Cache:
    def __init__(self):
        self._lock = threading.Lock()
        self._doc = None

    def refresh(self, doc):
        self._doc = doc
"""


class TestModuleSummaries:
    def test_module_of(self):
        assert module_of("src/repro/serve/http.py") == "repro.serve.http"
        assert module_of("src/repro/__init__.py") == "repro"
        assert module_of("tools/gen_docs.py") == "tools.gen_docs"

    def test_function_and_class_summaries(self):
        summary = summarize_source(
            "src/repro/serve/c.py", textwrap.dedent(SERVE_SNIPPET)
        )
        assert summary is not None
        assert [c.name for c in summary.classes] == ["Cache"]
        assert summary.classes[0].lock_attrs == ("_lock",)
        names = {f.qualname for f in summary.functions}
        assert "repro.serve.c.Cache.refresh" in names
        refresh = next(f for f in summary.functions if f.name == "refresh")
        assert refresh.effective_params() == ("doc",)
        assert refresh.attr_writes[0].locks_held == ()

    def test_unparseable_source_returns_none(self):
        assert summarize_source("src/repro/x.py", "def broken(:") is None

    def test_summaries_are_picklable(self):
        import pickle

        summary = summarize_source(
            "src/repro/serve/c.py", textwrap.dedent(SERVE_SNIPPET)
        )
        clone = pickle.loads(pickle.dumps(summary))
        assert clone == summary


class TestDataflow:
    def test_rng_params_propagate_through_wrappers(self):
        graph = build_graph(
            {
                "src/repro/core/a.py": """
                def leaf(gen):
                    return gen.normal()

                def middle(stream):
                    return leaf(stream)

                def top(value):
                    return middle(value)
                """,
            }
        )
        flow = graph.dataflow()
        assert flow.draws_from("repro.core.a.leaf") == {"gen"}
        assert flow.draws_from("repro.core.a.middle") == {"stream"}
        assert flow.draws_from("repro.core.a.top") == {"value"}

    def test_rng_returners_close_transitively(self):
        graph = build_graph(
            {
                "src/repro/core/a.py": """
                import numpy as np

                def mint(seed):
                    return np.random.default_rng(seed)

                def remint(seed):
                    return mint(seed)
                """,
            }
        )
        flow = graph.dataflow()
        assert "repro.core.a.mint" in flow.rng_returners
        assert "repro.core.a.remint" in flow.rng_returners

    def test_lock_pairs_cross_function(self):
        graph = build_graph(
            {
                "src/repro/serve/l.py": """
                import threading

                class P:
                    def __init__(self):
                        self._a_lock = threading.Lock()
                        self._b_lock = threading.Lock()

                    def take_b(self):
                        with self._b_lock:
                            pass

                    def indirect(self):
                        with self._a_lock:
                            self.take_b()
                """,
            }
        )
        flow = graph.dataflow()
        pairs = {
            (held, acquired)
            for held, acquired, _, _ in flow.lock_pairs[
                "repro.serve.l.P.indirect"
            ]
        }
        assert ("_a_lock", "_b_lock") in pairs

    def test_dataflow_is_memoized(self):
        graph = build_graph({"src/repro/core/a.py": "X = 1"})
        assert graph.dataflow() is graph.dataflow()


def _write_tree(root: Path, *, suppressed: bool = False) -> Path:
    (root / "src" / "repro" / "serve").mkdir(parents=True)
    source = textwrap.dedent(SERVE_SNIPPET)
    if suppressed:
        source = source.replace(
            "self._doc = doc",
            "self._doc = doc  "
            "# repro-lint: disable=T501 -- single-threaded test double",
        )
    (root / "src" / "repro" / "serve" / "cache.py").write_text(
        source, encoding="utf-8"
    )
    return root


class TestProjectPassIntegration:
    def test_full_run_reports_project_finding(self, tmp_path):
        result = lint_paths(_write_tree(tmp_path))
        assert [f.rule for f in result.findings] == ["T501"]
        finding = result.findings[0]
        assert finding.path == "src/repro/serve/cache.py"
        assert finding.symbol == "Cache.refresh"

    def test_inline_suppression_covers_project_finding(self, tmp_path):
        result = lint_paths(_write_tree(tmp_path, suppressed=True))
        assert result.findings == []
        assert result.suppressed == 1

    def test_parallel_identical_to_serial_with_project_findings(
        self, tmp_path
    ):
        _write_tree(tmp_path)
        serial = lint_paths(tmp_path, jobs=1)
        parallel = lint_paths(tmp_path, jobs=2)
        assert render_json(serial) == render_json(parallel)
        assert [f.rule for f in parallel.findings] == ["T501"]

    def test_subtree_run_skips_project_pass(self, tmp_path):
        _write_tree(tmp_path)
        result = lint_paths(tmp_path, paths=["src/repro/serve"])
        assert result.findings == []

    def test_rule_filtered_run_skips_project_pass(self, tmp_path):
        from repro.lint import get_rule

        _write_tree(tmp_path)
        result = lint_paths(tmp_path, rules=[get_rule("D102")])
        assert result.findings == []

    def test_result_root_is_posix(self, tmp_path):
        result = lint_paths(_write_tree(tmp_path))
        assert "\\" not in result.root
