"""JSON report shape: payload, validator, and checked-in schema sync."""

from __future__ import annotations

import json

import pytest

from repro.lint import Finding, LintResult, render_human, render_json
from repro.lint.baseline import BaselineEntry
from repro.lint.report import (
    REPORT_SCHEMA_PATH,
    render_schema,
    report_payload,
    validate_report,
)


def _result() -> LintResult:
    """A small result with one finding and one stale entry."""
    return LintResult(
        root="/repo",
        files=3,
        findings=[
            Finding(
                path="src/repro/core/x.py", line=4, col=0, rule="D102",
                severity="error", message="unseeded", symbol="build",
            ),
        ],
        suppressed=2,
        baselined=1,
        stale_baseline=[
            BaselineEntry("S305", "src/repro/core/gone.py", "old", "legacy"),
        ],
    )


def test_payload_validates():
    """The emitted payload conforms to its own validator."""
    validate_report(report_payload(_result()))


def test_json_render_is_deterministic():
    """Two renders of the same result are byte-identical (no timestamps)."""
    result = _result()
    text = render_json(result)
    assert text == render_json(result)
    assert "time" not in json.loads(text)


def test_json_round_trips():
    """The rendered report decodes back to the payload."""
    payload = json.loads(render_json(_result()))
    assert payload == report_payload(_result())
    assert payload["counts"]["errors"] == 1
    assert payload["counts"]["suppressed"] == 2
    assert len(payload["stale_baseline"]) == 1


@pytest.mark.parametrize("mutate, match", [
    (lambda p: p.pop("counts"), "counts"),
    (lambda p: p.update(version=99), "version"),
    (lambda p: p["findings"][0].pop("line"), "line"),
    (lambda p: p["findings"][0].update(severity="fatal"), "severity"),
    (lambda p: p["stale_baseline"][0].pop("justification"), "justification"),
])
def test_validator_rejects_mutations(mutate, match):
    """Each required part of the shape is actually enforced."""
    payload = report_payload(_result())
    mutate(payload)
    with pytest.raises(ValueError, match=match):
        validate_report(payload)


def test_checked_in_schema_in_sync(repo_root):
    """schemas/lint-report.schema.json matches the generator exactly.

    Regenerate with ``python -m repro.lint --write-report-schema`` after
    changing the report shape.
    """
    checked_in = (repo_root / REPORT_SCHEMA_PATH).read_text(encoding="utf-8")
    assert checked_in == render_schema()


def test_human_report_summarizes():
    """The human form carries locations, staleness and the summary tail."""
    text = render_human(_result())
    assert "src/repro/core/x.py:4:0: D102" in text
    assert "stale baseline entry S305" in text
    assert "checked 3 files: 1 errors, 0 warnings" in text


def test_failed_logic():
    """Stale entries always fail; --fail-on error tolerates warnings."""
    result = _result()
    assert result.failed("warning")
    warning_only = LintResult(
        root="/repo", files=1,
        findings=[
            Finding(
                path="a.py", line=1, col=0, rule="S305",
                severity="warning", message="m",
            ),
        ],
    )
    assert warning_only.failed("warning")
    assert not warning_only.failed("error")
    stale_only = LintResult(
        root="/repo", files=1, findings=[],
        stale_baseline=[BaselineEntry("D102", "x.py", "f", "legacy")],
    )
    assert stale_only.failed("error")
