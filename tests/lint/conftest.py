"""Fixtures for the lint-framework tests."""

from __future__ import annotations

from pathlib import Path

import pytest


@pytest.fixture(scope="session")
def repo_root() -> Path:
    """The repository root (two levels above this file)."""
    return Path(__file__).resolve().parents[2]
