"""T-series fixtures: thread-safety audit of the serve stack.

The fixtures model the real serve classes — a lock and a
``check_same_thread=False`` SQLite connection opened in ``__init__``,
methods running concurrently on handler threads.
"""

from __future__ import annotations

from .helpers import run_project_rule


class TestT501UnguardedSharedWrite:
    def test_off_lock_write_outside_init(self):
        findings = run_project_rule(
            "T501",
            {
                "src/repro/serve/cachey.py": """
                import threading

                class DocumentCache:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._doc = None

                    def refresh(self, doc):
                        self._doc = doc
                """,
            },
        )
        assert len(findings) == 1
        assert findings[0].symbol == "DocumentCache.refresh"
        assert "self._doc" in findings[0].message

    def test_write_under_lock_is_clean(self):
        findings = run_project_rule(
            "T501",
            {
                "src/repro/serve/cachey.py": """
                import threading

                class DocumentCache:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._doc = None

                    def refresh(self, doc):
                        with self._lock:
                            self._doc = doc
                """,
            },
        )
        assert findings == []

    def test_init_writes_are_exempt(self):
        findings = run_project_rule(
            "T501",
            {
                "src/repro/serve/cachey.py": """
                import threading

                class DocumentCache:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._doc = None
                        self._hits = 0
                """,
            },
        )
        assert findings == []

    def test_outside_serve_is_out_of_scope(self):
        findings = run_project_rule(
            "T501",
            {
                "src/repro/core/cachey.py": """
                class SingleThreaded:
                    def __init__(self):
                        self._doc = None

                    def refresh(self, doc):
                        self._doc = doc
                """,
            },
        )
        assert findings == []


class TestT502SqliteAcrossThreads:
    STORE_HEADER = """
        import sqlite3
        import threading

        class Store:
            def __init__(self, path):
                self._lock = threading.RLock()
                self._conn = sqlite3.connect(path, check_same_thread=False)
    """

    def test_off_lock_connection_use(self):
        findings = run_project_rule(
            "T502",
            {
                "src/repro/serve/store2.py": self.STORE_HEADER
                + """
            def query(self):
                return self._conn.execute("SELECT 1").fetchone()
                """,
            },
        )
        assert len(findings) == 1
        assert "self._conn" in findings[0].message

    def test_locked_connection_use_is_clean(self):
        findings = run_project_rule(
            "T502",
            {
                "src/repro/serve/store2.py": self.STORE_HEADER
                + """
            def query(self):
                with self._lock:
                    return self._conn.execute("SELECT 1").fetchone()
                """,
            },
        )
        assert findings == []

    def test_combined_with_statement_counts_as_locked(self):
        """``with self._lock, self._conn as conn:`` holds the lock."""
        findings = run_project_rule(
            "T502",
            {
                "src/repro/serve/store2.py": self.STORE_HEADER
                + """
            def swap(self):
                with self._lock, self._conn as conn:
                    conn.execute("DELETE FROM t")
                """,
            },
        )
        assert findings == []

    def test_non_sqlite_attribute_reads_ignored(self):
        findings = run_project_rule(
            "T502",
            {
                "src/repro/serve/store2.py": self.STORE_HEADER
                + """
            def path_of(self):
                return self.path
                """,
            },
        )
        assert findings == []


class TestT503LockOrderInversion:
    def test_direct_inversion(self):
        findings = run_project_rule(
            "T503",
            {
                "src/repro/serve/locks.py": """
                import threading

                class Pair:
                    def __init__(self):
                        self._a_lock = threading.Lock()
                        self._b_lock = threading.Lock()

                    def forward(self):
                        with self._a_lock:
                            with self._b_lock:
                                pass

                    def backward(self):
                        with self._b_lock:
                            with self._a_lock:
                                pass
                """,
            },
        )
        assert len(findings) == 1
        assert "opposite" in findings[0].message

    def test_consistent_order_is_clean(self):
        findings = run_project_rule(
            "T503",
            {
                "src/repro/serve/locks.py": """
                import threading

                class Pair:
                    def __init__(self):
                        self._a_lock = threading.Lock()
                        self._b_lock = threading.Lock()

                    def one(self):
                        with self._a_lock:
                            with self._b_lock:
                                pass

                    def two(self):
                        with self._a_lock:
                            with self._b_lock:
                                pass
                """,
            },
        )
        assert findings == []

    def test_inversion_through_call_chain(self):
        """The second half of the cycle hides behind a method call."""
        findings = run_project_rule(
            "T503",
            {
                "src/repro/serve/locks.py": """
                import threading

                class Pair:
                    def __init__(self):
                        self._a_lock = threading.Lock()
                        self._b_lock = threading.Lock()

                    def take_a(self):
                        with self._a_lock:
                            pass

                    def forward(self):
                        with self._a_lock:
                            with self._b_lock:
                                pass

                    def backward(self):
                        with self._b_lock:
                            self.take_a()
                """,
            },
        )
        assert len(findings) == 1
