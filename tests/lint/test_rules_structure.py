"""Positive and negative fixtures for every S-series rule."""

from __future__ import annotations

from .helpers import run_rule


class TestS301SessionTableDtype:
    """S301 pins explicit column dtypes to the canonical schema."""

    def test_flags_widened_column(self):
        """``bs_id`` built as int64 contradicts the int32 schema."""
        bad = """
            import numpy as np
            from repro.dataset.records import SessionTable

            def build(n):
                return SessionTable(
                    bs_id=np.full(n, 7, dtype=np.int64),
                )
        """
        found = run_rule("S301", bad)
        assert len(found) == 1
        assert "bs_id" in found[0].message

    def test_allows_schema_dtype(self):
        """The schema dtype passes, and implicit dtypes are out of scope."""
        good = """
            import numpy as np
            from repro.dataset.records import SessionTable

            def build(n, starts):
                return SessionTable(
                    bs_id=np.full(n, 7, dtype=np.int32),
                    day=np.full(n, 1, dtype=np.int16),
                    start_minute=starts,
                )
        """
        assert run_rule("S301", good) == []

    def test_out_of_scope_ignored(self):
        """tests/ may build odd tables on purpose."""
        bad = """
            import numpy as np
            from repro.dataset.records import SessionTable
            t = SessionTable(day=np.full(3, 1, dtype=np.int64))
        """
        assert run_rule("S301", bad, "tools/x.py") == []

    def test_flags_column_spec_dtype_drift(self):
        """A schema descriptor widening a column contradicts the mirror."""
        bad = """
            from repro.dataset.records import ColumnSpec
            SCHEMA = (
                ColumnSpec("bs_id", "int64"),
            )
        """
        found = run_rule("S301", bad)
        assert len(found) == 1
        assert "bs_id" in found[0].message
        assert "int64" in found[0].message

    def test_flags_column_spec_unknown_column(self):
        """A descriptor naming a column outside the schema is drift too."""
        bad = """
            from repro.dataset.records import ColumnSpec
            EXTRA = ColumnSpec("latency_ms", "float32")
        """
        found = run_rule("S301", bad)
        assert len(found) == 1
        assert "latency_ms" in found[0].message

    def test_allows_canonical_column_specs(self):
        """The canonical descriptor tuple passes, keyword form included."""
        good = """
            from repro.dataset.records import ColumnSpec
            SCHEMA = (
                ColumnSpec("service_idx", "int16"),
                ColumnSpec("bs_id", "int32"),
                ColumnSpec("day", "int16"),
                ColumnSpec("start_minute", "int16"),
                ColumnSpec("duration_s", "float32"),
                ColumnSpec("volume_mb", "float32"),
                ColumnSpec(name="truncated", dtype="bool"),
            )
        """
        assert run_rule("S301", good) == []

    def test_column_spec_non_literal_ignored(self):
        """Descriptors built from variables are out of static reach."""
        good = """
            from repro.dataset.records import ColumnSpec
            def widen(name, dtype):
                return ColumnSpec(name, dtype)
        """
        assert run_rule("S301", good) == []


class TestS302TelemetryEventShape:
    """S302 checks sink.write dict literals against EVENT_FIELDS."""

    def test_flags_unknown_event_type(self):
        """An event type absent from the schema fails validation later."""
        bad = """
            def emit(sink):
                sink.write({"type": "spam", "text": "hi"})
        """
        found = run_rule("S302", bad, "src/repro/obs/x.py")
        assert len(found) == 1
        assert "spam" in found[0].message

    def test_flags_unknown_field(self):
        """A misspelled field on a known type is flagged at the field."""
        bad = """
            def emit(sink):
                sink.write({"type": "message", "level": "info",
                            "text": "hi", "colour": "red"})
        """
        found = run_rule("S302", bad, "src/repro/obs/x.py")
        assert len(found) == 1
        assert "colour" in found[0].message

    def test_flags_missing_required_field(self):
        """A literal missing a required field ships invalid streams."""
        bad = """
            def emit(sink):
                sink.write({"type": "message", "level": "info"})
        """
        found = run_rule("S302", bad, "src/repro/obs/x.py")
        assert len(found) == 1
        assert "text" in found[0].message

    def test_allows_schema_conforming_event(self):
        """A complete, correctly-spelled literal passes."""
        good = """
            def emit(sink):
                sink.write({"type": "message", "level": "info", "text": "hi"})
        """
        assert run_rule("S302", good, "src/repro/obs/x.py") == []

    def test_unpack_skips_required_check(self):
        """``**extra`` may supply required fields; only literals checked."""
        good = """
            def emit(sink, extra):
                sink.write({"type": "message", **extra})
        """
        assert run_rule("S302", good, "src/repro/obs/x.py") == []

    def test_non_sink_receiver_ignored(self):
        """``fh.write({...})`` on a non-sink name is not an event."""
        good = """
            def emit(fh):
                fh.write({"type": "spam"})
        """
        assert run_rule("S302", good, "src/repro/obs/x.py") == []


class TestS303TestImportInLibrary:
    """S303 keeps the src → tests dependency arrow one-way."""

    def test_flags_tests_import(self):
        """``from tests.x import y`` breaks every installed copy."""
        bad = "from tests.conftest import campaign\n"
        assert len(run_rule("S303", bad)) == 1

    def test_flags_benchmarks_import(self):
        """benchmarks/ is repo-only too."""
        assert len(run_rule("S303", "import benchmarks.bench_x\n")) == 1

    def test_allows_library_imports(self):
        """Intra-package imports are the normal case."""
        good = """
            from repro.dataset.records import SessionTable
            import numpy as np
        """
        assert run_rule("S303", good) == []

    def test_tests_importing_tests_ignored(self):
        """tests/ importing tests/ is out of scope (src only)."""
        src = "from tests.lint.helpers import run_rule\n"
        assert run_rule("S303", src, "tests/lint/test_x.py") == []


class TestS304SysPath:
    """S304 bans sys.path surgery in the shipped package."""

    def test_flags_append(self):
        """``sys.path.append`` makes imports depend on call order."""
        bad = """
            import sys
            sys.path.append("..")
        """
        assert len(run_rule("S304", bad)) == 1

    def test_flags_rebind(self):
        """Rebinding ``sys.path`` wholesale is the same hazard."""
        bad = """
            import sys
            sys.path = ["/tmp"]
        """
        assert len(run_rule("S304", bad)) == 1

    def test_allows_read(self):
        """Reading sys.path is harmless."""
        good = """
            import sys
            first = sys.path[0]
        """
        assert run_rule("S304", good) == []

    def test_tools_out_of_scope(self):
        """Scripts may bootstrap their import path."""
        src = """
            import sys
            sys.path.insert(0, "src")
        """
        assert run_rule("S304", src, "tools/demo.py") == []


class TestS305PrintInCompute:
    """S305 routes compute-layer output through telemetry."""

    def test_flags_print(self):
        """A stray print() bypasses verbosity flags and JSON logging."""
        bad = """
            def fit(x):
                print("fitting", x)
                return x
        """
        found = run_rule("S305", bad)
        assert len(found) == 1
        assert found[0].severity == "warning"

    def test_cli_layer_exempt(self):
        """The CLI prints deliberately."""
        src = "print('usage: ...')\n"
        assert run_rule("S305", src, "src/repro/cli.py") == []


class TestS306TelemetrySchemaDrift:
    """S306 pins SPAN_KINDS / EVENT_FIELDS to the checked-in schema."""

    OBS_PATH = "src/repro/obs/snippet.py"

    def test_real_constants_are_in_sync(self):
        """The shipped spans/schema modules must match their document."""
        from pathlib import Path

        for module in ("spans", "schema"):
            path = f"src/repro/obs/{module}.py"
            source = Path(path).read_text(encoding="utf-8")
            assert run_rule("S306", source, path) == []

    def test_flags_a_span_kind_the_schema_lacks(self):
        from repro.obs.spans import SPAN_KINDS

        src = f"SPAN_KINDS = {tuple(SPAN_KINDS) + ('bogus',)!r}\n"
        found = run_rule("S306", src, self.OBS_PATH)
        assert len(found) == 1
        assert "'bogus'" in found[0].message
        assert "python -m repro.obs.schema" in found[0].message

    def test_flags_a_span_kind_the_code_dropped(self):
        from repro.obs.spans import SPAN_KINDS

        src = f"SPAN_KINDS = {tuple(k for k in SPAN_KINDS if k != 'run')!r}\n"
        found = run_rule("S306", src, self.OBS_PATH)
        assert len(found) == 1
        assert "'run'" in found[0].message

    def test_flags_event_shape_drift_in_both_directions(self):
        """An extra field, a dropped field and a novel type all surface."""
        from repro.obs.schema import EVENT_FIELDS

        entries = []
        for event_type, fields in EVENT_FIELDS.items():
            names = list(fields)
            if event_type == "message":
                names = [n for n in names if n != "text"] + ["extra"]
            body = ", ".join(f"{name!r}: ()" for name in names)
            entries.append(f"    {event_type!r}: {{{body}}},")
        entries.append("    'novel': {'type': ()},")
        src = "EVENT_FIELDS = {\n" + "\n".join(entries) + "\n}\n"
        found = run_rule("S306", src, self.OBS_PATH)
        messages = "\n".join(f.message for f in found)
        assert "'extra'" in messages  # field not in the schema
        assert "'text'" in messages  # schema field the literal dropped
        assert "'novel'" in messages  # event type not in the schema

    def test_flags_a_dropped_event_type(self):
        from repro.obs.schema import EVENT_FIELDS

        entries = [
            f"    {event_type!r}: {{{', '.join(f'{n!r}: ()' for n in fields)}}},"
            for event_type, fields in EVENT_FIELDS.items()
            if event_type != "access"
        ]
        src = "EVENT_FIELDS = {\n" + "\n".join(entries) + "\n}\n"
        found = run_rule("S306", src, self.OBS_PATH)
        assert len(found) == 1
        assert "'access'" in found[0].message

    def test_files_without_the_constants_are_silent(self):
        src = """
            OTHER = ("run", "bogus")
            def f():
                SPAN_KINDS = ("bogus",)  # not module level
        """
        assert run_rule("S306", src, self.OBS_PATH) == []

    def test_out_of_scope_ignored(self):
        """tests/ may build drifted literals on purpose (like this file)."""
        src = "SPAN_KINDS = ('bogus',)\n"
        assert run_rule("S306", src, "tests/obs/fixture.py") == []
