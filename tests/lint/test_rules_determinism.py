"""Positive and negative fixtures for every D-series rule."""

from __future__ import annotations

from .helpers import run_rule

#: A hot-path file D105 scopes on.
HOT_PATH = "src/repro/core/generator.py"


class TestD101ModuleLevelNumpyRandom:
    """D101 flags legacy global-RandomState draws, however spelled."""

    def test_flags_np_alias_seed(self):
        """``np.random.seed`` resolves through the import alias."""
        bad = """
            import numpy as np
            np.random.seed(7)
        """
        assert len(run_rule("D101", bad)) == 1

    def test_flags_from_import_draw(self):
        """``from numpy.random import rand`` is the same global state."""
        bad = """
            from numpy.random import rand
            x = rand(3)
        """
        assert len(run_rule("D101", bad)) == 1

    def test_allows_generator_methods(self):
        """Draws on an explicit Generator instance are the sanctioned path."""
        good = """
            import numpy as np

            def draw(rng: np.random.Generator):
                return rng.normal(size=4)
        """
        assert run_rule("D101", good) == []

    def test_allows_default_rng_constructor(self):
        """``default_rng`` is not a legacy draw (D102 covers seeding)."""
        good = """
            import numpy as np
            rng = np.random.default_rng(1234)
        """
        assert run_rule("D101", good) == []


class TestD102UnseededDefaultRng:
    """D102 flags only the zero-argument ``default_rng()`` form."""

    def test_flags_unseeded(self):
        """No argument means OS entropy."""
        bad = """
            import numpy as np
            rng = np.random.default_rng()
        """
        found = run_rule("D102", bad)
        assert len(found) == 1
        assert found[0].severity == "error"

    def test_allows_seeded(self):
        """Any explicit seed (int or SeedSequence) passes."""
        good = """
            import numpy as np
            a = np.random.default_rng(7)
            b = np.random.default_rng(seed=np.random.SeedSequence(1))
        """
        assert run_rule("D102", good) == []


class TestD103WallClock:
    """D103 bans calendar time in deterministic layers only."""

    def test_flags_time_time_in_core(self):
        """``time.time()`` in src/repro/core is a determinism leak."""
        bad = """
            import time

            def stamp():
                return time.time()
        """
        assert len(run_rule("D103", bad)) == 1

    def test_flags_datetime_now(self):
        """``datetime.now`` is the same leak in datetime clothing."""
        bad = """
            from datetime import datetime
            when = datetime.now()
        """
        assert len(run_rule("D103", bad, "src/repro/io/x.py")) == 1

    def test_allows_monotonic_timers(self):
        """Duration measurement via perf_counter stays legal."""
        good = """
            import time

            def measure():
                return time.perf_counter()
        """
        assert run_rule("D103", good) == []

    def test_out_of_scope_layer_ignored(self):
        """The obs layer may read the wall clock (telemetry timestamps)."""
        bad = """
            import time
            t = time.time()
        """
        assert run_rule("D103", bad, "src/repro/obs/sinks.py") == []


class TestD104StdlibRandom:
    """D104 bans the stdlib random module in deterministic layers."""

    def test_flags_import(self):
        """Plain ``import random``."""
        assert len(run_rule("D104", "import random\n")) == 1

    def test_flags_from_import(self):
        """``from random import choice``."""
        assert len(run_rule("D104", "from random import choice\n")) == 1

    def test_allows_numpy_random(self):
        """``numpy.random`` subpackage import is not the stdlib module."""
        good = """
            import numpy.random
            from numpy.random import default_rng
        """
        assert run_rule("D104", good) == []

    def test_out_of_scope_ignored(self):
        """tools/ scripts may use stdlib random."""
        assert run_rule("D104", "import random\n", "tools/demo.py") == []


class TestD105ImplicitDtype:
    """D105 wants explicit dtypes on np.full/np.arange in hot paths."""

    def test_flags_dtypeless_full(self):
        """``np.full(n, day)`` infers the platform C long."""
        bad = """
            import numpy as np

            def cols(n, day):
                return np.full(n, day)
        """
        found = run_rule("D105", bad, HOT_PATH)
        assert len(found) == 1
        assert found[0].severity == "warning"

    def test_flags_dtypeless_arange(self):
        """``np.arange(1440)`` has the same platform dependence."""
        bad = """
            import numpy as np
            minutes = np.arange(1440)
        """
        assert len(run_rule("D105", bad, HOT_PATH)) == 1

    def test_allows_explicit_dtype(self):
        """Pinning dtype= silences the rule."""
        good = """
            import numpy as np
            minutes = np.arange(1440, dtype=np.int64)
            days = np.full(10, 3, dtype=np.int16)
        """
        assert run_rule("D105", good, HOT_PATH) == []

    def test_non_hot_path_ignored(self):
        """Analysis code may let numpy infer dtypes."""
        bad = """
            import numpy as np
            x = np.arange(10)
        """
        assert run_rule("D105", bad, "src/repro/analysis/x.py") == []


class TestD106SharedRngInLoop:
    """D106 flags shared-generator draws inside dict-view loops."""

    def test_flags_rng_in_items_loop(self):
        """One rng threaded through ``.items()`` couples unit order."""
        bad = """
            def gen(profiles, rng):
                out = []
                for name, prof in profiles.items():
                    out.append(prof.sample(rng))
                return out
        """
        found = run_rule("D106", bad)
        assert len(found) == 1
        assert "iteration order" in found[0].message

    def test_flags_sorted_wrapped_view(self):
        """``sorted(d.items())`` still consumes the shared stream in order."""
        bad = """
            def gen(profiles, day_rng):
                for name, prof in sorted(profiles.items()):
                    prof.sample(day_rng)
        """
        assert len(run_rule("D106", bad)) == 1

    def test_allows_per_unit_rng(self):
        """An rng derived inside the loop body is the sanctioned pattern."""
        good = """
            import numpy as np

            def gen(profiles, root_seed):
                for name, prof in profiles.items():
                    unit_rng = np.random.default_rng(seed_for(root_seed, name))
                    prof.sample(unit_rng)
        """
        assert run_rule("D106", good) == []

    def test_allows_non_view_loop(self):
        """Looping a plain list does not trigger the rule."""
        good = """
            def gen(units, rng):
                for unit in units:
                    unit.sample(rng)
        """
        assert run_rule("D106", good) == []


class TestD107GzipMtime:
    """D107 wants ``mtime=`` pinned on every library gzip write."""

    def test_flags_gzip_open_write(self):
        """``gzip.open(path, "wt")`` embeds the wall clock."""
        bad = """
            import gzip

            def dump(path, text):
                with gzip.open(path, "wt") as fh:
                    fh.write(text)
        """
        assert len(run_rule("D107", bad, "src/repro/io/x.py")) == 1

    def test_flags_gzipfile_keyword_mode(self):
        """``GzipFile(..., mode="wb")`` without mtime is the same bug."""
        bad = """
            import gzip
            fh = gzip.GzipFile("out.gz", mode="wb")
        """
        assert len(run_rule("D107", bad, "src/repro/io/x.py")) == 1

    def test_allows_pinned_mtime(self):
        """``mtime=0`` makes the header byte-deterministic."""
        good = """
            import gzip
            fh = gzip.GzipFile("out.gz", mode="wb", mtime=0)
        """
        assert run_rule("D107", good, "src/repro/io/x.py") == []

    def test_allows_read_mode(self):
        """Readers have no header to pin."""
        good = """
            import gzip
            with gzip.open("in.gz", "rt") as fh:
                fh.read()
        """
        assert run_rule("D107", good, "src/repro/io/x.py") == []
