"""Driver behaviour: discovery, syntax errors, parallel/serial identity,
registry integrity, and the shipped tree linting clean."""

from __future__ import annotations

import textwrap

import pytest

from repro.lint import (
    Baseline,
    LintError,
    all_rules,
    get_rule,
    lint_paths,
    lint_source,
)
from repro.lint.driver import SYNTAX_RULE_ID, discover_files

BAD = "import numpy as np\nrng = np.random.default_rng()\n"
GOOD = '"""Fine."""\nVALUE = 1\n'


def _tree(tmp_path):
    """A tiny repo tree with one violation and one clean module."""
    pkg = tmp_path / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text(BAD)
    (pkg / "good.py").write_text(GOOD)
    (pkg / "__pycache__").mkdir()
    (pkg / "__pycache__" / "stale.py").write_text(BAD)
    return tmp_path


class TestDiscovery:
    """File discovery: defaults, exclusions, and loud typos."""

    def test_walks_default_roots_and_excludes_pycache(self, tmp_path):
        """Only real sources are linted; caches are skipped."""
        files = discover_files(_tree(tmp_path))
        assert files == ["src/repro/core/bad.py", "src/repro/core/good.py"]

    def test_explicit_file_target(self, tmp_path):
        """Naming one file lints exactly that file."""
        _tree(tmp_path)
        files = discover_files(tmp_path, ["src/repro/core/good.py"])
        assert files == ["src/repro/core/good.py"]

    def test_unknown_target_raises(self, tmp_path):
        """A typo must not silently lint nothing."""
        with pytest.raises(FileNotFoundError, match="no_such"):
            discover_files(_tree(tmp_path), ["no_such_dir"])


class TestLintPaths:
    """End-to-end runs over the tiny tree."""

    def test_finds_the_seeded_violation(self, tmp_path):
        """The canonical acceptance check: unseeded default_rng is caught."""
        result = lint_paths(_tree(tmp_path))
        assert [f.rule for f in result.findings] == ["D102"]
        assert result.files == 2
        assert result.failed()

    def test_parallel_output_identical_to_serial(self, tmp_path):
        """jobs>1 fans out through make_executor with identical findings."""
        tree = _tree(tmp_path)
        serial = lint_paths(tree, jobs=1)
        parallel = lint_paths(tree, jobs=2)
        assert parallel.findings == serial.findings
        assert parallel.files == serial.files
        assert parallel.suppressed == serial.suppressed

    def test_baseline_filters_findings(self, tmp_path):
        """A baselined violation no longer fails the run."""
        tree = _tree(tmp_path)
        bare = lint_paths(tree)
        baseline = Baseline.from_findings(
            bare.unbaselined_findings, justification="fixture"
        )
        result = lint_paths(tree, baseline=baseline)
        assert result.findings == []
        assert result.baselined == 1
        assert not result.failed()


class TestSyntaxErrors:
    """Unparseable files become E999 findings, not crashes."""

    def test_syntax_error_reported(self):
        """One E999 finding carries the parse failure."""
        report = lint_source("src/repro/core/x.py", "def broken(:\n")
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert finding.rule == SYNTAX_RULE_ID
        assert finding.severity == "error"
        assert "does not parse" in finding.message


class TestRegistry:
    """The rule registry: coverage floor and lookup errors."""

    def test_catalog_meets_issue_floor(self):
        """At least 10 rules, spanning all three series."""
        ids = [rule.id for rule in all_rules()]
        assert len(ids) >= 10
        assert ids == sorted(ids)
        for series in ("D", "P", "S"):
            assert any(i.startswith(series) for i in ids), series

    def test_every_rule_documented(self):
        """id/title/severity/rationale are all populated."""
        for rule in all_rules():
            assert rule.id and rule.title and rule.rationale, rule
            assert rule.severity in ("error", "warning")

    def test_unknown_rule_id_raises(self):
        """Lookup typos fail loudly."""
        with pytest.raises(LintError, match="Z999"):
            get_rule("Z999")


class TestSelfLint:
    """The linter's own acceptance bar: the shipped tree is clean."""

    def test_shipped_tree_lints_clean(self, repo_root):
        """src/tools/benchmarks produce zero findings over the baseline."""
        baseline = Baseline.load(
            repo_root / "baselines/repro_lint_baseline.json"
        )
        result = lint_paths(repo_root, baseline=baseline)
        assert result.findings == [], "\n".join(
            f.location() + " " + f.rule + " " + f.message
            for f in result.findings
        )
        assert result.stale_baseline == []
        assert not result.failed()

    def test_suppressions_in_tree_are_justified(self, repo_root):
        """Every inline directive in the tree carries a justification."""
        from repro.lint.suppress import parse_suppressions

        for rel in discover_files(repo_root):
            source = (repo_root / rel).read_text(encoding="utf-8")
            suppressions, problems = parse_suppressions(rel, source)
            assert problems == [], rel
            for suppression in suppressions:
                assert suppression.justification, (
                    f"{rel}:{suppression.line}: suppression without a "
                    "-- justification"
                )


def test_scope_virtual_paths():
    """The same snippet trips scoped rules only inside their scope."""
    snippet = textwrap.dedent("""
        import time
        t = time.time()
    """)
    in_scope = lint_source("src/repro/core/x.py", snippet,
                           [get_rule("D103")])
    out_scope = lint_source("src/repro/analysis/x.py", snippet,
                            [get_rule("D103")])
    assert len(in_scope.findings) == 1
    assert out_scope.findings == ()
