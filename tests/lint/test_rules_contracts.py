"""C-series fixtures: cross-artifact contract drift.

Artifacts are injected directly into the graph, mirroring how the
driver loads them from the repository root; an absent artifact means
"nothing to check against", so exported subtrees lint clean.
"""

from __future__ import annotations

import json

from .helpers import run_project_rule

HTTP = "src/repro/serve/http.py"
CLI = "src/repro/cli.py"
SPEC = "schemas/openapi-serve.json"
USAGE = "docs/USAGE.md"
OBS = "docs/OBSERVABILITY.md"


def _spec(*paths: str) -> str:
    return json.dumps({"paths": {p: {"get": {}} for p in paths}})


class TestC601RouteSpecDrift:
    ROUTES = """
        ROUTES = {
            "/v1/things": "things",
            "/v1/things/detail": "detail",
        }
    """

    def test_in_sync_is_clean(self):
        findings = run_project_rule(
            "C601",
            {HTTP: self.ROUTES},
            {SPEC: _spec("/v1/things", "/v1/things/detail")},
        )
        assert findings == []

    def test_route_missing_from_spec(self):
        findings = run_project_rule(
            "C601",
            {HTTP: self.ROUTES},
            {SPEC: _spec("/v1/things")},
        )
        assert len(findings) == 1
        assert findings[0].path == HTTP
        assert "/v1/things/detail" in findings[0].message

    def test_spec_path_without_handler(self):
        findings = run_project_rule(
            "C601",
            {HTTP: self.ROUTES},
            {SPEC: _spec("/v1/things", "/v1/things/detail", "/v1/ghost")},
        )
        assert len(findings) == 1
        assert findings[0].path == SPEC
        assert findings[0].symbol == "paths"
        assert "/v1/ghost" in findings[0].message

    def test_unparseable_spec_is_one_finding(self):
        findings = run_project_rule(
            "C601", {HTTP: self.ROUTES}, {SPEC: "not json"}
        )
        assert len(findings) == 1
        assert findings[0].path == SPEC

    def test_no_http_module_is_clean(self):
        findings = run_project_rule(
            "C601",
            {"src/repro/core/x.py": "VALUE = 1"},
            {SPEC: _spec("/v1/things")},
        )
        assert findings == []


class TestC602CliUsageDrift:
    CLI_SOURCE = """
        import argparse

        def build():
            p = argparse.ArgumentParser()
            p.add_argument("--seed", type=int)
            p.add_argument("--chunk-size", type=int)
            return p
    """

    def test_documented_flags_are_clean(self):
        findings = run_project_rule(
            "C602",
            {CLI: self.CLI_SOURCE},
            {USAGE: "Use `--seed N` and `--chunk-size SESSIONS`."},
        )
        assert findings == []

    def test_undocumented_flag(self):
        findings = run_project_rule(
            "C602",
            {CLI: self.CLI_SOURCE},
            {USAGE: "Only `--seed` is described here."},
        )
        assert len(findings) == 1
        assert "'--chunk-size'" in findings[0].message

    def test_prefix_mention_does_not_count(self):
        """``--chunk-size-hint`` in the doc documents a different flag."""
        findings = run_project_rule(
            "C602",
            {CLI: self.CLI_SOURCE},
            {USAGE: "`--seed` and `--chunk-size-hint` are flags."},
        )
        assert len(findings) == 1

    def test_missing_artifact_flags_everything(self):
        findings = run_project_rule("C602", {CLI: self.CLI_SOURCE}, {})
        assert len(findings) == 2


class TestC603MetricDocDrift:
    def test_direct_literal_documented(self):
        findings = run_project_rule(
            "C603",
            {
                "src/repro/obs/inst.py": """
                def tick(registry):
                    registry.counter("gen.sessions").inc()
                """,
            },
            {OBS: "| `gen.sessions` | counter | sessions generated |"},
        )
        assert findings == []

    def test_direct_literal_undocumented(self):
        findings = run_project_rule(
            "C603",
            {
                "src/repro/obs/inst.py": """
                def tick(registry):
                    registry.counter("gen.sessions").inc()
                """,
            },
            {OBS: "no metrics documented here"},
        )
        assert len(findings) == 1
        assert "'gen.sessions'" in findings[0].message

    def test_prefix_mention_does_not_count(self):
        """``serve.requests.total`` does not document ``serve.requests``."""
        findings = run_project_rule(
            "C603",
            {
                "src/repro/obs/inst.py": """
                def tick(registry):
                    registry.counter("serve.requests").inc()
                """,
            },
            {OBS: "| `serve.requests.total` |"},
        )
        assert len(findings) == 1

    def test_name_through_wrapper_function(self):
        """C603 sees names routed through helpers via the dataflow pass."""
        files = {
            "src/repro/serve/app2.py": """
            class App:
                def __init__(self, metrics):
                    self.metrics = metrics

                def _count(self, name, amount=1):
                    self.metrics.counter(name).inc(amount)

                def handle(self):
                    self._count("serve.hits")
            """,
        }
        assert run_project_rule("C603", files, {OBS: "nothing"}) != []
        assert run_project_rule("C603", files, {OBS: "`serve.hits`"}) == []
