"""Shared helpers: run one rule against an in-memory snippet.

Rule fixtures pass *virtual* repo-relative paths (``src/repro/core/x.py``)
to place a snippet inside or outside a rule's scope — no files touch disk.
"""

from __future__ import annotations

import textwrap

from repro.lint import Finding, get_rule, lint_source

#: Default virtual path inside every rule's scope (core is covered by all
#: D/P/S scoping prefixes that matter to the fixtures).
CORE_PATH = "src/repro/core/snippet.py"


def run_rule(rule_id: str, source: str, path: str = CORE_PATH) -> list[Finding]:
    """Findings of one rule on a dedented snippet at a virtual path."""
    report = lint_source(path, textwrap.dedent(source), [get_rule(rule_id)])
    return [f for f in report.findings if f.rule == rule_id]
