"""Shared helpers: run one rule against an in-memory snippet.

Rule fixtures pass *virtual* repo-relative paths (``src/repro/core/x.py``)
to place a snippet inside or outside a rule's scope — no files touch disk.
"""

from __future__ import annotations

import textwrap

from repro.lint import (
    Finding,
    ProjectGraph,
    ProjectRule,
    get_rule,
    lint_source,
    run_project_rules,
    summarize_source,
)

#: Default virtual path inside every rule's scope (core is covered by all
#: D/P/S scoping prefixes that matter to the fixtures).
CORE_PATH = "src/repro/core/snippet.py"


def run_rule(rule_id: str, source: str, path: str = CORE_PATH) -> list[Finding]:
    """Findings of one rule on a dedented snippet at a virtual path."""
    report = lint_source(path, textwrap.dedent(source), [get_rule(rule_id)])
    return [f for f in report.findings if f.rule == rule_id]


def build_graph(
    files: dict[str, str], artifacts: dict[str, str] | None = None
) -> ProjectGraph:
    """A :class:`ProjectGraph` over in-memory dedented sources."""
    summaries = [
        summarize_source(path, textwrap.dedent(source))
        for path, source in sorted(files.items())
    ]
    return ProjectGraph.build(
        [s for s in summaries if s is not None], artifacts
    )


def run_project_rule(
    rule_id: str,
    files: dict[str, str],
    artifacts: dict[str, str] | None = None,
) -> list[Finding]:
    """Findings of one project rule over an in-memory file set."""
    rule = get_rule(rule_id)
    assert isinstance(rule, ProjectRule), f"{rule_id} is not a project rule"
    graph = build_graph(files, artifacts)
    return [
        f for f in run_project_rules(graph, [rule]) if f.rule == rule_id
    ]
