"""Inline-suppression directives: same-line, next-line, file-level, typos."""

from __future__ import annotations

import textwrap

from repro.lint import get_rule, lint_source
from repro.lint.suppress import DIRECTIVE_RULE_ID, parse_suppressions

PATH = "src/repro/core/snippet.py"


def _report(source: str):
    """Lint a dedented snippet with the D102 rule only."""
    return lint_source(PATH, textwrap.dedent(source), [get_rule("D102")])


def test_same_line_disable():
    """``disable=`` on the offending line suppresses that finding."""
    report = _report("""
        import numpy as np
        rng = np.random.default_rng()  # repro-lint: disable=D102 -- fuzz seed
    """)
    assert report.findings == ()
    assert report.suppressed == 1


def test_disable_next_line():
    """``disable-next-line=`` covers the following line only."""
    report = _report("""
        import numpy as np
        # repro-lint: disable-next-line=D102 -- fuzz seed
        rng = np.random.default_rng()
        other = np.random.default_rng()
    """)
    assert report.suppressed == 1
    assert len(report.findings) == 1
    assert report.findings[0].rule == "D102"


def test_disable_file():
    """``disable-file=`` suppresses everywhere in the file."""
    report = _report("""
        # repro-lint: disable-file=D102 -- generated fixture
        import numpy as np
        a = np.random.default_rng()
        b = np.random.default_rng()
    """)
    assert report.findings == ()
    assert report.suppressed == 2


def test_other_rule_not_suppressed():
    """A directive only covers the rules it names."""
    report = _report("""
        import numpy as np
        rng = np.random.default_rng()  # repro-lint: disable=D101
    """)
    assert len(report.findings) == 1


def test_disable_all_keyword():
    """``disable=all`` suppresses every rule on the line."""
    report = _report("""
        import numpy as np
        rng = np.random.default_rng()  # repro-lint: disable=all -- demo
    """)
    assert report.findings == ()
    assert report.suppressed == 1


def test_unknown_rule_id_is_x001_finding():
    """A typo in a directive must be loud, not silently inert."""
    report = _report("""
        import numpy as np
        x = 1  # repro-lint: disable=D999
    """)
    rules = [f.rule for f in report.findings]
    assert rules == [DIRECTIVE_RULE_ID]
    assert "D999" in report.findings[0].message


def test_malformed_directive_is_x001_finding():
    """A directive that fails to parse is reported too."""
    report = _report("""
        x = 1  # repro-lint: disable D102
    """)
    assert [f.rule for f in report.findings] == [DIRECTIVE_RULE_ID]


def test_directive_in_string_literal_ignored():
    """Only real comments count — tokenize, not substring search."""
    source = textwrap.dedent("""
        import numpy as np
        doc = "# repro-lint: disable-file=D102"
        rng = np.random.default_rng()
    """)
    report = lint_source(PATH, source, [get_rule("D102")])
    assert len(report.findings) == 1
    assert report.suppressed == 0


def test_parse_extracts_justification():
    """The `` -- why`` tail is kept on the parsed suppression."""
    suppressions, problems = parse_suppressions(
        PATH, "x = 1  # repro-lint: disable=D101,D102 -- known fixture\n"
    )
    assert problems == []
    assert len(suppressions) == 1
    assert suppressions[0].rules == frozenset({"D101", "D102"})
    assert suppressions[0].justification == "known fixture"
    assert not suppressions[0].file_level
