"""W-series fixtures: interprocedural RNG and seed provenance.

Each rule gets a bad fixture that must fire and a good fixture encoding
the sanctioned pattern that must stay silent — including the
interprocedural variants the per-file D rules cannot see.
"""

from __future__ import annotations

from .helpers import run_project_rule


class TestW401RngEscapesToWorker:
    def test_rng_named_argument_at_submit_site(self):
        findings = run_project_rule(
            "W401",
            {
                "src/repro/core/fan.py": """
                import numpy as np
                from repro.pipeline.executors import make_executor

                def kernel(rng):
                    return rng.normal()

                def fan_out(seed):
                    rng = np.random.default_rng(seed)
                    with make_executor(2) as executor:
                        executor.submit(kernel, rng)
                """,
            },
        )
        assert len(findings) == 1
        assert findings[0].path == "src/repro/core/fan.py"
        assert "executor.submit" in findings[0].message

    def test_generator_valued_local_with_innocent_name(self):
        findings = run_project_rule(
            "W401",
            {
                "src/repro/core/fan.py": """
                import numpy as np
                from repro.pipeline.executors import make_executor

                def kernel(source):
                    return source.normal()

                def fan_out(seed):
                    source = np.random.default_rng(seed)
                    with make_executor(2) as executor:
                        executor.map(kernel, source)
                """,
            },
        )
        assert len(findings) == 1

    def test_generator_through_returning_helper(self):
        findings = run_project_rule(
            "W401",
            {
                "src/repro/core/fan.py": """
                import numpy as np
                from repro.pipeline.executors import make_executor

                def mint(seed):
                    return np.random.default_rng(seed)

                def kernel(stream):
                    return stream.normal()

                def fan_out(seed):
                    stream = mint(seed)
                    with make_executor(2) as executor:
                        executor.submit(kernel, stream)
                """,
            },
        )
        assert len(findings) == 1

    def test_shipping_seeds_is_clean(self):
        findings = run_project_rule(
            "W401",
            {
                "src/repro/core/fan.py": """
                import numpy as np
                from repro.pipeline.executors import make_executor

                def kernel(unit_seed):
                    rng = np.random.default_rng(unit_seed)
                    return rng.normal()

                def fan_out(seed):
                    with make_executor(2) as executor:
                        executor.submit(kernel, seed)
                """,
            },
        )
        assert findings == []


class TestW402SeedReusedAcrossUnits:
    def test_invariant_seed_in_loop(self):
        findings = run_project_rule(
            "W402",
            {
                "src/repro/core/units.py": """
                import numpy as np

                def run(seed):
                    out = []
                    for day in range(3):
                        rng = np.random.default_rng(seed)
                        out.append(rng.normal())
                    return out
                """,
            },
        )
        assert len(findings) == 1
        assert "never varies" in findings[0].message

    def test_invariant_seed_through_helper(self):
        findings = run_project_rule(
            "W402",
            {
                "src/repro/campaign/units.py": """
                import numpy as np

                def mint(seed):
                    return np.random.default_rng(seed)

                def run(seed):
                    out = []
                    for day in range(3):
                        rng = mint(seed)
                        out.append(rng.normal())
                    return out
                """,
            },
        )
        assert len(findings) == 1

    def test_loop_varying_seed_is_clean(self):
        findings = run_project_rule(
            "W402",
            {
                "src/repro/core/units.py": """
                import numpy as np

                def mint(seed):
                    return np.random.default_rng(seed)

                def run(seeds):
                    out = []
                    for unit_seed in seeds:
                        rng = mint(unit_seed)
                        out.append(rng.normal())
                    return out
                """,
            },
        )
        assert findings == []

    def test_unknown_seed_expression_is_clean(self):
        """Computed seed material (a call) may vary — stay silent."""
        findings = run_project_rule(
            "W402",
            {
                "src/repro/core/units.py": """
                import numpy as np
                from repro.pipeline.context import stream_seed

                def run(seed):
                    for day in range(3):
                        rng = np.random.default_rng(stream_seed(seed, day))
                        rng.normal()
                """,
            },
        )
        assert findings == []


class TestW403SharedRngBehindCall:
    def test_shared_value_drawn_through_helper_in_view_loop(self):
        findings = run_project_rule(
            "W403",
            {
                "src/repro/campaign/sweep.py": """
                def helper(gen):
                    return gen.normal()

                def run(units, gen):
                    out = {}
                    for key, cfg in units.items():
                        out[key] = helper(gen)
                    return out
                """,
            },
        )
        assert len(findings) == 1
        assert "helper()" in findings[0].message

    def test_draw_two_calls_deep(self):
        findings = run_project_rule(
            "W403",
            {
                "src/repro/campaign/sweep.py": """
                def inner(gen):
                    return gen.uniform()

                def outer(gen):
                    return inner(gen)

                def run(units, gen):
                    out = {}
                    for key in units.keys():
                        out[key] = outer(gen)
                    return out
                """,
            },
        )
        assert len(findings) == 1

    def test_per_unit_value_is_clean(self):
        findings = run_project_rule(
            "W403",
            {
                "src/repro/campaign/sweep.py": """
                def helper(gen):
                    return gen.normal()

                def run(units):
                    out = {}
                    for key, gen in units.items():
                        out[key] = helper(gen)
                    return out
                """,
            },
        )
        assert findings == []

    def test_list_iteration_is_clean(self):
        """Order-stable iteration over a list is not a dict-view loop."""
        findings = run_project_rule(
            "W403",
            {
                "src/repro/campaign/sweep.py": """
                def helper(gen):
                    return gen.normal()

                def run(unit_list, gen):
                    return [helper(gen) for _ in unit_list]
                """,
            },
        )
        assert findings == []

    def test_rng_named_arg_left_to_d106_in_core(self):
        """Inside D106's patrol area the per-file rule owns the spelling."""
        findings = run_project_rule(
            "W403",
            {
                "src/repro/core/sweep.py": """
                def helper(rng):
                    return rng.normal()

                def run(units, rng):
                    out = {}
                    for key, cfg in units.items():
                        out[key] = helper(rng)
                    return out
                """,
            },
        )
        assert findings == []
