"""Property-based tests of the mergeable campaign sketches.

The sketches' whole value is one invariant: **merge is bit-exactly
associative and commutative**, and aggregating a table equals aggregating
any partition of it in any order.  Hypothesis drives random session
batches, partitions and merge orders through the digest (the SHA-256 of
the canonical serialized form), so "equal" always means byte-identical —
never approximately equal.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign.sketches import (
    DEFAULT_HLL_SEED,
    CampaignAggregate,
    FixedHistogram,
    HyperLogLog,
    Moments,
    SketchError,
    merge_all,
)
from repro.dataset.records import SERVICE_NAMES, SessionTable

#: Small HLL precision for property tests: 256 registers keep each
#: example fast while exercising exactly the same code paths.
P = 8


@st.composite
def session_tables(draw, max_rows: int = 40) -> SessionTable:
    """Random schema-exact session tables, including the empty one."""
    n = draw(st.integers(min_value=0, max_value=max_rows))

    def column(strategy):
        return draw(st.lists(strategy, min_size=n, max_size=n))

    return SessionTable(
        np.asarray(
            column(st.integers(0, len(SERVICE_NAMES) - 1)), dtype=np.int16
        ),
        np.asarray(column(st.integers(0, 9)), dtype=np.int32),
        np.asarray(column(st.integers(0, 6)), dtype=np.int16),
        np.asarray(column(st.integers(0, 1439)), dtype=np.int16),
        np.asarray(
            column(st.floats(1.0, 86400.0, width=32)), dtype=np.float32
        ),
        np.asarray(
            column(st.floats(2.0**-13, 8192.0, width=32)), dtype=np.float32
        ),
        np.asarray(column(st.booleans()), dtype=bool),
    )


def aggregate_of(table: SessionTable) -> CampaignAggregate:
    """One-unit aggregate of a table at the test precision."""
    return CampaignAggregate.from_table(table, n_units=1, precision=P)


class TestMergeAlgebra:
    @settings(max_examples=40, deadline=None)
    @given(session_tables(), session_tables(), session_tables())
    def test_merge_is_associative(self, ta, tb, tc):
        a, b, c = aggregate_of(ta), aggregate_of(tb), aggregate_of(tc)
        left = aggregate_of(ta).merge(aggregate_of(tb)).merge(c)
        right = a.merge(aggregate_of(tb).merge(aggregate_of(tc)))
        assert left.digest() == right.digest()

    @settings(max_examples=40, deadline=None)
    @given(session_tables(), session_tables())
    def test_merge_is_commutative(self, ta, tb):
        ab = aggregate_of(ta).merge(aggregate_of(tb))
        ba = aggregate_of(tb).merge(aggregate_of(ta))
        assert ab.digest() == ba.digest()

    @settings(max_examples=40, deadline=None)
    @given(
        session_tables(max_rows=60),
        st.integers(0, 2**31 - 1),
        st.integers(1, 6),
    )
    def test_any_shard_order_equals_single_pass(self, table, order, k):
        """Sharded merge == one-pass aggregate over the concatenation."""
        n = len(table)
        cuts = sorted(
            np.random.default_rng(order).integers(0, n + 1, size=k - 1)
        )
        bounds = [0, *cuts, n]
        idx = np.arange(n)
        parts = [
            SessionTable(
                *(
                    getattr(table, col)[idx[lo:hi]]
                    for col in SessionTable.COLUMNS
                ),
                validate=False,
            )
            for lo, hi in zip(bounds[:-1], bounds[1:])
        ]
        shards = [
            CampaignAggregate.from_table(p, n_units=0, precision=P)
            for p in parts
        ]
        permuted = list(
            np.random.default_rng(order + 1).permutation(len(shards))
        )
        merged = merge_all(
            (shards[i] for i in permuted), precision=P
        ).count_units(1)
        assert merged.digest() == aggregate_of(table).digest()

    @settings(max_examples=40, deadline=None)
    @given(session_tables())
    def test_empty_aggregate_is_merge_identity(self, table):
        agg = aggregate_of(table)
        before = agg.digest()
        agg.merge(CampaignAggregate.empty(precision=P))
        assert agg.digest() == before


class TestSerializationRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(session_tables())
    def test_round_trip_is_bit_exact(self, table):
        agg = aggregate_of(table)
        clone = CampaignAggregate.from_dict(agg.to_dict())
        assert clone.digest() == agg.digest()
        assert clone.canonical_json() == agg.canonical_json()

    @settings(max_examples=25, deadline=None)
    @given(session_tables(), session_tables())
    def test_merge_of_deserialized_equals_merge_of_originals(self, ta, tb):
        direct = aggregate_of(ta).merge(aggregate_of(tb))
        via_json = CampaignAggregate.from_dict(
            aggregate_of(ta).to_dict()
        ).merge(CampaignAggregate.from_dict(aggregate_of(tb).to_dict()))
        assert via_json.digest() == direct.digest()

    def test_wrong_format_version_rejected(self):
        payload = CampaignAggregate.empty(precision=P).to_dict()
        payload["format"] = 999
        with pytest.raises(SketchError, match="format"):
            CampaignAggregate.from_dict(payload)

    def test_corrupt_payload_rejected(self):
        payload = CampaignAggregate.empty(precision=P).to_dict()
        del payload["minute_sessions"]
        with pytest.raises(SketchError):
            CampaignAggregate.from_dict(payload)


class TestEmptyShardEdgeCase:
    """A zero-session (day, BS) unit must be a valid identity element."""

    def test_empty_table_update_is_identity(self):
        agg = CampaignAggregate.empty(precision=P)
        before = agg.digest()
        agg.update_table(SessionTable.empty())
        assert agg.digest() == before

    def test_derivations_of_empty_are_total(self):
        agg = CampaignAggregate.empty(precision=P)
        agg.count_units(3)  # empty units still cover BS-time
        assert agg.n_sessions == 0
        assert agg.total_volume_mb() == 0.0
        assert agg.day_night_ratio() == 0.0
        assert agg.volume.mean() == 0.0 and agg.volume.variance() == 0.0
        assert agg.duration.mean() == 0.0
        assert agg.distinct_sessions() == 0.0
        for derived in (
            agg.volume_pdf(),
            agg.duration_pdf(),
            agg.circadian_profile(),
            agg.service_session_shares(),
            agg.service_traffic_shares(),
        ):
            assert np.all(np.isfinite(derived))
            assert np.all(derived == 0.0)

    @settings(max_examples=25, deadline=None)
    @given(session_tables())
    def test_merging_empty_units_only_dilutes_rates(self, table):
        """Empty units change per-unit rates but never the counters."""
        agg = aggregate_of(table)
        sessions = agg.n_sessions
        empty = CampaignAggregate.empty(precision=P).count_units(5)
        agg.merge(empty)
        assert agg.n_sessions == sessions
        assert agg.n_units == 6
        assert np.all(np.isfinite(agg.circadian_profile()))


class TestMoments:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.floats(2.0**-13, 65536.0, width=32), max_size=50),
        st.lists(st.floats(2.0**-13, 65536.0, width=32), max_size=50),
    )
    def test_split_update_equals_single_update(self, xs, ys):
        both = Moments(20, 6).update(np.asarray(xs + ys, dtype=np.float64))
        split = (
            Moments(20, 6)
            .update(np.asarray(xs, dtype=np.float64))
            .merge(Moments(20, 6).update(np.asarray(ys, dtype=np.float64)))
        )
        assert both.to_dict() == split.to_dict()

    def test_quanta_mismatch_rejected(self):
        with pytest.raises(SketchError, match="quanta"):
            Moments(20, 6).merge(Moments(10, 6))

    def test_mean_variance_track_numpy(self):
        values = np.linspace(0.5, 99.5, 200)
        m = Moments(20, 6).update(values)
        assert m.count == 200
        assert m.mean() == pytest.approx(float(values.mean()), rel=1e-6)
        assert m.variance() == pytest.approx(float(values.var()), rel=1e-3)
        assert m.minimum == 0.5 and m.maximum == 99.5


class TestFixedHistogram:
    def test_grid_mismatch_rejected(self):
        a = FixedHistogram(np.array([0.0, 1.0, 2.0]))
        b = FixedHistogram(np.array([0.0, 1.0, 3.0]))
        with pytest.raises(SketchError, match="grids"):
            a.merge(b)

    def test_out_of_range_clips_into_edge_bins(self):
        h = FixedHistogram(np.array([0.0, 1.0, 2.0]))
        h.update(np.array([-5.0, 0.5, 99.0]))
        assert h.counts.tolist() == [2, 1]
        assert h.total == 3

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(-10.0, 10.0, width=32), min_size=1, max_size=60))
    def test_density_integrates_to_one(self, values):
        h = FixedHistogram(np.linspace(-4.0, 4.0, 17))
        h.update(np.asarray(values, dtype=np.float64))
        integral = float(np.sum(h.density() * np.diff(h.edges)))
        assert integral == pytest.approx(1.0, rel=1e-9)


class TestHyperLogLog:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.integers(500, 20_000))
    def test_estimate_within_standard_error_band(self, offset, n):
        """The estimate stays inside a 4-sigma band of true cardinality."""
        sketch = HyperLogLog(precision=12)
        items = (np.arange(n, dtype=np.uint64) * np.uint64(2**20)) + np.uint64(
            offset
        )
        sketch.add_items(items)
        relative = abs(sketch.estimate() - n) / n
        assert relative <= 4 * sketch.relative_error()

    def test_merge_equals_union(self):
        a, b = HyperLogLog(precision=P), HyperLogLog(precision=P)
        a.add_items(np.arange(0, 3000, dtype=np.uint64))
        b.add_items(np.arange(2000, 5000, dtype=np.uint64))
        union = HyperLogLog(precision=P)
        union.add_items(np.arange(0, 5000, dtype=np.uint64))
        assert np.array_equal(
            a.merge(b).registers, union.registers
        ), "merged registers must equal the union's registers"

    def test_merge_is_idempotent(self):
        a = HyperLogLog(precision=P)
        a.add_items(np.arange(1000, dtype=np.uint64))
        before = a.registers.copy()
        clone = HyperLogLog.from_dict(a.to_dict())
        assert np.array_equal(a.merge(clone).registers, before)

    def test_incompatible_sketches_rejected(self):
        with pytest.raises(SketchError, match="precision"):
            HyperLogLog(precision=8).merge(HyperLogLog(precision=10))
        with pytest.raises(SketchError, match="seed"):
            HyperLogLog(precision=8, seed=1).merge(
                HyperLogLog(precision=8, seed=2)
            )

    def test_seed_changes_registers_not_scale(self):
        items = np.arange(5000, dtype=np.uint64)
        a = HyperLogLog(precision=12, seed=DEFAULT_HLL_SEED).add_items(items)
        b = HyperLogLog(precision=12, seed=999).add_items(items)
        assert not np.array_equal(a.registers, b.registers)
        assert b.estimate() == pytest.approx(5000, rel=4 * b.relative_error())
