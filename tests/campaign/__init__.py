"""Tests of the campaign aggregation layer (sketches, driver, fidelity)."""
