"""Campaign resume under faults: killed driver, corrupt checkpoints.

Mirrors ``tests/core/test_spool_resume.py`` at the campaign layer: a
driver process killed mid-campaign leaves a prefix of valid per-shard
checkpoints behind; a torn or tampered checkpoint must be detected and
recomputed, never trusted.  In every scenario the resumed campaign's
merged aggregate must be **byte-identical** (same digest) to an
uninterrupted run.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.campaign import run_campaign
from repro.campaign.driver import CHECKPOINT_KIND, CHECKPOINT_SUFFIX
from repro.core.arrivals import ArrivalModel
from repro.core.generator import TrafficGenerator
from repro.core.service_mix import ServiceMix
from repro.io.cache import ArtifactCache
from repro.io.params import save_release

SEED = 11
DAYS = 1
N_BS = 10
PRECISION = 10

#: Arrival model every campaign in this module runs under.
ARRIVAL = dict(peak_mu=2.0, peak_sigma=0.5, night_scale=0.4)

#: Subprocess driver: same generator recipe as :func:`generator`, with an
#: artificial per-shard delay so the parent can reliably kill it after the
#: first checkpoint lands but before the campaign completes.
_CHILD_SCRIPT = """
import sys, time
import repro.campaign.driver as driver
from repro.campaign import run_campaign
from repro.core.arrivals import ArrivalModel
from repro.core.generator import TrafficGenerator
from repro.core.service_mix import ServiceMix
from repro.io.cache import ArtifactCache
from repro.io.params import load_release

release, cache_dir = sys.argv[1], sys.argv[2]
bank, _ = load_release(release)
arrival = ArrivalModel(peak_mu=2.0, peak_sigma=0.5, night_scale=0.4)
mix = ServiceMix.from_table1().restricted_to(bank.services())
generator = TrafficGenerator({{bs: arrival for bs in range({n_bs})}}, mix, bank)

_real = driver._run_shard
def _slowed(item):
    time.sleep(0.2)
    return _real(item)
driver._run_shard = _slowed

run_campaign(
    generator, {days}, {seed}, shard_bs=1,
    cache=ArtifactCache(cache_dir), hll_precision={precision},
)
"""


@pytest.fixture(scope="module")
def generator(bank):
    mix = ServiceMix.from_table1().restricted_to(bank.services())
    return TrafficGenerator(
        {bs: ArrivalModel(**ARRIVAL) for bs in range(N_BS)}, mix, bank
    )


@pytest.fixture(scope="module")
def release_file(bank, tmp_path_factory):
    """The fitted bank on disk, for the killed subprocess to load."""
    path = tmp_path_factory.mktemp("release") / "release.json"
    save_release(path, bank)
    return path


@pytest.fixture(scope="module")
def baseline_digest(generator):
    """Digest of an uninterrupted run: the byte-identity reference."""
    return run_campaign(
        generator, DAYS, SEED, shard_bs=1, hll_precision=PRECISION
    ).digest()


def checkpoint_paths(cache_root) -> list:
    """Every per-shard checkpoint currently in the cache, sorted."""
    shard_dir = cache_root / CHECKPOINT_KIND
    if not shard_dir.is_dir():
        return []
    return sorted(shard_dir.glob(f"*{CHECKPOINT_SUFFIX}"))


def resume(generator, cache: ArtifactCache):
    return run_campaign(
        generator, DAYS, SEED, shard_bs=1, cache=cache, hll_precision=PRECISION
    )


class TestKilledDriver:
    def test_killed_mid_campaign_resumes_byte_identical(
        self, generator, release_file, baseline_digest, tmp_path
    ):
        """SIGKILL the driver after its first checkpoint, then resume."""
        script = _CHILD_SCRIPT.format(
            n_bs=N_BS, days=DAYS, seed=SEED, precision=PRECISION
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, ["src", env.get("PYTHONPATH")])
        )
        child = subprocess.Popen(
            [sys.executable, "-c", script, str(release_file), str(tmp_path)],
            env=env,
            cwd=os.getcwd(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
        )
        try:
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if checkpoint_paths(tmp_path) or child.poll() is not None:
                    break
                time.sleep(0.01)
            child.send_signal(signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:  # pragma: no cover - cleanup guard
                child.kill()
                child.wait(timeout=30)
        survived = checkpoint_paths(tmp_path)
        assert survived, "child died before writing any checkpoint"
        assert len(survived) < N_BS, "child finished before the kill"

        result = resume(generator, ArtifactCache(tmp_path))
        assert result.resumed_shards == len(survived)
        assert result.computed_shards == N_BS - len(survived)
        assert result.digest() == baseline_digest
        assert len(checkpoint_paths(tmp_path)) == N_BS


class TestCorruptCheckpoints:
    @pytest.fixture()
    def completed_cache(self, generator, tmp_path):
        """A cache holding every shard checkpoint of a finished run."""
        cache = ArtifactCache(tmp_path)
        result = resume(generator, cache)
        assert result.computed_shards == N_BS
        return cache

    def test_torn_checkpoint_recomputed_byte_identical(
        self, generator, baseline_digest, completed_cache, tmp_path
    ):
        """A truncated checkpoint is detected, recomputed and rewritten."""
        victim = checkpoint_paths(tmp_path)[2]
        original = victim.read_bytes()
        victim.write_bytes(original[: len(original) // 2])

        result = resume(generator, completed_cache)
        assert result.resumed_shards == N_BS - 1
        assert result.computed_shards == 1
        assert result.digest() == baseline_digest
        assert victim.read_bytes() == original  # rebuilt, not trusted as-is

    def test_tampered_format_version_recomputed(
        self, generator, baseline_digest, completed_cache, tmp_path
    ):
        """Valid JSON of a foreign format version is rejected on load."""
        victim = checkpoint_paths(tmp_path)[0]
        original = victim.read_text(encoding="utf-8")
        victim.write_text(
            original.replace('"format":1', '"format":999'), encoding="utf-8"
        )

        result = resume(generator, completed_cache)
        assert result.computed_shards == 1
        assert result.digest() == baseline_digest
        assert victim.read_text(encoding="utf-8") == original

    def test_intact_checkpoints_not_rebuilt_on_resume(
        self, generator, completed_cache, tmp_path
    ):
        """Resume touches only damaged checkpoints, never intact ones."""
        paths = checkpoint_paths(tmp_path)
        victim, intact = paths[-1], paths[:-1]
        stamps = {p: p.stat().st_mtime_ns for p in intact}
        victim.unlink()

        result = resume(generator, completed_cache)
        assert result.computed_shards == 1
        assert victim.exists()
        for path in intact:
            assert path.stat().st_mtime_ns == stamps[path]


class TestChunkBudgetIndependentResume:
    """Regression: checkpoint identity must not depend on the chunk budget.

    ``_shard_key`` deliberately excludes ``chunk_sessions`` — the budget
    bounds worker memory, never the statistics.  A resume under a
    *different* ``--chunk-size`` must therefore hit every checkpoint the
    first run wrote (0 recomputed) and merge to the byte-identical
    digest.  If the budget ever leaks into the cache key or the shard
    aggregation, this test turns that regression into a hard failure.
    """

    @pytest.mark.parametrize("resume_chunk", [777, 999, 10_000])
    def test_resume_with_different_chunk_size_hits_checkpoints(
        self, generator, baseline_digest, tmp_path, resume_chunk
    ):
        cache = ArtifactCache(tmp_path)
        first = run_campaign(
            generator,
            DAYS,
            SEED,
            shard_bs=1,
            cache=cache,
            hll_precision=PRECISION,
            chunk_sessions=10_000,
        )
        assert first.computed_shards == N_BS
        stamps = {
            p: p.stat().st_mtime_ns for p in checkpoint_paths(tmp_path)
        }

        resumed = run_campaign(
            generator,
            DAYS,
            SEED,
            shard_bs=1,
            cache=cache,
            hll_precision=PRECISION,
            chunk_sessions=resume_chunk,
        )
        assert resumed.resumed_shards == N_BS
        assert resumed.computed_shards == 0
        assert resumed.digest() == first.digest() == baseline_digest
        for path, stamp in stamps.items():
            assert path.stat().st_mtime_ns == stamp  # untouched, not rewritten

    def test_chunk_size_never_changes_checkpoint_bytes(
        self, generator, tmp_path
    ):
        """Fresh runs under different budgets write identical checkpoints."""
        digests = {}
        for chunk in (123, 4_567):
            root = tmp_path / f"chunk-{chunk}"
            run_campaign(
                generator,
                DAYS,
                SEED,
                shard_bs=1,
                cache=ArtifactCache(root),
                hll_precision=PRECISION,
                chunk_sessions=chunk,
            )
            digests[chunk] = {
                p.name: p.read_bytes() for p in checkpoint_paths(root)
            }
        assert digests[123] == digests[4_567]
