"""Sharded campaign driver: planning, byte-identity, empty shards, fidelity.

The load-bearing assertion everywhere is digest equality: the sharded
driver — serial, parallel, resumed, any shard size — must produce the
**byte-identical** merged aggregate of a single-pass aggregation over the
fully materialized campaign.
"""

from __future__ import annotations

import pytest

from repro.campaign import (
    CampaignAggregate,
    CampaignError,
    plan_shards,
    run_campaign,
)
from repro.campaign.fidelity import (
    AGGREGATE_CLAIMS,
    evaluate_aggregate,
    measure_aggregate,
)
from repro.core.arrivals import ArrivalModel
from repro.core.generator import TrafficGenerator
from repro.core.service_mix import ServiceMix
from repro.io.cache import ArtifactCache
from repro.pipeline.executors import ParallelExecutor

SEED = 11
DAYS = 2
N_BS = 6

#: HLL precision small enough that checkpoints stay tiny in tests.
P = 10


@pytest.fixture(scope="module")
def generator(bank):
    """A 6-BS generator with a moderate arrival rate."""
    arrival = ArrivalModel(peak_mu=2.0, peak_sigma=0.5, night_scale=0.4)
    mix = ServiceMix.from_table1().restricted_to(bank.services())
    return TrafficGenerator(
        {bs: arrival for bs in range(N_BS)}, mix, bank
    )


@pytest.fixture(scope="module")
def reference(generator):
    """Single-pass aggregate over the fully materialized campaign."""
    table = generator.generate_campaign(DAYS, SEED)
    return CampaignAggregate.from_table(
        table, n_units=N_BS * DAYS, precision=P
    )


class TestPlanShards:
    def test_day_major_ranges(self):
        shards = plan_shards([3, 1, 2], n_days=2, shard_bs=2)
        assert [s.index for s in shards] == [0, 1, 2, 3]
        assert [(s.day, s.bs_ids) for s in shards] == [
            (0, (1, 2)),
            (0, (3,)),
            (1, (1, 2)),
            (1, (3,)),
        ]

    def test_plan_independent_of_bs_order(self):
        assert plan_shards([5, 1, 9], 1, 2) == plan_shards([9, 5, 1], 1, 2)

    def test_units_carry_the_shard_day(self):
        (shard,) = plan_shards([4, 7], 1, 8)
        assert shard.units() == [(0, 4), (0, 7)]

    @pytest.mark.parametrize(
        "bs_ids, n_days, shard_bs",
        [([], 1, 1), ([1], 0, 1), ([1], 1, 0)],
    )
    def test_invalid_plans_rejected(self, bs_ids, n_days, shard_bs):
        with pytest.raises(CampaignError):
            plan_shards(bs_ids, n_days, shard_bs)


class TestByteIdentity:
    @pytest.mark.parametrize("shard_bs", [1, 2, 4, 100])
    def test_any_shard_size_matches_single_pass(
        self, generator, reference, shard_bs
    ):
        result = run_campaign(
            generator, DAYS, SEED, shard_bs=shard_bs, hll_precision=P
        )
        assert result.digest() == reference.digest()

    def test_parallel_matches_serial(self, generator, reference):
        with ParallelExecutor(jobs=2) as executor:
            result = run_campaign(
                generator,
                DAYS,
                SEED,
                shard_bs=2,
                executor=executor,
                hll_precision=P,
            )
        assert result.digest() == reference.digest()

    def test_chunk_budget_never_changes_the_aggregate(
        self, generator, reference
    ):
        tiny = run_campaign(
            generator,
            DAYS,
            SEED,
            shard_bs=3,
            chunk_sessions=200,
            hll_precision=P,
        )
        assert tiny.digest() == reference.digest()

    def test_resume_folds_checkpoints_byte_identically(
        self, generator, reference, tmp_path
    ):
        cache = ArtifactCache(tmp_path)
        first = run_campaign(
            generator, DAYS, SEED, shard_bs=2, cache=cache, hll_precision=P
        )
        again = run_campaign(
            generator, DAYS, SEED, shard_bs=2, cache=cache, hll_precision=P
        )
        assert first.computed_shards == first.n_shards
        assert again.resumed_shards == again.n_shards
        assert again.computed_shards == 0
        assert first.digest() == again.digest() == reference.digest()

    def test_no_resume_recomputes_everything(
        self, generator, reference, tmp_path
    ):
        cache = ArtifactCache(tmp_path)
        run_campaign(
            generator, DAYS, SEED, shard_bs=2, cache=cache, hll_precision=P
        )
        fresh = run_campaign(
            generator,
            DAYS,
            SEED,
            shard_bs=2,
            cache=cache,
            resume=False,
            hll_precision=P,
        )
        assert fresh.computed_shards == fresh.n_shards
        assert fresh.digest() == reference.digest()

    def test_invalid_chunk_budget_rejected(self, generator):
        with pytest.raises(CampaignError):
            run_campaign(generator, DAYS, SEED, chunk_sessions=0)


class TestEmptyShards:
    """(day, BS) units sampling zero sessions stay identity elements."""

    @pytest.fixture(scope="class")
    def sparse_generator(self, bank):
        """One active BS amid BSs whose arrival rates round to zero."""
        active = ArrivalModel(peak_mu=2.0, peak_sigma=0.5, night_scale=0.4)
        silent = ArrivalModel(
            peak_mu=1e-4, peak_sigma=1e-5, night_scale=1e-4
        )
        mix = ServiceMix.from_table1().restricted_to(bank.services())
        return TrafficGenerator(
            {0: silent, 1: active, 2: silent, 3: silent}, mix, bank
        )

    def test_empty_shards_round_trip_through_the_driver(
        self, sparse_generator, tmp_path
    ):
        cache = ArtifactCache(tmp_path)
        result = run_campaign(
            sparse_generator,
            1,
            SEED,
            shard_bs=1,  # shards of the silent BSs are entirely empty
            cache=cache,
            hll_precision=P,
        )
        assert result.n_shards == 4
        assert result.aggregate.n_units == 4
        assert result.aggregate.n_sessions > 0
        resumed = run_campaign(
            sparse_generator, 1, SEED, shard_bs=1, cache=cache, hll_precision=P
        )
        assert resumed.resumed_shards == 4
        assert resumed.digest() == result.digest()

    def test_empty_shards_equal_identity_merges(self, sparse_generator):
        sharded = run_campaign(
            sparse_generator, 1, SEED, shard_bs=1, hll_precision=P
        )
        whole = run_campaign(
            sparse_generator, 1, SEED, shard_bs=100, hll_precision=P
        )
        assert sharded.digest() == whole.digest()


class TestAggregateFidelity:
    def test_measures_match_table_measurements(self, generator, reference):
        from repro.verify.checks import measure_circadian, measure_ranking

        table = generator.generate_campaign(DAYS, SEED)
        via_table = {**measure_ranking(table), **measure_circadian(table)}
        via_aggregate = measure_aggregate(reference)
        assert set(via_aggregate) == set(AGGREGATE_CLAIMS)
        for claim in AGGREGATE_CLAIMS:
            assert via_aggregate[claim] == via_table[claim], claim

    def test_evaluate_aggregate_judges_subset_under_real_bands(
        self, reference
    ):
        from repro.verify import Baseline, default_baseline_path

        baseline = Baseline.load(default_baseline_path())
        report = evaluate_aggregate(reference, baseline)
        assert sorted(report.claims()) == sorted(AGGREGATE_CLAIMS)
        for claim in AGGREGATE_CLAIMS:
            band = baseline.claims[claim]
            assert (report.result(claim).lo, report.result(claim).hi) == (
                band.lo,
                band.hi,
            )

    def test_empty_campaign_cannot_be_measured(self):
        from repro.verify.checks import CheckError

        with pytest.raises(CheckError, match="empty"):
            measure_aggregate(CampaignAggregate.empty(precision=P))

    def test_empty_campaign_evaluates_to_skipped_verdict(self):
        from repro.verify import Baseline, default_baseline_path

        baseline = Baseline.load(default_baseline_path())
        report = evaluate_aggregate(
            CampaignAggregate.empty(precision=P), baseline
        )
        assert report.ok  # skipped checks never fail the gate
        assert report.summary()["verdict"] == "SKIPPED"
        assert sorted(report.claims()) == sorted(AGGREGATE_CLAIMS)
        for claim in AGGREGATE_CLAIMS:
            result = report.result(claim)
            band = baseline.claims[claim]
            assert result.skipped
            assert result.passed
            assert (result.lo, result.hi) == (band.lo, band.hi)

    def test_empty_campaign_skipped_report_is_deterministic(self):
        from repro.verify import Baseline, default_baseline_path

        baseline = Baseline.load(default_baseline_path())
        first = evaluate_aggregate(
            CampaignAggregate.empty(precision=P), baseline
        )
        second = evaluate_aggregate(
            CampaignAggregate.empty(precision=P), baseline
        )
        assert first.to_dict() == second.to_dict()

    def test_unknown_claim_subset_rejected(self, reference):
        from repro.verify import Baseline, default_baseline_path
        from repro.verify.checks import CheckError, evaluate

        baseline = Baseline.load(default_baseline_path())
        with pytest.raises(CheckError, match="not in the baseline"):
            evaluate(
                measure_aggregate(reference),
                baseline,
                claims=["no-such-claim"],
            )


class TestTraceProvenance:
    """Trace ids flow seed -> driver -> checkpoints without touching bytes."""

    def test_trace_id_is_a_pure_function_of_the_root_seed(self, generator):
        from repro.pipeline.context import mint_trace_id

        result = run_campaign(generator, DAYS, SEED, hll_precision=P)
        assert result.trace_id == mint_trace_id(SEED)
        assert result.provenance() == {"trace_id": result.trace_id}
        assert result.summary()["trace_id"] == result.trace_id

    def test_telemetry_and_progress_never_change_the_digest(
        self, generator, reference, tmp_path
    ):
        from repro.obs.progress import load_progress
        from repro.obs.telemetry import Telemetry

        plain = run_campaign(generator, DAYS, SEED, hll_precision=P)
        telemetry = Telemetry(directory=tmp_path, verbosity=0)
        observed = run_campaign(
            generator, DAYS, SEED, telemetry=telemetry, hll_precision=P
        )
        telemetry.finalize(command="campaign")
        assert observed.digest() == plain.digest() == reference.digest()
        assert (
            observed.aggregate.canonical_json()
            == plain.aggregate.canonical_json()
        )
        progress = load_progress(tmp_path)
        assert progress["shards"]["done"] == progress["shards"]["total"]
        assert progress["trace_id"] == observed.trace_id

    def test_checkpoints_ride_the_provenance_envelope(
        self, generator, tmp_path
    ):
        import json

        from repro.campaign.driver import CHECKPOINT_KIND, CHECKPOINT_SUFFIX

        result = run_campaign(
            generator,
            DAYS,
            SEED,
            shard_bs=2,
            cache=ArtifactCache(tmp_path),
            hll_precision=P,
        )
        paths = sorted((tmp_path / CHECKPOINT_KIND).glob(f"*{CHECKPOINT_SUFFIX}"))
        assert len(paths) == result.n_shards
        for path in paths:
            payload = json.loads(path.read_text(encoding="utf-8"))
            assert payload["provenance"] == {"trace_id": result.trace_id}
            # The envelope is ignored by the canonical deserializer.
            CampaignAggregate.from_dict(payload)
