"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path_factory, monkeypatch):
    """Point the artifact cache at a per-test directory.

    The cache is on by default, so without this every CLI test would write
    ``.repro-cache`` into the working directory and later tests could hit
    artifacts cached by earlier ones.
    """
    cache_dir = tmp_path_factory.mktemp("repro-cache")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))


class TestCli:
    def test_simulate_prints_summary(self, capsys):
        assert main(["--seed", "1", "simulate", "--bs", "10", "--days", "1"]) == 0
        out = capsys.readouterr().out
        assert "sessions:" in out
        assert "Facebook" in out

    def test_fit_writes_release(self, tmp_path, capsys):
        path = tmp_path / "models.json"
        code = main(
            ["--seed", "1", "fit", "--bs", "10", "--days", "1", "--output", str(path)]
        )
        assert code == 0
        assert path.exists()
        assert "fitted" in capsys.readouterr().out

    def test_generate_from_release(self, tmp_path, capsys):
        path = tmp_path / "models.json"
        main(["--seed", "1", "fit", "--bs", "10", "--days", "1", "--output", str(path)])
        capsys.readouterr()
        code = main(
            [
                "--seed", "2", "generate", "--models", str(path),
                "--bs", "2", "--days", "1", "--decile", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "generated" in out

    def test_generate_parallel_chunked_writes_trace(self, tmp_path, capsys):
        models = tmp_path / "models.json"
        main(
            ["--seed", "1", "fit", "--bs", "10", "--days", "1",
             "--output", str(models)]
        )
        capsys.readouterr()
        trace = tmp_path / "generated.csv.gz"
        code = main(
            [
                "--seed", "2", "generate", "--models", str(models),
                "--bs", "3", "--days", "1", "--decile", "2",
                "--jobs", "2", "--chunk-size", "2000", "--trace", str(trace),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "chunk(s)" in out
        assert trace.exists()

    def test_generate_rerun_resumes_from_spooled_chunks(
        self, tmp_path, capsys
    ):
        models = tmp_path / "models.json"
        main(
            ["--seed", "1", "fit", "--bs", "10", "--days", "1",
             "--output", str(models)]
        )
        argv = [
            "--seed", "2", "generate", "--models", str(models),
            "--bs", "2", "--days", "1", "--decile", "2",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        # identical totals on resume: the spooled chunks were reused
        assert [l for l in first.splitlines() if "generated" in l] == [
            l for l in second.splitlines() if "generated" in l
        ]

    def test_generate_arena_and_memmap_spool_flags(
        self, tmp_path, capsys, monkeypatch
    ):
        cache_dir = tmp_path / "cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
        models = tmp_path / "models.json"
        main(
            ["--seed", "1", "fit", "--bs", "10", "--days", "1",
             "--output", str(models)]
        )
        capsys.readouterr()
        code = main(
            [
                "--seed", "2", "generate", "--models", str(models),
                "--bs", "2", "--days", "1", "--decile", "2",
                "--arena-mb", "2", "--memmap-spool",
            ]
        )
        assert code == 0
        assert "generated" in capsys.readouterr().out
        assert list(cache_dir.rglob("*.seg"))  # raw segment chunks spooled

    def test_missing_subcommand_exits(self):
        with pytest.raises(SystemExit):
            main([])


class TestReproduce:
    def test_fig10_reproduction(self, capsys):
        assert main(["--seed", "3", "reproduce", "fig10"]) == 0
        out = capsys.readouterr().out
        assert "Fig 10" in out
        assert "Twitch" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["reproduce", "fig99"])


class TestValidate:
    def test_validate_healthy_trace(self, tmp_path, campaign, capsys):
        from repro.io.traces import write_trace
        from tests.conftest import CAMPAIGN_DAYS

        path = tmp_path / "trace.csv.gz"
        write_trace(campaign.select(campaign.bs_id < 3), path)
        code = main(
            ["validate", "--trace", str(path), "--days", str(CAMPAIGN_DAYS)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "verdict: OK" in out

    def test_validate_flags_missing_days(self, tmp_path, campaign, capsys):
        from repro.io.traces import write_trace

        path = tmp_path / "trace.csv"
        write_trace(campaign.for_days([0]), path)
        code = main(["validate", "--trace", str(path), "--days", "3"])
        out = capsys.readouterr().out
        assert code == 1
        assert "verdict: FAILED" in out


class TestPipelineFlags:
    def test_fit_jobs_byte_identical(self, tmp_path, capsys):
        """``--jobs N`` must not change the fitted release at all."""
        serial = tmp_path / "serial.json"
        parallel = tmp_path / "parallel.json"
        base = ["--seed", "5", "fit", "--bs", "10", "--days", "1", "--no-cache"]
        assert main(base + ["--jobs", "1", "--output", str(serial)]) == 0
        assert main(base + ["--jobs", "2", "--output", str(parallel)]) == 0
        capsys.readouterr()
        assert serial.read_bytes() == parallel.read_bytes()

    def test_validate_second_run_hits_cache(self, capsys):
        args = ["--seed", "6", "validate", "--bs", "10", "--days", "1"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "simulate: computed" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "simulate: cache hit" in second

    def test_no_cache_disables_reuse(self, capsys):
        args = ["--seed", "6", "validate", "--bs", "10", "--days", "1",
                "--no-cache"]
        main(args)
        main(args)
        out = capsys.readouterr().out
        assert "cache hit" not in out

    def test_cache_dir_flag_overrides_env(self, tmp_path, capsys):
        cache_dir = tmp_path / "explicit-cache"
        args = ["--seed", "6", "validate", "--bs", "10", "--days", "1",
                "--cache-dir", str(cache_dir)]
        assert main(args) == 0
        capsys.readouterr()
        assert (cache_dir / "campaign").exists()

    def test_simulate_with_jobs_matches_serial(self, capsys):
        base = ["--seed", "7", "simulate", "--bs", "10", "--days", "1",
                "--no-cache"]
        main(base + ["--jobs", "1"])
        serial = capsys.readouterr().out
        main(base + ["--jobs", "2"])
        parallel = capsys.readouterr().out
        # Identical session counts and service table, stage timings aside.
        def summary(out):
            return [
                line for line in out.splitlines()
                if not line.startswith("[pipeline]")
            ]

        assert summary(serial) == summary(parallel)
        assert "sessions:" in serial


class TestVerify:
    """The ``verify`` subcommand drives the statistical fidelity gate."""

    @pytest.fixture()
    def golden_path(self):
        from repro.verify import default_baseline_path

        return default_baseline_path()

    def test_verify_passes_against_golden_baseline(self, golden_path, capsys):
        code = main(
            ["--seed", "0", "verify", "--baseline", str(golden_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "verdict: OK" in out
        assert "rank-exponential-r2" in out
        assert "FAIL" not in out

    def test_verify_writes_json_report(self, golden_path, tmp_path, capsys):
        from repro.verify import FidelityReport

        report_path = tmp_path / "fidelity.json"
        code = main(
            ["--seed", "0", "verify", "--baseline", str(golden_path),
             "--report", str(report_path)]
        )
        assert code == 0
        assert "report:" in capsys.readouterr().out
        report = FidelityReport.load(report_path)
        assert report.ok
        assert len(report.claims()) >= 6
        assert report.meta["seed"] == 0

    def test_verify_fails_on_breached_band(self, golden_path, tmp_path, capsys):
        import json

        # Doctor one claim into an impossible band: the gate must exit 1.
        payload = json.loads(golden_path.read_text())
        band = payload["claims"]["circadian-day-night-ratio"]
        band["lo"], band["hi"] = 100.0, 200.0
        doctored = tmp_path / "impossible.json"
        doctored.write_text(json.dumps(payload))

        code = main(["--seed", "0", "verify", "--baseline", str(doctored)])
        out = capsys.readouterr().out
        assert code == 1
        assert "verdict: FAILED" in out
        assert "FAIL" in out

    def test_update_baseline_rewrites_observations_only(
        self, golden_path, tmp_path, capsys
    ):
        import json
        import shutil

        from repro.verify import Baseline

        copy = tmp_path / "baseline.json"
        shutil.copy(golden_path, copy)
        # Blank out the recorded observations so the refresh is visible.
        payload = json.loads(copy.read_text())
        for band in payload["claims"].values():
            band.pop("observed", None)
        copy.write_text(json.dumps(payload))

        code = main(
            ["--seed", "0", "verify", "--baseline", str(copy),
             "--update-baseline"]
        )
        assert code == 0
        assert "refreshed" in capsys.readouterr().out
        before = Baseline.load(golden_path)
        after = Baseline.load(copy)
        for key, band in after.claims.items():
            assert band.observed is not None
            assert band.lo == before.claims[key].lo
            assert band.hi == before.claims[key].hi
            assert band.provenance == before.claims[key].provenance


class TestTelemetry:
    """The telemetry flags: event stream, manifest, report, verbosity."""

    def _fit_release(self, tmp_path, capsys):
        models = tmp_path / "models.json"
        main(["--seed", "1", "fit", "--bs", "10", "--days", "1",
              "--output", str(models)])
        capsys.readouterr()
        return models

    def test_generate_writes_events_and_manifest(self, tmp_path, capsys):
        import json

        models = self._fit_release(tmp_path, capsys)
        tel = tmp_path / "telemetry"
        code = main(
            ["--seed", "2", "generate", "--models", str(models),
             "--bs", "2", "--days", "1", "--jobs", "2",
             "--telemetry-dir", str(tel)]
        )
        assert code == 0
        from repro.obs.schema import validate_events_file

        counts = validate_events_file(tel / "events.jsonl")
        assert counts["span"] >= 1
        assert counts["metrics"] == 1
        manifest = json.loads((tel / "manifest.json").read_text())
        assert manifest["command"] == "generate"
        assert manifest["seed"] == 2
        assert manifest["status"] == "ok"
        assert [s["name"] for s in manifest["stages"]] == ["generate"]
        assert "generator.sessions" in manifest["metrics"]["counters"]
        assert manifest["spans"]["by_kind"].get("worker", 0) >= 1

    def test_report_renders_previous_run(self, tmp_path, capsys):
        models = self._fit_release(tmp_path, capsys)
        tel = tmp_path / "telemetry"
        main(["--seed", "2", "generate", "--models", str(models),
              "--bs", "2", "--days", "1", "--telemetry-dir", str(tel)])
        capsys.readouterr()
        assert main(["report", str(tel)]) == 0
        out = capsys.readouterr().out
        assert "command:       generate" in out
        assert "generator.sessions" in out
        assert "Slowest spans:" in out

    def test_report_missing_directory_fails(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope")]) == 1
        assert "report error" in capsys.readouterr().err

    def test_quiet_silences_pipeline_lines(self, capsys):
        args = ["--seed", "6", "validate", "--bs", "10", "--days", "1",
                "--no-cache"]
        assert main(args + ["-q"]) in (0, 1)
        out = capsys.readouterr().out
        assert "[pipeline]" not in out
        assert "verdict:" in out  # results still print

    def test_log_json_emits_machine_readable_stage_lines(self, capsys):
        import json

        args = ["--seed", "6", "validate", "--bs", "10", "--days", "1",
                "--no-cache", "--log-json"]
        main(args)
        out = capsys.readouterr().out
        stage_lines = [
            json.loads(line) for line in out.splitlines()
            if line.startswith("{")
        ]
        assert any(
            line["type"] == "stage" and line["name"] == "simulate"
            for line in stage_lines
        )
        assert "[pipeline]" not in out

    def test_verify_metrics_reach_manifest(self, tmp_path, capsys):
        import json

        tel = tmp_path / "telemetry"
        code = main(["--seed", "0", "verify", "--telemetry-dir", str(tel)])
        capsys.readouterr()
        assert code == 0
        manifest = json.loads((tel / "manifest.json").read_text())
        counters = manifest["metrics"]["counters"]
        assert counters["verify.checks"] >= 6
        assert counters["verify.failed"] == 0
        assert any(
            name.startswith("verify.value.")
            for name in manifest["metrics"]["gauges"]
        )

    def test_telemetry_does_not_change_generated_trace(self, tmp_path, capsys):
        models = self._fit_release(tmp_path, capsys)
        plain = tmp_path / "plain.csv.gz"
        observed = tmp_path / "observed.csv.gz"
        base = ["--seed", "2", "generate", "--models", str(models),
                "--bs", "2", "--days", "1", "--no-cache"]
        assert main(base + ["--trace", str(plain)]) == 0
        assert main(
            base + ["--trace", str(observed),
                    "--telemetry-dir", str(tmp_path / "tel")]
        ) == 0
        capsys.readouterr()
        assert plain.read_bytes() == observed.read_bytes()

    def test_profile_writes_stage_pstats(self, tmp_path, capsys):
        tel = tmp_path / "telemetry"
        code = main(["--seed", "6", "validate", "--bs", "10", "--days", "1",
                     "--no-cache", "--telemetry-dir", str(tel), "--profile"])
        capsys.readouterr()
        assert code == 0
        assert (tel / "profile-simulate.pstats").exists()


class TestTraceFlags:
    def test_simulate_exports_trace(self, tmp_path, capsys):
        path = tmp_path / "campaign.csv.gz"
        code = main(
            ["--seed", "4", "simulate", "--bs", "10", "--days", "1",
             "--trace", str(path)]
        )
        assert code == 0
        assert path.exists()
        assert "trace:" in capsys.readouterr().out

    def test_fit_from_trace(self, tmp_path, capsys):
        trace = tmp_path / "campaign.csv.gz"
        main(["--seed", "4", "simulate", "--bs", "10", "--days", "1",
              "--trace", str(trace)])
        capsys.readouterr()
        release = tmp_path / "models.json"
        code = main(
            ["fit", "--from-trace", str(trace), "--output", str(release)]
        )
        assert code == 0
        assert release.exists()
        assert "from" in capsys.readouterr().out
