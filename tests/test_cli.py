"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_simulate_prints_summary(self, capsys):
        assert main(["--seed", "1", "simulate", "--bs", "10", "--days", "1"]) == 0
        out = capsys.readouterr().out
        assert "sessions:" in out
        assert "Facebook" in out

    def test_fit_writes_release(self, tmp_path, capsys):
        path = tmp_path / "models.json"
        code = main(
            ["--seed", "1", "fit", "--bs", "10", "--days", "1", "--output", str(path)]
        )
        assert code == 0
        assert path.exists()
        assert "fitted" in capsys.readouterr().out

    def test_generate_from_release(self, tmp_path, capsys):
        path = tmp_path / "models.json"
        main(["--seed", "1", "fit", "--bs", "10", "--days", "1", "--output", str(path)])
        capsys.readouterr()
        code = main(
            [
                "--seed", "2", "generate", "--models", str(path),
                "--bs", "2", "--days", "1", "--decile", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "generated" in out

    def test_missing_subcommand_exits(self):
        with pytest.raises(SystemExit):
            main([])


class TestReproduce:
    def test_fig10_reproduction(self, capsys):
        assert main(["--seed", "3", "reproduce", "fig10"]) == 0
        out = capsys.readouterr().out
        assert "Fig 10" in out
        assert "Twitch" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["reproduce", "fig99"])


class TestValidate:
    def test_validate_healthy_trace(self, tmp_path, campaign, capsys):
        from repro.io.traces import write_trace
        from tests.conftest import CAMPAIGN_DAYS

        path = tmp_path / "trace.csv.gz"
        write_trace(campaign.select(campaign.bs_id < 3), path)
        code = main(
            ["validate", "--trace", str(path), "--days", str(CAMPAIGN_DAYS)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "verdict: OK" in out

    def test_validate_flags_missing_days(self, tmp_path, campaign, capsys):
        from repro.io.traces import write_trace

        path = tmp_path / "trace.csv"
        write_trace(campaign.for_days([0]), path)
        code = main(["validate", "--trace", str(path), "--days", "3"])
        out = capsys.readouterr().out
        assert code == 1
        assert "verdict: FAILED" in out


class TestTraceFlags:
    def test_simulate_exports_trace(self, tmp_path, capsys):
        path = tmp_path / "campaign.csv.gz"
        code = main(
            ["--seed", "4", "simulate", "--bs", "10", "--days", "1",
             "--trace", str(path)]
        )
        assert code == 0
        assert path.exists()
        assert "trace:" in capsys.readouterr().out

    def test_fit_from_trace(self, tmp_path, capsys):
        trace = tmp_path / "campaign.csv.gz"
        main(["--seed", "4", "simulate", "--bs", "10", "--days", "1",
              "--trace", str(trace)])
        capsys.readouterr()
        release = tmp_path / "models.json"
        code = main(
            ["fit", "--from-trace", str(trace), "--output", str(release)]
        )
        assert code == 0
        assert release.exists()
        assert "from" in capsys.readouterr().out
