"""End-to-end integration tests across the whole pipeline.

These tests exercise the paper's full loop: simulate a campaign → aggregate
→ fit models → generate synthetic traffic → verify the synthetic traffic
reproduces the measured statistics.
"""

import numpy as np
import pytest

from repro.analysis.emd import emd
from repro.analysis.normalization import zero_mean
from repro.core.arrivals import fit_arrival_model_from_days
from repro.core.generator import TrafficGenerator
from repro.core.service_mix import ServiceMix
from repro.dataset.aggregation import (
    minute_arrival_counts,
    pooled_duration_volume,
    pooled_volume_pdf,
    service_shares,
)


@pytest.fixture(scope="module")
def generated(campaign, bank):
    """A synthetic campaign generated from models fitted on the fixture."""
    from tests.conftest import CAMPAIGN_DAYS

    arrival_models = {}
    for bs_id in (0, 9, 19):
        counts = minute_arrival_counts(campaign, [bs_id], CAMPAIGN_DAYS)
        arrival_models[bs_id] = fit_arrival_model_from_days(
            counts.reshape(CAMPAIGN_DAYS, 1440)
        )
    mix = ServiceMix.from_measurements(campaign).restricted_to(bank.services())
    generator = TrafficGenerator(arrival_models, mix, bank)
    return generator.generate_campaign(2, np.random.default_rng(123))


class TestFullLoop:
    def test_generated_session_shares_match_measured(self, campaign, generated):
        measured = service_shares(campaign)
        synthetic = service_shares(generated)
        for name in ("Facebook", "Instagram", "SnapChat"):
            assert synthetic[name][0] == pytest.approx(measured[name][0], rel=0.1)

    def test_generated_volume_pdfs_match_measured(self, campaign, generated):
        # Model-vs-measurement EMD must be far below inter-service EMD.
        for name in ("Facebook", "Netflix", "Deezer"):
            measured = pooled_volume_pdf(campaign.for_service(name))
            synthetic = pooled_volume_pdf(generated.for_service(name))
            assert emd(measured, synthetic) < 0.15

    def test_inter_service_diversity_preserved(self, campaign, generated):
        fb = zero_mean(pooled_volume_pdf(generated.for_service("Facebook")))
        nf = zero_mean(pooled_volume_pdf(generated.for_service("Netflix")))
        same_service = emd(
            zero_mean(pooled_volume_pdf(campaign.for_service("Netflix"))), nf
        )
        assert emd(fb, nf) > 2 * same_service

    def test_generated_mean_volume_matches(self, campaign, generated):
        for name in ("Facebook", "Instagram"):
            measured = pooled_volume_pdf(campaign.for_service(name)).mean_mb()
            synthetic = pooled_volume_pdf(generated.for_service(name)).mean_mb()
            assert synthetic == pytest.approx(measured, rel=0.15)

    def test_generated_duration_volume_power_law_matches(self, campaign, generated):
        from repro.core.duration_model import fit_power_law

        for name in ("Netflix", "Facebook"):
            measured_beta = fit_power_law(
                pooled_duration_volume(campaign.for_service(name))
            ).beta
            synthetic_beta = fit_power_law(
                pooled_duration_volume(generated.for_service(name))
            ).beta
            assert synthetic_beta == pytest.approx(measured_beta, abs=0.25)

    def test_arrival_counts_match_measured_rates(self, campaign, generated):
        from tests.conftest import CAMPAIGN_DAYS

        measured = minute_arrival_counts(campaign, [9], CAMPAIGN_DAYS)
        synthetic = minute_arrival_counts(generated, [9], 2)
        assert synthetic.mean() == pytest.approx(measured.mean(), rel=0.1)

    def test_release_file_reproduces_generation(self, bank, tmp_path):
        from repro.io.params import load_release, save_release

        path = tmp_path / "release.json"
        save_release(path, bank)
        restored, _ = load_release(path)
        rng_a, rng_b = np.random.default_rng(5), np.random.default_rng(5)
        name = bank.services()[0]
        a = bank.get(name).sample_sessions(rng_a, 1000)
        b = restored.get(name).sample_sessions(rng_b, 1000)
        assert np.allclose(a.volumes_mb, b.volumes_mb)
        assert np.allclose(a.durations_s, b.durations_s)


class TestParameterTuple:
    def test_released_tuple_is_complete(self, bank):
        # Section 5.4: [mu, sigma, {k, mu, sigma}_n, alpha, beta].
        payload = bank.get("Netflix").to_dict()
        assert {"mu", "sigma", "peaks"} <= set(payload["volume"])
        assert {"alpha", "beta"} <= set(payload["duration"])
        for peak in payload["volume"]["peaks"]:
            assert {"k", "mu", "sigma"} <= set(peak)

    def test_at_most_three_peaks_per_model(self, bank):
        for name in bank.services():
            assert len(bank.get(name).volume.peaks) <= 3


class TestCliPipelineChain:
    def test_simulate_trace_fit_generate_validate(self, tmp_path, capsys):
        """The full CLI story: campaign -> trace -> models -> synthetic
        traffic -> validation, all through the public command line."""
        from repro.cli import main

        trace = tmp_path / "campaign.csv.gz"
        release = tmp_path / "models.json"

        assert main(
            ["--seed", "9", "simulate", "--bs", "10", "--days", "1",
             "--trace", str(trace)]
        ) == 0
        assert main(
            ["fit", "--from-trace", str(trace), "--output", str(release)]
        ) == 0
        assert main(
            ["--seed", "10", "generate", "--models", str(release),
             "--bs", "2", "--days", "1", "--decile", "6"]
        ) == 0
        assert main(
            ["validate", "--trace", str(trace), "--days", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "verdict: OK" in out
