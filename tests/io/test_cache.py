"""Tests for the content-keyed artifact cache."""

import dataclasses
import enum

import numpy as np
import pytest

from repro.dataset.records import SessionTable
from repro.dataset.simulator import SimulationConfig
from repro.io.cache import (
    CACHE_DIR_ENV,
    ArtifactCache,
    CacheError,
    content_key,
    default_cache_root,
    describe,
    load_table,
    save_table,
)


class _Colour(enum.Enum):
    RED = "red"


@dataclasses.dataclass(frozen=True)
class _Cfg:
    n: int
    label: str


class TestDescribe:
    def test_primitives_pass_through(self):
        assert describe(None) is None
        assert describe(3) == 3
        assert describe(1.5) == 1.5
        assert describe("x") == "x"
        assert describe(True) is True

    def test_dataclass_carries_type_name(self):
        described = describe(_Cfg(n=2, label="a"))
        assert described == {"n": 2, "label": "a", "__type__": "_Cfg"}

    def test_enum_and_numpy(self):
        assert describe(_Colour.RED) == "red"
        assert describe(np.int64(7)) == 7
        assert describe(np.array([1, 2])) == [1, 2]

    def test_nested_containers(self):
        assert describe({"a": (1, [2.0, "x"])}) == {"a": [1, [2.0, "x"]]}

    def test_unsupported_type_rejected(self):
        with pytest.raises(CacheError):
            describe(object())


class TestContentKey:
    def test_stable_across_insertion_order(self):
        assert content_key({"a": 1, "b": 2}) == content_key({"b": 2, "a": 1})

    def test_sensitive_to_values(self):
        assert content_key({"a": 1}) != content_key({"a": 2})
        assert content_key({"a": 1}) != content_key({"b": 1})

    def test_simulation_config_keys_differ_by_field(self):
        base = content_key({"sim": SimulationConfig(n_days=1)})
        other = content_key({"sim": SimulationConfig(n_days=2)})
        assert base != other

    def test_key_is_short_hex(self):
        key = content_key({"a": 1})
        assert len(key) == 20
        int(key, 16)  # parses as hexadecimal


class TestArtifactCache:
    def test_store_then_fetch(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert not cache.has("kind", "abc", ".txt")
        path = cache.store(
            "kind", "abc", ".txt", lambda p: p.write_text("payload")
        )
        assert path == tmp_path / "kind" / "abc.txt"
        assert cache.has("kind", "abc", ".txt")
        assert cache.fetch("kind", "abc", ".txt", lambda p: p.read_text()) == (
            "payload"
        )

    def test_store_leaves_no_temp_files(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.store("kind", "abc", ".txt", lambda p: p.write_text("x"))
        names = [p.name for p in (tmp_path / "kind").iterdir()]
        assert names == ["abc.txt"]

    def test_failed_store_cleans_up(self, tmp_path):
        cache = ArtifactCache(tmp_path)

        def explode(path):
            path.write_text("partial")
            raise RuntimeError("disk on fire")

        with pytest.raises(RuntimeError):
            cache.store("kind", "abc", ".txt", explode)
        assert not cache.has("kind", "abc", ".txt")
        assert list((tmp_path / "kind").iterdir()) == []

    def test_fetch_missing_raises(self, tmp_path):
        with pytest.raises(CacheError):
            ArtifactCache(tmp_path).fetch(
                "kind", "absent", ".txt", lambda p: p.read_text()
            )

    def test_invalid_kind_and_key_rejected(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        with pytest.raises(CacheError):
            cache.path_for("bad/kind", "abc", ".txt")
        with pytest.raises(CacheError):
            cache.path_for("kind", "", ".txt")

    def test_default_root_honours_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "elsewhere"))
        assert default_cache_root() == tmp_path / "elsewhere"
        assert ArtifactCache().root == tmp_path / "elsewhere"


class TestTablePersistence:
    def _table(self):
        return SessionTable(
            service_idx=np.array([0, 5, 13], dtype=np.int16),
            bs_id=np.array([1, 2, 3]),
            day=np.array([0, 0, 1]),
            start_minute=np.array([10, 500, 1400]),
            duration_s=np.array([12.5, 300.0, 60.0]),
            volume_mb=np.array([0.5, 42.0, 7.25]),
            truncated=np.array([False, True, False]),
        )

    def test_round_trip_is_exact(self, tmp_path):
        path = tmp_path / "table.npz"
        original = self._table()
        save_table(path, original)
        restored = load_table(path)
        for column in SessionTable.COLUMNS:
            assert np.array_equal(
                getattr(restored, column), getattr(original, column)
            )

    def test_empty_table_round_trip(self, tmp_path):
        path = tmp_path / "empty.npz"
        save_table(path, SessionTable.empty())
        assert len(load_table(path)) == 0

    def test_unreadable_file_raises(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"not an archive")
        with pytest.raises(CacheError):
            load_table(path)


class TestCorruptionRecovery:
    """Corrupted cache entries must lead to recomputation, never a crash."""

    def _table(self, n=4):
        rng = np.random.default_rng(0)
        return SessionTable(
            service_idx=np.arange(n, dtype=np.int16) % 10,
            bs_id=np.arange(n),
            day=np.zeros(n, dtype=int),
            start_minute=rng.integers(0, 1440, n),
            duration_s=rng.uniform(1.0, 100.0, n),
            volume_mb=rng.uniform(0.1, 10.0, n),
            truncated=np.zeros(n, dtype=bool),
        )

    def test_truncated_archive_raises_cache_error(self, tmp_path):
        path = tmp_path / "table.npz"
        save_table(path, self._table())
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(CacheError):
            load_table(path)

    def test_wrong_key_archive_raises_cache_error(self, tmp_path):
        # A valid npz written under the right cache path but with the wrong
        # arrays inside — e.g. produced by an older, incompatible layout.
        cache = ArtifactCache(tmp_path)
        path = cache.path_for("campaign", "deadbeef", ".npz")
        path.parent.mkdir(parents=True)
        np.savez(path, wrong=np.arange(3), keys=np.arange(3))
        with pytest.raises(CacheError):
            cache.fetch("campaign", "deadbeef", ".npz", load_table)

    def test_pipeline_recomputes_over_corrupt_entry(self, tmp_path):
        """A poisoned cache entry is silently recomputed and overwritten."""
        from repro.pipeline.context import RunContext
        from repro.pipeline.stages import ArtifactSpec, Pipeline, Stage

        table = self._table()
        spec = ArtifactSpec(
            kind="campaign",
            suffix=".npz",
            save=save_table,
            load=load_table,
            key_parts=lambda ctx, artifacts: {"seed": ctx.seed},
        )
        pipeline = Pipeline(
            [Stage("make", "table", lambda ctx, artifacts: table, spec=spec)]
        )
        ctx = RunContext(seed=0, cache=ArtifactCache(tmp_path))

        first = pipeline.run(ctx)
        assert first.event("make").status == "computed"
        key = first.event("make").key
        assert pipeline.run(ctx).event("make").status == "cached"

        # Poison the stored artifact in place; the next run must recompute
        # instead of crashing, and must heal the cache for the run after.
        cached_path = ctx.cache.path_for("campaign", key, ".npz")
        cached_path.write_bytes(b"garbage")
        healed = pipeline.run(ctx)
        assert healed.event("make").status == "computed"
        assert len(healed.artifact("table")) == len(table)
        assert pipeline.run(ctx).event("make").status == "cached"

    def test_concurrent_writers_of_one_key_never_collide(self, tmp_path):
        import threading

        cache = ArtifactCache(tmp_path)
        table = self._table(n=50)
        n_writers = 8
        barrier = threading.Barrier(n_writers)
        errors = []

        def write():
            try:
                barrier.wait()
                for _ in range(5):
                    cache.store(
                        "campaign", "samekey", ".npz",
                        lambda p: save_table(p, table),
                    )
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=write) for _ in range(n_writers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        # The surviving artifact is complete and valid, and no temporary
        # file escaped its writer.
        restored = cache.fetch("campaign", "samekey", ".npz", load_table)
        assert len(restored) == len(table)
        leftovers = [
            p.name
            for p in (tmp_path / "campaign").iterdir()
            if p.name.startswith(".tmp-")
        ]
        assert leftovers == []
