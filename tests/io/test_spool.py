"""Raw columnar segment format: roundtrip, memmap, corruption detection."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.dataset.records import TABLE_SCHEMA, SessionTable
from repro.io.spool import (
    SEGMENT_SUFFIX,
    SegmentError,
    load_segment,
    save_segment,
)


def make_table(n: int, seed: int = 0) -> SessionTable:
    rng = np.random.default_rng(seed)
    return SessionTable(
        service_idx=rng.integers(0, 5, n, dtype=np.int16),
        bs_id=rng.integers(0, 40, n, dtype=np.int32),
        day=rng.integers(0, 3, n, dtype=np.int16),
        start_minute=rng.integers(0, 1440, n, dtype=np.int16),
        duration_s=rng.uniform(1.0, 300.0, n).astype(np.float32),
        volume_mb=rng.uniform(0.1, 50.0, n).astype(np.float32),
        truncated=rng.random(n) < 0.1,
    )


def assert_tables_equal(a: SessionTable, b: SessionTable) -> None:
    for spec in TABLE_SCHEMA:
        np.testing.assert_array_equal(
            getattr(a, spec.name), getattr(b, spec.name), err_msg=spec.name
        )


class TestRoundtrip:
    def test_byte_identical_roundtrip(self, tmp_path):
        table = make_table(512)
        path = tmp_path / f"chunk{SEGMENT_SUFFIX}"
        save_segment(path, table)
        assert_tables_equal(load_segment(path), table)

    def test_memmap_load_equals_copy_load(self, tmp_path):
        table = make_table(256, seed=3)
        path = tmp_path / f"chunk{SEGMENT_SUFFIX}"
        save_segment(path, table)
        mapped = load_segment(path, memmap=True)
        # SessionTable coerces via np.asarray, so the memmap survives as
        # the zero-copy base of each column rather than the column itself.
        assert isinstance(mapped.volume_mb.base, np.memmap)
        assert_tables_equal(mapped, load_segment(path))

    def test_empty_table_roundtrip(self, tmp_path):
        path = tmp_path / f"empty{SEGMENT_SUFFIX}"
        save_segment(path, SessionTable.empty())
        assert len(load_segment(path)) == 0
        assert len(load_segment(path, memmap=True)) == 0

    def test_header_is_one_json_line(self, tmp_path):
        path = tmp_path / f"chunk{SEGMENT_SUFFIX}"
        save_segment(path, make_table(8))
        header = json.loads(path.read_bytes().split(b"\n", 1)[0])
        assert header["n"] == 8
        assert header["columns"] == [
            [spec.name, spec.dtype] for spec in TABLE_SCHEMA
        ]


class TestCorruptionDetection:
    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / f"chunk{SEGMENT_SUFFIX}"
        save_segment(path, make_table(512))
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 100])
        with pytest.raises(SegmentError, match="truncated"):
            load_segment(path)

    def test_trailing_garbage_rejected(self, tmp_path):
        path = tmp_path / f"chunk{SEGMENT_SUFFIX}"
        save_segment(path, make_table(64))
        with open(path, "ab") as fh:
            fh.write(b"\x00" * 7)
        with pytest.raises(SegmentError, match="truncated or padded"):
            load_segment(path)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / f"chunk{SEGMENT_SUFFIX}"
        path.write_bytes(b'{"format":"other","version":1,"n":0}\n')
        with pytest.raises(SegmentError, match="not a v1 segment"):
            load_segment(path)

    def test_unparseable_header_rejected(self, tmp_path):
        path = tmp_path / f"chunk{SEGMENT_SUFFIX}"
        path.write_bytes(b"\x93NUMPY not json at all\n")
        with pytest.raises(SegmentError, match="unreadable segment header"):
            load_segment(path)

    def test_schema_drift_rejected(self, tmp_path):
        path = tmp_path / f"chunk{SEGMENT_SUFFIX}"
        save_segment(path, make_table(16))
        raw = path.read_bytes()
        head, body = raw.split(b"\n", 1)
        header = json.loads(head)
        header["columns"][1][1] = "int64"  # widen bs_id
        drifted = json.dumps(header, separators=(",", ":")).encode() + b"\n"
        path.write_bytes(drifted + body)
        with pytest.raises(SegmentError, match="does not match TABLE_SCHEMA"):
            load_segment(path)

    def test_invalid_row_count_rejected(self, tmp_path):
        path = tmp_path / f"chunk{SEGMENT_SUFFIX}"
        save_segment(path, make_table(16))
        raw = path.read_bytes()
        head, body = raw.split(b"\n", 1)
        header = json.loads(head)
        header["n"] = -4
        mangled = json.dumps(header, separators=(",", ":")).encode() + b"\n"
        path.write_bytes(mangled + body)
        with pytest.raises(SegmentError, match="invalid row count"):
            load_segment(path)
