"""Tests for model-release persistence."""

import json

import pytest

from repro.core.arrivals import ArrivalModel
from repro.io.params import ParamsError, load_release, save_release


class TestReleaseRoundTrip:
    def test_services_round_trip(self, bank, tmp_path):
        path = tmp_path / "release.json"
        save_release(path, bank)
        restored, arrivals = load_release(path)
        assert set(restored.services()) == set(bank.services())
        assert arrivals == {}

    def test_arrivals_round_trip(self, bank, tmp_path):
        path = tmp_path / "release.json"
        model = ArrivalModel(peak_mu=12.0, peak_sigma=1.2, night_scale=1.5)
        save_release(path, bank, {"decile-5": model})
        _, arrivals = load_release(path)
        assert arrivals["decile-5"].peak_mu == 12.0
        assert arrivals["decile-5"].night_shape == 1.765

    def test_release_is_human_readable_json(self, bank, tmp_path):
        path = tmp_path / "release.json"
        save_release(path, bank)
        payload = json.loads(path.read_text())
        assert payload["format_version"] == 1
        assert "services" in payload

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ParamsError):
            load_release(tmp_path / "absent.json")

    def test_wrong_version_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 99, "services": {}}))
        with pytest.raises(ParamsError):
            load_release(path)

    def test_malformed_arrival_entry_raises(self, bank, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps(
                {
                    "format_version": 1,
                    "services": {},
                    "arrivals": {"x": {"peak_mu": 1.0}},
                }
            )
        )
        with pytest.raises(ParamsError):
            load_release(path)
