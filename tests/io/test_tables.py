"""Tests for the table renderer."""

import pytest

from repro.io.tables import TableError, format_table, print_table


class TestFormatTable:
    def test_basic_rendering(self):
        text = format_table(["name", "value"], [["a", 1.0], ["bb", 2.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}

    def test_floats_formatted(self):
        text = format_table(["x"], [[3.14159265]])
        assert "3.142" in text

    def test_custom_float_format(self):
        text = format_table(["x"], [[3.14159265]], float_format="{:.1f}")
        assert "3.1" in text

    def test_column_alignment(self):
        text = format_table(["a", "b"], [["xxxx", "y"], ["z", "wwww"]])
        lines = text.splitlines()
        assert len(lines[2]) == len(lines[3])

    def test_empty_rows_allowed(self):
        text = format_table(["only", "header"], [])
        assert "only" in text

    def test_mismatched_row_rejected(self):
        with pytest.raises(TableError):
            format_table(["a", "b"], [["only one"]])

    def test_no_columns_rejected(self):
        with pytest.raises(TableError):
            format_table([], [])

    def test_print_table_with_title(self, capsys):
        print_table(["h"], [["v"]], title="My Table")
        out = capsys.readouterr().out
        assert "My Table" in out
        assert "=" * len("My Table") in out
