"""Tests for session-trace CSV export/import."""

import gzip

import numpy as np
import pytest

from repro.dataset.records import SERVICE_NAMES, SessionTable
from repro.io.traces import (
    TRACE_COLUMNS,
    TraceError,
    read_trace,
    trace_to_string,
    write_trace,
)


def small_table():
    return SessionTable(
        service_idx=np.array([0, 5, 13]),
        bs_id=np.array([1, 2, 3]),
        day=np.array([0, 0, 1]),
        start_minute=np.array([10, 500, 1400]),
        duration_s=np.array([12.5, 300.0, 60.0]),
        volume_mb=np.array([0.5, 42.0, 7.25]),
        truncated=np.array([False, True, False]),
    )


class TestRoundTrip:
    def test_csv_round_trip(self, tmp_path):
        path = tmp_path / "trace.csv"
        assert write_trace(small_table(), path) == 3
        restored = read_trace(path)
        original = small_table()
        assert np.array_equal(restored.service_idx, original.service_idx)
        assert np.array_equal(restored.bs_id, original.bs_id)
        assert np.array_equal(restored.truncated, original.truncated)
        assert np.allclose(restored.volume_mb, original.volume_mb, rtol=1e-5)
        assert np.allclose(restored.duration_s, original.duration_s, rtol=1e-5)

    def test_gzip_round_trip(self, tmp_path):
        path = tmp_path / "trace.csv.gz"
        write_trace(small_table(), path)
        with gzip.open(path, "rt") as handle:
            first = handle.readline().strip()
        assert first == ",".join(TRACE_COLUMNS)
        assert len(read_trace(path)) == 3

    def test_gzip_export_is_byte_deterministic(self, tmp_path):
        # The gzip header must not embed wall-clock time or the output
        # filename: two exports of the same table — whenever they run and
        # whatever they are called — must be comparable with a plain cmp.
        first = tmp_path / "first.csv.gz"
        second = tmp_path / "differently-named.csv.gz"
        write_trace(small_table(), first)
        write_trace(small_table(), second)
        assert first.read_bytes() == second.read_bytes()

    def test_empty_table_round_trip(self, tmp_path):
        path = tmp_path / "empty.csv"
        write_trace(SessionTable.empty(), path)
        assert len(read_trace(path)) == 0

    def test_chunked_write_matches_single_chunk(self, tmp_path):
        # The chunked streaming path must produce byte-identical files for
        # any chunk size, including chunks smaller than the table.
        whole = tmp_path / "whole.csv"
        chunked = tmp_path / "chunked.csv"
        write_trace(small_table(), whole)
        assert write_trace(small_table(), chunked, chunk_rows=2) == 3
        assert whole.read_bytes() == chunked.read_bytes()

    def test_chunked_round_trip(self, tmp_path):
        path = tmp_path / "trace.csv"
        write_trace(small_table(), path, chunk_rows=1)
        restored = read_trace(path)
        original = small_table()
        assert len(restored) == 3
        assert np.array_equal(restored.service_idx, original.service_idx)
        assert np.allclose(restored.volume_mb, original.volume_mb, rtol=1e-5)

    def test_invalid_chunk_size_rejected(self, tmp_path):
        with pytest.raises(TraceError):
            write_trace(small_table(), tmp_path / "x.csv", chunk_rows=0)

    def test_campaign_subset_round_trip(self, campaign, tmp_path):
        sub = campaign.select(campaign.bs_id == 0)
        path = tmp_path / "bs0.csv.gz"
        write_trace(sub, path)
        restored = read_trace(path)
        assert len(restored) == len(sub)
        assert restored.total_volume_mb() == pytest.approx(
            sub.total_volume_mb(), rel=1e-4
        )


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            read_trace(tmp_path / "absent.csv")

    def test_wrong_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(TraceError):
            read_trace(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(TraceError):
            read_trace(path)

    def test_unknown_service(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            ",".join(TRACE_COLUMNS)
            + "\nNotAnApp,0,0,0,10.0,1.0,0\n"
        )
        with pytest.raises(TraceError):
            read_trace(path)

    def test_malformed_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            ",".join(TRACE_COLUMNS) + f"\n{SERVICE_NAMES[0]},0,0,0,oops,1.0,0\n"
        )
        with pytest.raises(TraceError):
            read_trace(path)


class TestStringRendering:
    def test_header_and_rows(self):
        text = trace_to_string(small_table())
        lines = text.strip().splitlines()
        assert lines[0] == ",".join(TRACE_COLUMNS)
        assert len(lines) == 4
        assert lines[1].startswith(SERVICE_NAMES[0])
