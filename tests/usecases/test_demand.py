"""Tests for the per-slice demand time series (Section 6.1)."""

import numpy as np
import pytest

from repro.dataset.records import SERVICE_INDEX, SERVICE_NAMES, SessionTable
from repro.usecases.slicing.demand import (
    DemandError,
    campaign_peak_mask,
    demand_matrix,
    spread_sessions,
)


def one_session_table(minute=100, duration=150.0, volume=9.0):
    return SessionTable(
        service_idx=np.array([SERVICE_INDEX["Netflix"]]),
        bs_id=np.array([0]),
        day=np.array([0]),
        start_minute=np.array([minute]),
        duration_s=np.array([duration]),
        volume_mb=np.array([volume]),
        truncated=np.array([False]),
    )


class TestSpreadSessions:
    def test_volume_spread_uniformly(self):
        demand = spread_sessions(
            np.array([0]), 1, np.array([0]), np.array([10]),
            np.array([9.0]), np.array([150.0]), 1,
        )
        # 150 s -> 3 minutes of 3 MB each.
        assert demand[0, 10] == pytest.approx(3.0)
        assert demand[0, 11] == pytest.approx(3.0)
        assert demand[0, 12] == pytest.approx(3.0)
        assert demand[0, 13] == 0.0

    def test_total_volume_conserved(self):
        rng = np.random.default_rng(0)
        n = 500
        demand = spread_sessions(
            rng.integers(0, 3, n), 3,
            rng.integers(0, 2, n), rng.integers(0, 1000, n),
            rng.uniform(0.1, 10.0, n), rng.uniform(1.0, 4000.0, n), 2,
        )
        # Clipping at day end may shed a little; never create volume.
        assert demand.sum() <= 500 * 10.0

    def test_sub_minute_session_lands_in_one_minute(self):
        demand = spread_sessions(
            np.array([0]), 1, np.array([0]), np.array([5]),
            np.array([2.0]), np.array([30.0]), 1,
        )
        assert demand[0, 5] == pytest.approx(2.0)
        assert demand[0, 6] == 0.0

    def test_clipped_at_midnight(self):
        demand = spread_sessions(
            np.array([0]), 1, np.array([0]), np.array([1438]),
            np.array([10.0]), np.array([600.0]), 1,
        )
        # Only 2 minutes remain in the day.
        assert demand[0, 1438] == pytest.approx(5.0)
        assert demand[0, 1439] == pytest.approx(5.0)

    def test_group_out_of_range_rejected(self):
        with pytest.raises(DemandError):
            spread_sessions(
                np.array([5]), 2, np.array([0]), np.array([0]),
                np.array([1.0]), np.array([1.0]), 1,
            )

    def test_misaligned_columns_rejected(self):
        with pytest.raises(DemandError):
            spread_sessions(
                np.array([0]), 1, np.array([0, 0]), np.array([0]),
                np.array([1.0]), np.array([1.0]), 1,
            )


class TestDemandMatrix:
    def test_shape(self):
        demand = demand_matrix(one_session_table(), [0, 1], 1)
        assert demand.shape == (2, len(SERVICE_NAMES), 1440)

    def test_attribution_to_bs_and_service(self):
        demand = demand_matrix(one_session_table(), [0, 1], 1)
        netflix = SERVICE_INDEX["Netflix"]
        assert demand[0, netflix].sum() == pytest.approx(9.0)
        assert demand[1].sum() == 0.0

    def test_empty_antenna_list_rejected(self):
        with pytest.raises(DemandError):
            demand_matrix(one_session_table(), [], 1)

    def test_campaign_demand_conserves_volume(self, campaign):
        from tests.conftest import CAMPAIGN_DAYS

        demand = demand_matrix(campaign, [0, 1], CAMPAIGN_DAYS)
        sub = campaign.for_bs_ids([0, 1])
        assert demand.sum() <= sub.total_volume_mb() * (1 + 1e-6)
        assert demand.sum() > 0.9 * sub.total_volume_mb()


class TestPeakMask:
    def test_mask_length(self):
        assert campaign_peak_mask(3).shape == (3 * 1440,)

    def test_mask_repeats_daily_pattern(self):
        mask = campaign_peak_mask(2)
        assert np.array_equal(mask[:1440], mask[1440:])

    def test_invalid_days_rejected(self):
        with pytest.raises(DemandError):
            campaign_peak_mask(0)
