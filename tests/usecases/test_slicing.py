"""Tests for the slicing allocators, benchmarks and full experiment."""

import numpy as np
import pytest

from repro.core.arrivals import ArrivalModel
from repro.core.service_mix import ServiceMix
from repro.dataset.services import LiteratureCategory
from repro.usecases.slicing.allocation import (
    AllocationError,
    allocate_with_categories,
    allocate_with_models,
    percentile_capacity,
)
from repro.usecases.slicing.benchmarks import (
    BM_A_SHARES,
    BM_B_SHARES,
    CATEGORY_MODELS,
    BenchmarkError,
    normalized_shares,
    sample_category_sessions,
)
from repro.usecases.slicing.simulator import (
    SlicingScenario,
    evaluate_capacity,
    run_slicing_experiment,
)


class TestBenchmarkModels:
    def test_bm_shares_match_paper(self):
        assert BM_A_SHARES[LiteratureCategory.INTERACTIVE_WEB] == pytest.approx(0.4930)
        assert BM_B_SHARES[LiteratureCategory.MOVIE_STREAMING] == pytest.approx(0.0789)

    def test_normalized_shares_sum_to_one(self):
        shares = normalized_shares(BM_A_SHARES)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_negative_share_rejected(self):
        with pytest.raises(BenchmarkError):
            normalized_shares({LiteratureCategory.INTERACTIVE_WEB: -1.0})

    def test_category_sampling_follows_shares(self):
        cats, volumes, durations = sample_category_sessions(
            BM_B_SHARES, np.random.default_rng(0), 20000
        )
        ms = sum(1 for c in cats if c is LiteratureCategory.MOVIE_STREAMING)
        assert ms / 20000 == pytest.approx(0.0789, abs=0.01)
        assert np.all(volumes > 0)
        assert np.all(durations >= 1.0)

    def test_category_volumes_scale_with_bitrate(self):
        rng = np.random.default_rng(1)
        iw = CATEGORY_MODELS[LiteratureCategory.INTERACTIVE_WEB]
        ms = CATEGORY_MODELS[LiteratureCategory.MOVIE_STREAMING]
        iw_vol, _ = iw.sample_sessions(rng, 5000)
        ms_vol, _ = ms.sample_sessions(rng, 5000)
        assert ms_vol.mean() > 10 * iw_vol.mean()


class TestPercentileCapacity:
    def test_constant_demand(self):
        demand = np.full((2, 3, 100), 5.0)
        mask = np.ones(100, dtype=bool)
        assert np.allclose(percentile_capacity(demand, mask), 5.0)

    def test_percentile_selects_peak_hours_only(self):
        demand = np.zeros((1, 1, 100))
        demand[0, 0, 50:] = 10.0
        mask = np.zeros(100, dtype=bool)
        mask[50:] = True
        assert percentile_capacity(demand, mask)[0, 0] == pytest.approx(10.0)

    def test_bad_shapes_rejected(self):
        with pytest.raises(AllocationError):
            percentile_capacity(np.zeros((2, 2)), np.ones(2, dtype=bool))
        with pytest.raises(AllocationError):
            percentile_capacity(
                np.zeros((1, 1, 5)), np.ones(4, dtype=bool)
            )

    def test_bad_percentile_rejected(self):
        with pytest.raises(AllocationError):
            percentile_capacity(
                np.zeros((1, 1, 5)), np.ones(5, dtype=bool), percentile=0.0
            )


class TestAllocators:
    @pytest.fixture(scope="class")
    def arrival_models(self):
        return {
            0: ArrivalModel(5.0, 0.5, 0.6),
            1: ArrivalModel(20.0, 2.0, 2.5),
        }

    def test_model_allocation_shape(self, arrival_models, bank):
        mix = ServiceMix.from_table1().restricted_to(bank.services())
        capacity = allocate_with_models(
            arrival_models, mix, bank, np.random.default_rng(0), n_sim_days=1
        )
        assert capacity.shape == (2, 31)
        assert np.all(capacity >= 0)

    def test_busier_antenna_gets_more_capacity(self, arrival_models, bank):
        mix = ServiceMix.from_table1().restricted_to(bank.services())
        capacity = allocate_with_models(
            arrival_models, mix, bank, np.random.default_rng(1), n_sim_days=1
        )
        assert capacity[1].sum() > capacity[0].sum()

    def test_category_allocation_uniform_within_category(self, arrival_models):
        from repro.dataset.records import SERVICE_INDEX
        from repro.dataset.services import services_in_category

        capacity = allocate_with_categories(
            arrival_models, BM_A_SHARES, np.random.default_rng(2), n_sim_days=1
        )
        iw = services_in_category(LiteratureCategory.INTERACTIVE_WEB)
        cols = [SERVICE_INDEX[name] for name in iw]
        assert np.allclose(capacity[0, cols], capacity[0, cols[0]])


class TestEvaluation:
    def test_evaluate_capacity_full_coverage(self):
        demand = np.random.default_rng(0).uniform(0, 1, (2, 3, 200))
        mask = np.ones(200, dtype=bool)
        satisfaction = evaluate_capacity(demand, np.full((2, 3), 2.0), mask)
        assert np.all(satisfaction == 1.0)

    def test_evaluate_capacity_zero_allocation(self):
        demand = np.ones((1, 1, 100))
        mask = np.ones(100, dtype=bool)
        satisfaction = evaluate_capacity(demand, np.zeros((1, 1)), mask)
        assert satisfaction[0, 0] == 0.0

    def test_exact_capacity_counts_as_served(self):
        demand = np.full((1, 1, 10), 3.0)
        mask = np.ones(10, dtype=bool)
        satisfaction = evaluate_capacity(demand, np.full((1, 1), 3.0), mask)
        assert satisfaction[0, 0] == 1.0


class TestExperiment:
    @pytest.fixture(scope="class")
    def outcome(self):
        return run_slicing_experiment(
            np.random.default_rng(7),
            SlicingScenario(n_antennas=10, n_days=1, n_model_days=2),
        )

    def test_three_strategies(self, outcome):
        assert set(outcome.results) == {"model", "bm_a", "bm_b"}

    def test_model_close_to_sla(self, outcome):
        # Table 2: the model-driven allocation essentially meets the 95 %
        # SLA; short fixture horizons cost a little percentile accuracy.
        assert outcome.results["model"].mean_satisfaction > 0.88

    def test_model_has_lowest_variability(self, outcome):
        stds = {k: r.std_satisfaction for k, r in outcome.results.items()}
        assert stds["model"] == min(stds.values())

    def test_timeseries_accessor(self, outcome):
        demand, capacity = outcome.timeseries("model", "Facebook", 0)
        assert demand.shape == (outcome.scenario.n_days * 1440,)
        assert capacity >= 0


class TestAllocatorErrorPaths:
    def test_category_allocation_without_sessions_raises(self):
        # Arrival models with sub-rounding rates never emit a session.
        models = {0: ArrivalModel(1e-9 + 0.01, 0.001, 1e-6)}
        # peak mu 0.01 -> rounded counts are always 0.
        with pytest.raises(AllocationError):
            allocate_with_categories(
                models, BM_A_SHARES, np.random.default_rng(0), n_sim_days=1
            )
