"""Tests for the bin-packing heuristics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.usecases.vran.binpacking import (
    IncrementalPacker,
    PackingError,
    first_fit_decreasing,
)


class TestFirstFitDecreasing:
    def test_single_item(self):
        result = first_fit_decreasing([3.0], 10.0)
        assert result.n_bins == 1
        assert result.bin_loads == [3.0]

    def test_perfect_packing(self):
        result = first_fit_decreasing([6.0, 4.0, 7.0, 3.0], 10.0)
        assert result.n_bins == 2
        assert sorted(result.bin_loads) == [10.0, 10.0]

    def test_assignments_consistent_with_loads(self):
        items = [5.0, 2.0, 9.0, 4.0]
        result = first_fit_decreasing(items, 10.0)
        rebuilt = [0.0] * result.n_bins
        for item, bin_id in zip(items, result.assignments):
            rebuilt[bin_id] += item
        assert rebuilt == pytest.approx(result.bin_loads)

    def test_oversized_item_rejected(self):
        with pytest.raises(PackingError):
            first_fit_decreasing([11.0], 10.0)

    def test_negative_item_rejected(self):
        with pytest.raises(PackingError):
            first_fit_decreasing([-1.0], 10.0)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(PackingError):
            first_fit_decreasing([1.0], 0.0)

    def test_empty_input(self):
        assert first_fit_decreasing([], 10.0).n_bins == 0

    def test_ffd_respects_lower_bound(self):
        rng = np.random.default_rng(0)
        items = rng.uniform(0.1, 5.0, size=200)
        result = first_fit_decreasing(items, 10.0)
        assert result.n_bins >= int(np.ceil(items.sum() / 10.0))

    def test_ffd_within_approximation_guarantee(self):
        # FFD uses at most 11/9 OPT + 1 bins; OPT >= ceil(sum/capacity).
        rng = np.random.default_rng(1)
        items = rng.uniform(0.1, 9.9, size=300)
        result = first_fit_decreasing(items, 10.0)
        lower = int(np.ceil(items.sum() / 10.0))
        assert result.n_bins <= np.ceil(11 / 9 * lower) + 1


class TestIncrementalPacker:
    def test_add_and_remove_round_trip(self):
        packer = IncrementalPacker(10.0)
        packer.add(1, 4.0)
        packer.add(2, 5.0)
        assert packer.n_bins == 1
        packer.remove(1)
        assert packer.total_load == pytest.approx(5.0)
        packer.remove(2)
        assert packer.n_bins == 0

    def test_overflow_opens_new_bin(self):
        packer = IncrementalPacker(10.0)
        packer.add(1, 7.0)
        packer.add(2, 6.0)
        assert packer.n_bins == 2

    def test_duplicate_session_rejected(self):
        packer = IncrementalPacker(10.0)
        packer.add(1, 1.0)
        with pytest.raises(PackingError):
            packer.add(1, 1.0)

    def test_remove_unknown_rejected(self):
        with pytest.raises(PackingError):
            IncrementalPacker(10.0).remove(1)

    def test_oversized_session_rejected(self):
        with pytest.raises(PackingError):
            IncrementalPacker(10.0).add(1, 10.5)

    def test_batch_adds_largest_first(self):
        packer = IncrementalPacker(10.0)
        packer.add_batch([1, 2, 3], np.array([2.0, 9.0, 7.0]))
        # FFD order: 9 | 7+2 -> two bins, not three.
        assert packer.n_bins == 2

    def test_consolidation_closes_drained_bins(self):
        packer = IncrementalPacker(10.0)
        packer.add(1, 5.0)
        packer.add(2, 4.0)  # same bin as session 1 (load 9.0)
        packer.add(3, 2.0)  # does not fit -> second bin
        assert packer.n_bins == 2
        packer.remove(2)  # first bin drops to 5.0
        closed = packer.consolidate()  # session 3 relocates into bin 1
        assert closed == 1
        assert packer.n_bins == 1
        assert packer.total_load == pytest.approx(7.0)

    def test_consolidation_noop_when_full(self):
        packer = IncrementalPacker(10.0)
        packer.add(1, 9.5)
        packer.add(2, 9.5)
        assert packer.consolidate() == 0
        assert packer.n_bins == 2

    def test_loads_never_exceed_capacity(self):
        rng = np.random.default_rng(2)
        packer = IncrementalPacker(10.0)
        for i in range(500):
            packer.add(i, float(rng.uniform(0.1, 9.9)))
            if i % 3 == 0 and i > 0:
                packer.remove(i - 1)
            packer.consolidate()
            assert np.all(packer.bin_loads() <= 10.0 + 1e-6)


@given(
    items=st.lists(
        st.floats(min_value=0.01, max_value=9.99), min_size=1, max_size=120
    )
)
@settings(max_examples=40, deadline=None)
def test_property_packer_conserves_load_and_respects_capacity(items):
    """Invariants: total load conserved; no bin over capacity; consolidation
    never increases the bin count."""
    packer = IncrementalPacker(10.0)
    for i, size in enumerate(items):
        packer.add(i, size)
    assert packer.total_load == pytest.approx(sum(items))
    before = packer.n_bins
    packer.consolidate()
    assert packer.n_bins <= before
    assert packer.total_load == pytest.approx(sum(items))
    assert np.all(packer.bin_loads() <= 10.0 + 1e-9)
    lower_bound = int(np.ceil(sum(items) / 10.0))
    assert packer.n_bins >= lower_bound


class TestGroupAffinity:
    def test_affinity_prefers_same_group_bin(self):
        packer = IncrementalPacker(10.0, group_affinity=True)
        packer.add(1, 5.0, group=0)   # bin A
        packer.add(2, 9.0, group=1)   # does not fit A -> bin B
        packer.add(3, 1.0, group=1)   # fits A too, but prefers B (group 1)
        assert packer.n_bins == 2
        assert packer._session_bin[3] == packer._session_bin[2]

    def test_plain_first_fit_ignores_groups(self):
        packer = IncrementalPacker(10.0, group_affinity=False)
        packer.add(1, 5.0, group=0)
        packer.add(2, 9.0, group=1)
        packer.add(3, 1.0, group=1)   # plain FF: first bin with space
        assert packer._session_bin[3] == packer._session_bin[1]

    def test_affinity_falls_back_when_group_bin_full(self):
        packer = IncrementalPacker(10.0, group_affinity=True)
        packer.add(1, 9.0, group=0)
        packer.add(2, 5.0, group=0)  # group bin full -> any/new bin
        assert packer.n_bins == 2

    def test_mean_groups_per_bin_tracks_mixing(self):
        packer = IncrementalPacker(10.0, group_affinity=True)
        packer.add(1, 2.0, group=0)
        packer.add(2, 2.0, group=1)
        assert packer.mean_groups_per_bin() == pytest.approx(2.0)
        packer.remove(2)
        assert packer.mean_groups_per_bin() == pytest.approx(1.0)

    def test_mean_groups_empty_system(self):
        assert IncrementalPacker(10.0).mean_groups_per_bin() == 0.0

    def test_group_bookkeeping_survives_consolidation(self):
        packer = IncrementalPacker(10.0, group_affinity=True)
        packer.add(1, 5.0, group=0)
        packer.add(2, 4.0, group=0)
        packer.add(3, 2.0, group=1)
        packer.remove(2)
        packer.consolidate()
        assert packer.n_bins == 1
        assert packer.mean_groups_per_bin() == pytest.approx(2.0)

    def test_batch_with_groups_alignment_checked(self):
        packer = IncrementalPacker(10.0, group_affinity=True)
        with pytest.raises(PackingError):
            packer.add_batch([1, 2], np.array([1.0, 2.0]), np.array([0]))
