"""Tests for the orchestration policy knobs (affinity, utilization cap)."""

import numpy as np
import pytest

from repro.usecases.vran.simulator import (
    VranScenario,
    run_orchestration,
)
from repro.usecases.vran.sources import ArrivalSkeleton, SourceError
from repro.usecases.vran.topology import VranTopology


def scenario(horizon=60.0):
    return VranScenario(
        topology=VranTopology(n_es=3, n_ru_per_es=2),
        horizon_s=horizon,
        warmup_s=10.0,
    )


def skeleton_on_dus():
    """Six sessions, one per RU (two RUs per DU), all arriving early."""
    return ArrivalSkeleton(
        t_start_s=np.array([0.1, 0.2, 0.3, 0.4, 0.5, 0.6]),
        ru_idx=np.arange(6),
        service_idx=np.zeros(6, dtype=int),
        horizon_s=60.0,
    )


class TestPolicyKnobs:
    def test_invalid_utilization_cap_rejected(self):
        sk = skeleton_on_dus()
        with pytest.raises(SourceError):
            run_orchestration(
                sk, np.ones(6), np.full(6, 30.0), scenario(),
                utilization_cap=0.0,
            )
        with pytest.raises(SourceError):
            run_orchestration(
                sk, np.ones(6), np.full(6, 30.0), scenario(),
                utilization_cap=1.5,
            )

    def test_utilization_cap_opens_more_servers(self):
        sk = skeleton_on_dus()
        volumes = np.full(6, 150.0)  # 40 Mbps each over 30 s
        durations = np.full(6, 30.0)
        full = run_orchestration(sk, volumes, durations, scenario())
        capped = run_orchestration(
            sk, volumes, durations, scenario(), utilization_cap=0.5
        )
        # 6 x 40 Mbps: 3 PSs at full utilization, 6 at 50 % cap.
        assert capped.n_ps[5] > full.n_ps[5]

    def test_du_concentration_always_recorded(self):
        sk = skeleton_on_dus()
        trace = run_orchestration(
            sk, np.ones(6), np.full(6, 30.0), scenario()
        )
        assert trace.du_concentration is not None
        assert trace.mean_dus_per_ps is not None

    def test_concentration_bounds(self):
        sk = skeleton_on_dus()
        trace = run_orchestration(
            sk, np.full(6, 10.0), np.full(6, 30.0), scenario(),
            du_affinity=True,
        )
        active = trace.n_ps > 0
        assert np.all(trace.du_concentration[active] <= 1.0 + 1e-9)
        assert np.all(trace.du_concentration[active] > 0.0)

    def test_empty_system_concentration_is_one(self):
        sk = skeleton_on_dus()
        trace = run_orchestration(
            sk, np.full(6, 1.0), np.full(6, 5.0), scenario()
        )
        # After every session left, concentration defaults to 1.0.
        assert trace.du_concentration[-1] == pytest.approx(1.0)

    def test_affinity_colocates_du_when_possible(self):
        # Two DUs, sessions small enough that either policy needs one PS
        # only after warm filling; with two PSs forced by a big session,
        # the affinity policy steers each DU's small sessions together.
        # Separate TSs fix the placement order: DU1's 80 Mbps lands first
        # (bin A), DU0's 70 Mbps opens bin B, and DU0's trailing 20 Mbps
        # fits either bin.
        sk = ArrivalSkeleton(
            t_start_s=np.array([0.1, 1.5, 2.5]),
            ru_idx=np.array([2, 0, 1]),  # DU1, DU0, DU0
            service_idx=np.zeros(3, dtype=int),
            horizon_s=60.0,
        )
        volumes = np.array([300.0, 262.5, 75.0])   # 80, 70, 20 Mbps over 30 s
        durations = np.full(3, 30.0)
        plain = run_orchestration(sk, volumes, durations, scenario())
        affine = run_orchestration(
            sk, volumes, durations, scenario(), du_affinity=True
        )
        # Plain first-fit drops the 20 Mbps into DU1's bin (first with
        # space); affinity steers it next to DU0's 70 Mbps.
        assert affine.du_concentration[5] == pytest.approx(1.0)
        assert plain.du_concentration[5] < 1.0
