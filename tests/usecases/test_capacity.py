"""Tests for the processor-sharing downlink and the QoE experiment."""

import numpy as np
import pytest

from repro.usecases.capacity import (
    CapacityScenario,
    run_capacity_experiment,
    simulate_processor_sharing,
)
from repro.usecases.capacity.processor_sharing import CapacityError


class TestProcessorSharing:
    def test_single_flow_runs_at_full_rate(self):
        # 10 MB at 80 Mbps: exactly 1 second, slowdown 1.
        result = simulate_processor_sharing(
            np.array([0.0]), np.array([10.0]), capacity_mbps=80.0
        )
        assert result.sojourn_s[0] == pytest.approx(1.0)
        assert result.slowdown[0] == pytest.approx(1.0)
        assert result.finished.all()

    def test_two_simultaneous_flows_share_equally(self):
        # Two identical flows from t=0: each gets C/2, doubling the sojourn.
        result = simulate_processor_sharing(
            np.array([0.0, 0.0]), np.array([10.0, 10.0]), capacity_mbps=80.0
        )
        assert result.sojourn_s[0] == pytest.approx(2.0)
        assert result.slowdown[1] == pytest.approx(2.0)

    def test_staggered_overlap_hand_computed(self):
        # Flow A: 10 MB at t=0; flow B: 5 MB at t=0.5 (C = 80 Mbps).
        # 0.0-0.5: A alone, delivers 40 Mbit (40 left).
        # From 0.5: A and B share 40 Mbps each; B (40 Mbit) and A (40 Mbit)
        # finish together at t = 1.5.
        result = simulate_processor_sharing(
            np.array([0.0, 0.5]), np.array([10.0, 5.0]), capacity_mbps=80.0
        )
        assert result.sojourn_s[0] == pytest.approx(1.5)
        assert result.sojourn_s[1] == pytest.approx(1.0)

    def test_work_conservation(self):
        # Total completion time of a busy period equals total work / C.
        rng = np.random.default_rng(0)
        volumes = rng.uniform(1.0, 20.0, 50)
        result = simulate_processor_sharing(
            np.zeros(50), volumes, capacity_mbps=100.0
        )
        busy_period = volumes.sum() * 8.0 / 100.0
        assert result.sojourn_s.max() == pytest.approx(busy_period)

    def test_horizon_marks_unfinished(self):
        result = simulate_processor_sharing(
            np.array([0.0]), np.array([1000.0]), capacity_mbps=8.0,
            horizon_s=10.0,
        )
        assert not result.finished[0]
        assert result.completion_rate() == 0.0

    def test_slowdown_at_least_one(self):
        rng = np.random.default_rng(1)
        arrivals = np.sort(rng.uniform(0, 100, 200))
        volumes = rng.uniform(0.5, 30.0, 200)
        result = simulate_processor_sharing(arrivals, volumes, 150.0)
        assert np.all(result.slowdown[result.finished] >= 1.0 - 1e-9)

    def test_unsorted_arrivals_rejected(self):
        with pytest.raises(CapacityError):
            simulate_processor_sharing(
                np.array([1.0, 0.0]), np.array([1.0, 1.0]), 10.0
            )

    def test_nonpositive_volume_rejected(self):
        with pytest.raises(CapacityError):
            simulate_processor_sharing(
                np.array([0.0]), np.array([0.0]), 10.0
            )

    def test_no_finished_flows_statistics_raise(self):
        result = simulate_processor_sharing(
            np.array([0.0]), np.array([1000.0]), 8.0, horizon_s=1.0
        )
        with pytest.raises(CapacityError):
            result.mean_slowdown()


class TestCapacityExperiment:
    @pytest.fixture(scope="class")
    def outcome(self, campaign):
        return run_capacity_experiment(
            campaign,
            np.random.default_rng(3),
            CapacityScenario(capacity_mbps=250.0, decile=7, horizon_s=600.0),
        )

    def test_all_strategies_present(self, outcome):
        assert set(outcome.results) == {
            "measurement", "model", "bm_a", "bm_c",
        }

    def test_model_tracks_measured_qoe(self, outcome):
        measured = outcome.results["measurement"].mean_slowdown()
        modelled = outcome.results["model"].mean_slowdown()
        assert modelled == pytest.approx(measured, rel=0.2)

    def test_bm_a_overloads_the_cell(self, outcome):
        # The raw literature model's offered load is far above reality.
        assert outcome.utilization["bm_a"] > 2 * outcome.utilization["measurement"]

    def test_summary_rows_shape(self, outcome):
        rows = outcome.summary_rows()
        assert len(rows) == 4
        assert all(len(row) == 5 for row in rows)

    def test_invalid_scenario_rejected(self):
        with pytest.raises(Exception):
            CapacityScenario(capacity_mbps=0.0)
        with pytest.raises(Exception):
            CapacityScenario(decile=11)


class TestSingleCellTopology:
    def test_pinned_decile(self):
        from repro.usecases.capacity.experiment import _SingleCellTopology

        topo = _SingleCellTopology(decile=9)
        units = topo.radio_units()
        assert len(units) == 1
        assert units[0].decile == 9
        # The pinned RU's arrival model carries the busiest class's rate.
        assert units[0].arrival_model().peak_mu > 50.0
