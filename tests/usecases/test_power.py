"""Tests for the PS power model (Section 6.2.1)."""

import numpy as np
import pytest

from repro.usecases.vran.power import (
    PS_CAPACITY_MBPS,
    PS_IDLE_W,
    PS_MAX_W,
    PowerModel,
    PowerModelError,
)


class TestConstants:
    def test_paper_values(self):
        assert PS_CAPACITY_MBPS == 100.0
        assert PS_IDLE_W == 60.0
        assert PS_MAX_W == 200.0


class TestPowerModel:
    def test_idle_power(self):
        assert PowerModel().ps_power_w(0.0) == pytest.approx(60.0)

    def test_full_load_power(self):
        assert PowerModel().ps_power_w(100.0) == pytest.approx(200.0)

    def test_linear_interpolation(self):
        assert PowerModel().ps_power_w(50.0) == pytest.approx(130.0)

    def test_monotone_in_load(self):
        model = PowerModel()
        loads = np.linspace(0, 100, 11)
        powers = model.ps_power_w(loads)
        assert np.all(np.diff(powers) > 0)

    def test_load_above_capacity_rejected(self):
        with pytest.raises(PowerModelError):
            PowerModel().ps_power_w(101.0)

    def test_negative_load_rejected(self):
        with pytest.raises(PowerModelError):
            PowerModel().ps_power_w(-5.0)

    def test_total_power_sums_servers(self):
        model = PowerModel()
        assert model.total_power_w(np.array([0.0, 100.0])) == pytest.approx(260.0)

    def test_total_power_empty_is_zero(self):
        assert PowerModel().total_power_w(np.array([])) == 0.0

    def test_power_from_counts_equals_per_ps_sum(self):
        # Linearity: split across PSs does not matter.
        model = PowerModel()
        loads = np.array([10.0, 60.0, 30.0])
        assert model.power_from_counts(3, float(loads.sum())) == pytest.approx(
            model.total_power_w(loads)
        )

    def test_power_from_counts_rejects_overload(self):
        with pytest.raises(PowerModelError):
            PowerModel().power_from_counts(1, 150.0)

    def test_invalid_construction(self):
        with pytest.raises(PowerModelError):
            PowerModel(capacity_mbps=0.0)
        with pytest.raises(PowerModelError):
            PowerModel(idle_w=300.0, max_w=200.0)

    def test_energy_minimization_equivalence(self):
        # Section 6.2.1: minimizing energy == minimizing active PSs, since
        # the load term is packing-independent.
        model = PowerModel()
        few_bins = model.power_from_counts(2, 150.0)
        many_bins = model.power_from_counts(3, 150.0)
        assert few_bins < many_bins
        assert many_bins - few_bins == pytest.approx(model.idle_w)
