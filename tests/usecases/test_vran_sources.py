"""Tests for the vRAN traffic sources and arrival skeleton."""

import numpy as np
import pytest

from repro.core.service_mix import ServiceMix
from repro.dataset.records import SERVICE_NAMES
from repro.usecases.vran.sources import (
    CategorySource,
    MeasurementSource,
    ModelBankSource,
    SourceError,
    generate_skeleton,
)
from repro.usecases.vran.topology import VranTopology


@pytest.fixture(scope="module")
def measurement(campaign, bank):
    return MeasurementSource.from_table(campaign, bank.services())


@pytest.fixture(scope="module")
def mix(campaign, bank, measurement):
    covered = [SERVICE_NAMES[i] for i in measurement.service_indices]
    return ServiceMix.from_measurements(campaign).restricted_to(covered)


@pytest.fixture(scope="module")
def skeleton(mix):
    topo = VranTopology(n_es=2, n_ru_per_es=5)
    return generate_skeleton(
        topo, mix, np.random.default_rng(0), horizon_s=600.0
    )


class TestSkeleton:
    def test_arrivals_sorted_in_time(self, skeleton):
        assert np.all(np.diff(skeleton.t_start_s) >= 0)

    def test_arrivals_within_horizon(self, skeleton):
        assert skeleton.t_start_s.max() < 600.0
        assert skeleton.t_start_s.min() >= 0.0

    def test_rus_within_topology(self, skeleton):
        assert skeleton.ru_idx.max() < 10

    def test_invalid_horizon_raises(self, mix):
        with pytest.raises(SourceError):
            generate_skeleton(
                VranTopology(2, 2), mix, np.random.default_rng(0), horizon_s=0.0
            )


class TestMeasurementSource:
    def test_decoration_shapes(self, measurement, skeleton):
        volumes, durations = measurement.decorate(
            skeleton, np.random.default_rng(1)
        )
        assert volumes.shape == durations.shape == (len(skeleton),)
        assert np.all(volumes > 0)
        assert np.all(durations >= 1.0)

    def test_mean_volume_reference(self, measurement, campaign):
        from repro.dataset.aggregation import pooled_volume_pdf
        from repro.dataset.records import SERVICE_INDEX

        means = measurement.mean_volume_by_service()
        fb = SERVICE_INDEX["Facebook"]
        expected = pooled_volume_pdf(campaign.for_service("Facebook")).mean_mb()
        assert means[fb] == pytest.approx(expected, rel=1e-6)

    def test_durations_track_measured_curve(self, measurement, campaign, skeleton):
        # Large-volume sessions must get long durations (matching v(d)).
        volumes, durations = measurement.decorate(
            skeleton, np.random.default_rng(2)
        )
        big = volumes > np.percentile(volumes, 95)
        small = volumes < np.percentile(volumes, 20)
        assert durations[big].mean() > durations[small].mean()


class TestModelBankSource:
    def test_decoration_uses_bank_models(self, bank, skeleton):
        source = ModelBankSource(bank)
        volumes, durations = source.decorate(skeleton, np.random.default_rng(3))
        assert np.all(volumes > 0)
        assert np.all(durations >= 1.0)

    def test_model_matches_measurement_scale(
        self, bank, measurement, skeleton
    ):
        mv, _ = measurement.decorate(skeleton, np.random.default_rng(4))
        sv, _ = ModelBankSource(bank).decorate(skeleton, np.random.default_rng(5))
        assert sv.mean() == pytest.approx(mv.mean(), rel=0.25)


class TestCategorySource:
    def test_bm_a_is_unscaled(self, skeleton):
        source = CategorySource.bm_a()
        volumes, _ = source.decorate(skeleton, np.random.default_rng(6))
        assert np.all(volumes > 0)

    def test_bm_b_matches_total_mean_volume(self, measurement, mix, skeleton):
        source = CategorySource.bm_b(measurement, mix)
        volumes, _ = source.decorate(skeleton, np.random.default_rng(7))
        mv, _ = measurement.decorate(skeleton, np.random.default_rng(8))
        assert volumes.mean() == pytest.approx(mv.mean(), rel=0.3)

    def test_bm_c_normalizes_each_category(self, measurement, mix, skeleton):
        from repro.dataset.services import LiteratureCategory, get_service

        source = CategorySource.bm_c(measurement, mix)
        volumes, _ = source.decorate(skeleton, np.random.default_rng(9))
        mv, _ = measurement.decorate(skeleton, np.random.default_rng(10))
        categories = np.array(
            [
                get_service(SERVICE_NAMES[i]).category.value
                for i in skeleton.service_idx
            ]
        )
        for category in LiteratureCategory:
            mask = categories == category.value
            if mask.sum() < 200:
                continue
            assert volumes[mask].mean() == pytest.approx(
                mv[mask].mean(), rel=0.5
            )

    def test_negative_scale_rejected(self):
        from repro.dataset.services import LiteratureCategory

        with pytest.raises(SourceError):
            CategorySource({LiteratureCategory.INTERACTIVE_WEB: -1.0})


class TestSourceErrorPaths:
    def test_sparse_curve_rejected(self):
        import numpy as np
        from repro.dataset.aggregation import (
            N_DURATION_BINS,
            DurationVolumeCurve,
        )
        from repro.analysis.histogram import LogHistogram
        from repro.usecases.vran.sources import EmpiricalServiceSampler

        means = np.zeros(N_DURATION_BINS)
        counts = np.zeros(N_DURATION_BINS)
        means[5], counts[5] = 1.0, 10.0  # single observed bin
        pdf = LogHistogram.from_volumes(np.ones(100))
        with pytest.raises(SourceError):
            EmpiricalServiceSampler(pdf, DurationVolumeCurve(means, counts))

    def test_empty_measurement_source_rejected(self):
        with pytest.raises(SourceError):
            MeasurementSource({})

    def test_decorating_uncovered_service_rejected(self, campaign, skeleton):
        source = MeasurementSource.from_table(campaign, ["Facebook"])
        # The module-level skeleton emits many services.
        with pytest.raises(SourceError):
            source.decorate(skeleton, np.random.default_rng(0))

    def test_unknown_strategy_rejected(self, campaign):
        from repro.usecases.vran.simulator import (
            VranScenario,
            run_vran_experiment,
        )
        from repro.usecases.vran.topology import VranTopology

        with pytest.raises(SourceError):
            run_vran_experiment(
                campaign,
                np.random.default_rng(0),
                VranScenario(
                    topology=VranTopology(n_es=1, n_ru_per_es=2),
                    horizon_s=120.0,
                    warmup_s=30.0,
                ),
                strategies=("nope",),
            )
