"""Tests for the vRAN orchestration loop and experiment (Section 6.2)."""

import numpy as np
import pytest

from repro.usecases.vran.simulator import (
    OrchestrationTrace,
    VranScenario,
    ape_per_ts,
    run_orchestration,
    run_vran_experiment,
)
from repro.usecases.vran.sources import ArrivalSkeleton, SourceError
from repro.usecases.vran.topology import VranTopology


def tiny_scenario(horizon=120.0, warmup=30.0):
    return VranScenario(
        topology=VranTopology(n_es=2, n_ru_per_es=3),
        horizon_s=horizon,
        warmup_s=warmup,
    )


def manual_skeleton():
    # Three sessions: two overlapping heavy ones, one later light one.
    return ArrivalSkeleton(
        t_start_s=np.array([0.5, 1.5, 60.0]),
        ru_idx=np.array([0, 1, 2]),
        service_idx=np.array([0, 0, 0]),
        horizon_s=120.0,
    )


class TestVranScenario:
    def test_warmup_must_fit_horizon(self):
        with pytest.raises(ValueError):
            VranScenario(horizon_s=100.0, warmup_s=100.0)


class TestRunOrchestration:
    def test_manual_session_occupancy(self):
        scenario = tiny_scenario()
        volumes = np.array([75.0, 75.0, 1.0])   # MB
        durations = np.array([10.0, 10.0, 20.0])  # -> 60, 60, 0.4 Mbps
        trace = run_orchestration(manual_skeleton(), volumes, durations, scenario)
        # During overlap two 60 Mbps sessions need two PSs.
        assert trace.n_ps[5] == 2
        # After both finish, zero PSs until the light session arrives.
        assert trace.n_ps[30] == 0
        assert trace.n_ps[65] == 1

    def test_power_follows_load_and_count(self):
        scenario = tiny_scenario()
        volumes = np.array([75.0, 75.0, 1.0])
        durations = np.array([10.0, 10.0, 20.0])
        trace = run_orchestration(manual_skeleton(), volumes, durations, scenario)
        # Two PSs at 60 Mbps each: 2*60 idle + 140*120/100 = 288 W.
        assert trace.power_w[5] == pytest.approx(288.0)
        assert trace.power_w[30] == 0.0

    def test_throughput_clipped_to_ps_capacity(self):
        scenario = tiny_scenario()
        volumes = np.array([10000.0, 1.0, 1.0])  # absurd rate
        durations = np.array([10.0, 100.0, 100.0])
        trace = run_orchestration(manual_skeleton(), volumes, durations, scenario)
        assert trace.total_load_mbps.max() <= 3 * scenario.power.capacity_mbps

    def test_misaligned_decoration_rejected(self):
        with pytest.raises(SourceError):
            run_orchestration(
                manual_skeleton(), np.ones(2), np.ones(2), tiny_scenario()
            )

    def test_sessions_eventually_leave(self):
        scenario = tiny_scenario()
        volumes = np.array([10.0, 10.0, 10.0])
        durations = np.array([5.0, 5.0, 5.0])
        trace = run_orchestration(manual_skeleton(), volumes, durations, scenario)
        assert trace.n_ps[-1] == 0


class TestApe:
    def test_identical_traces_zero_error(self):
        trace = OrchestrationTrace(
            n_ps=np.array([1, 2, 2]), power_w=np.array([100.0, 150.0, 150.0]),
            total_load_mbps=np.zeros(3),
        )
        ape_ps, ape_pw = ape_per_ts(trace, trace, warmup_ts=0)
        assert np.all(ape_ps == 0)
        assert np.all(ape_pw == 0)

    def test_warmup_skipped(self):
        ref = OrchestrationTrace(
            n_ps=np.array([0, 2]), power_w=np.array([0.0, 100.0]),
            total_load_mbps=np.zeros(2),
        )
        est = OrchestrationTrace(
            n_ps=np.array([5, 2]), power_w=np.array([500.0, 100.0]),
            total_load_mbps=np.zeros(2),
        )
        ape_ps, _ = ape_per_ts(ref, est, warmup_ts=1)
        assert np.all(ape_ps == 0)

    def test_length_mismatch_rejected(self):
        a = OrchestrationTrace(np.zeros(2), np.zeros(2), np.zeros(2))
        b = OrchestrationTrace(np.zeros(3), np.zeros(3), np.zeros(3))
        with pytest.raises(SourceError):
            ape_per_ts(a, b, 0)


class TestExperiment:
    @pytest.fixture(scope="class")
    def outcome(self, campaign):
        return run_vran_experiment(
            campaign,
            np.random.default_rng(0),
            tiny_scenario(horizon=400.0, warmup=150.0),
        )

    def test_all_strategies_present(self, outcome):
        assert set(outcome.traces) == {
            "measurement", "model", "bm_a", "bm_b", "bm_c",
        }

    def test_model_beats_benchmarks(self, outcome):
        # Fig 13b: our model's median APE is far below the benchmarks'.
        model = np.median(outcome.ape_power["model"])
        bm_a = np.median(outcome.ape_power["bm_a"])
        assert model < bm_a

    def test_bm_a_errors_are_large(self, outcome):
        # The unnormalized literature model is off by ~100 % or more.
        assert np.median(outcome.ape_power["bm_a"]) > 50.0

    def test_summary_structure(self, outcome):
        summary = outcome.summary()
        assert set(summary) == {"model", "bm_a", "bm_b", "bm_c"}
        for stats in summary.values():
            assert stats["power"].p5 <= stats["power"].p95
