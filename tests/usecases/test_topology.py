"""Tests for the vRAN topology."""

import pytest

from repro.usecases.vran.topology import RadioUnit, VranTopology


class TestVranTopology:
    def test_paper_default_scale(self):
        topo = VranTopology()
        assert topo.n_es == 20
        assert topo.n_ru_per_es == 20
        assert topo.n_ru == 400

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            VranTopology(n_es=0)

    def test_radio_units_enumeration(self):
        topo = VranTopology(n_es=3, n_ru_per_es=4)
        units = topo.radio_units()
        assert len(units) == 12
        assert [u.ru_id for u in units] == list(range(12))

    def test_es_assignment(self):
        topo = VranTopology(n_es=3, n_ru_per_es=4)
        units = topo.radio_units()
        assert units[0].es_id == 0
        assert units[4].es_id == 1
        assert topo.es_of_ru(11) == 2

    def test_es_of_ru_bounds(self):
        topo = VranTopology(n_es=2, n_ru_per_es=2)
        with pytest.raises(ValueError):
            topo.es_of_ru(4)

    def test_deciles_round_robin(self):
        topo = VranTopology(n_es=2, n_ru_per_es=10)
        units = topo.radio_units()
        assert [u.decile for u in units[:10]] == list(range(10))

    def test_arrival_model_scales_with_decile(self):
        low = RadioUnit(0, 0, 0).arrival_model()
        high = RadioUnit(9, 0, 9).arrival_model()
        assert high.peak_mu > 10 * low.peak_mu
        assert low.peak_sigma == pytest.approx(low.peak_mu / 10.0)
