"""Shared fixtures: one small measurement campaign reused across the suite.

The campaign is session-scoped because simulating it is the expensive part
of the suite; tests must not mutate it.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import settings as hypothesis_settings

from repro.core.model_bank import ModelBank

# Property tests must be reproducible across runs: derandomize hypothesis
# so the suite's verdict never depends on the draw of the day.
hypothesis_settings.register_profile("deterministic", derandomize=True)
hypothesis_settings.load_profile("deterministic")
from repro.dataset.aggregation import aggregate_per_bs_day
from repro.dataset.network import Network, NetworkConfig
from repro.dataset.simulator import SimulationConfig, simulate

#: Days of the shared campaign (includes one weekend day: day 5 is Saturday
#: under the day % 7 convention when starting on Monday=0 ... we simulate
#: days 0..6 to cover both).
CAMPAIGN_DAYS = 2


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """Fresh deterministic generator per test session."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def network() -> Network:
    """A 20-BS network with all deciles, regions, cities and RATs."""
    return Network(NetworkConfig(n_bs=20), np.random.default_rng(1))


@pytest.fixture(scope="session")
def campaign(network):
    """A small two-day measurement campaign over the shared network."""
    return simulate(
        network,
        SimulationConfig(n_days=CAMPAIGN_DAYS),
        np.random.default_rng(2),
    )


@pytest.fixture(scope="session")
def campaign_stats(campaign):
    """Per-(service, BS, day) statistics of the shared campaign."""
    return aggregate_per_bs_day(campaign)


@pytest.fixture(scope="session")
def bank(campaign) -> ModelBank:
    """Session-level models fitted on the shared campaign."""
    return ModelBank.fit_from_table(campaign, min_sessions=400)
