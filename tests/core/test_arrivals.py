"""Tests for the bi-modal session arrival model (Section 5.1)."""

import numpy as np
import pytest

from repro.core.arrivals import (
    ArrivalFitError,
    ArrivalModel,
    fit_arrival_model,
    fit_arrival_model_from_days,
)
from repro.dataset.circadian import peak_minute_mask
from repro.dataset.network import PARETO_SHAPE


def reference_model():
    return ArrivalModel(peak_mu=20.0, peak_sigma=2.0, night_scale=2.5)


class TestArrivalModel:
    def test_components_have_configured_parameters(self):
        model = reference_model()
        assert model.peak.mu == 20.0
        assert model.night.scale == 2.5
        assert model.night.shape == PARETO_SHAPE

    def test_invalid_parameters_raise(self):
        with pytest.raises(ArrivalFitError):
            ArrivalModel(peak_mu=0.0, peak_sigma=1.0, night_scale=1.0)
        with pytest.raises(ArrivalFitError):
            ArrivalModel(peak_mu=1.0, peak_sigma=0.0, night_scale=1.0)
        with pytest.raises(ArrivalFitError):
            ArrivalModel(peak_mu=1.0, peak_sigma=1.0, night_scale=-1.0)

    def test_mixture_pdf_is_bimodal(self):
        model = reference_model()
        rates = np.linspace(0.1, 30, 600)
        pdf = model.mixture_pdf(rates)
        # High density both near the Pareto scale and near the peak mean.
        assert pdf[np.argmin(np.abs(rates - 2.6))] > pdf[np.argmin(np.abs(rates - 10))]
        assert pdf[np.argmin(np.abs(rates - 20))] > pdf[np.argmin(np.abs(rates - 10))]

    def test_mixture_pdf_integrates_to_one(self):
        model = reference_model()
        rates = np.linspace(1e-3, 200, 200001)
        assert np.trapezoid(model.mixture_pdf(rates), rates) == pytest.approx(
            1.0, abs=1e-2
        )

    def test_sample_day_shape_and_sign(self):
        counts = reference_model().sample_day(np.random.default_rng(0))
        assert counts.shape == (1440,)
        assert counts.min() >= 0

    def test_day_counts_exceed_night_counts(self):
        counts = reference_model().sample_day(np.random.default_rng(0))
        mask = peak_minute_mask()
        assert counts[mask].mean() > 3 * counts[~mask].mean()

    def test_sample_counts_match_phases(self):
        model = reference_model()
        phase = np.array([True] * 500 + [False] * 500)
        counts = model.sample_minute_counts(np.random.default_rng(1), phase)
        assert counts[:500].mean() == pytest.approx(20.0, rel=0.05)


class TestFitArrivalModel:
    def test_round_trip_recovers_parameters(self):
        truth = reference_model()
        rng = np.random.default_rng(2)
        counts = np.concatenate([truth.sample_day(rng) for _ in range(20)])
        phase = np.tile(peak_minute_mask(), 20)
        fitted = fit_arrival_model(counts, phase)
        assert fitted.peak_mu == pytest.approx(truth.peak_mu, rel=0.03)
        assert fitted.night_scale == pytest.approx(truth.night_scale, rel=0.15)

    def test_sigma_is_tied_to_mu(self):
        counts = np.concatenate([np.full(100, 30.0), np.full(100, 1.0)])
        phase = np.array([True] * 100 + [False] * 100)
        fitted = fit_arrival_model(counts, phase)
        assert fitted.peak_sigma == pytest.approx(fitted.peak_mu / 10.0)

    def test_night_shape_stays_fixed(self):
        counts = np.concatenate([np.full(100, 30.0), np.full(100, 1.0)])
        phase = np.array([True] * 100 + [False] * 100)
        assert fit_arrival_model(counts, phase).night_shape == PARETO_SHAPE

    def test_needs_both_phases(self):
        with pytest.raises(ArrivalFitError):
            fit_arrival_model(np.ones(10), np.ones(10, dtype=bool))

    def test_misaligned_inputs_raise(self):
        with pytest.raises(ArrivalFitError):
            fit_arrival_model(np.ones(10), np.ones(9, dtype=bool))

    def test_zero_daytime_mean_raises(self):
        counts = np.zeros(20)
        phase = np.array([True] * 10 + [False] * 10)
        with pytest.raises(ArrivalFitError):
            fit_arrival_model(counts, phase)


class TestFitFromDays:
    def test_matrix_interface(self):
        truth = reference_model()
        rng = np.random.default_rng(3)
        matrix = np.stack([truth.sample_day(rng) for _ in range(10)])
        fitted = fit_arrival_model_from_days(matrix)
        assert fitted.peak_mu == pytest.approx(truth.peak_mu, rel=0.05)

    def test_single_day_vector_is_accepted(self):
        truth = reference_model()
        day = truth.sample_day(np.random.default_rng(4))
        fitted = fit_arrival_model_from_days(day)
        assert fitted.peak_mu > 0

    def test_wrong_width_raises(self):
        with pytest.raises(ArrivalFitError):
            fit_arrival_model_from_days(np.ones((2, 100)))


class TestFitDecileModels:
    def test_one_model_per_decile(self, campaign, network):
        from tests.conftest import CAMPAIGN_DAYS
        from repro.core.arrivals import fit_decile_arrival_models

        models = fit_decile_arrival_models(campaign, network, CAMPAIGN_DAYS)
        assert set(models) == set(range(10))

    def test_decile_rates_grow(self, campaign, network):
        from tests.conftest import CAMPAIGN_DAYS
        from repro.core.arrivals import fit_decile_arrival_models

        models = fit_decile_arrival_models(campaign, network, CAMPAIGN_DAYS)
        mus = [models[d].peak_mu for d in range(10)]
        assert mus == sorted(mus)
        assert mus[9] > 20 * mus[0]


class TestArrivalGoodnessOfFit:
    def test_model_pmf_normalizes(self):
        from repro.core.arrivals import arrival_count_pmf

        model = reference_model()
        pmf = arrival_count_pmf(model, max_count=60)
        assert pmf.sum() == pytest.approx(1.0, abs=0.02)
        assert np.all(pmf >= 0)

    def test_model_pmf_is_bimodal(self):
        from repro.core.arrivals import arrival_count_pmf

        model = reference_model()
        pmf = arrival_count_pmf(model, max_count=60)
        # Night mass near the Pareto scale, day mass near the Gaussian mean.
        assert pmf[2:5].sum() > 0.1
        assert pmf[18:23].sum() > 0.3
        assert pmf[10:14].sum() < 0.05  # depleted valley

    def test_fit_error_small_for_own_samples(self):
        from repro.core.arrivals import arrival_fit_error

        truth = reference_model()
        rng = np.random.default_rng(11)
        counts = np.concatenate([truth.sample_day(rng) for _ in range(30)])
        fitted = fit_arrival_model(counts, np.tile(peak_minute_mask(), 30))
        assert arrival_fit_error(counts, fitted) < 1.0

    def test_fit_error_large_for_wrong_model(self):
        from repro.core.arrivals import ArrivalModel, arrival_fit_error

        truth = reference_model()
        rng = np.random.default_rng(12)
        counts = np.concatenate([truth.sample_day(rng) for _ in range(10)])
        wrong = ArrivalModel(peak_mu=60.0, peak_sigma=6.0, night_scale=8.0)
        assert arrival_fit_error(counts, wrong) > 5 * arrival_fit_error(
            counts, truth
        )

    def test_invalid_max_count_rejected(self):
        from repro.core.arrivals import arrival_count_pmf

        with pytest.raises(ArrivalFitError):
            arrival_count_pmf(reference_model(), max_count=0)

    def test_empty_samples_rejected(self):
        from repro.core.arrivals import arrival_fit_error

        with pytest.raises(ArrivalFitError):
            arrival_fit_error(np.array([]), reference_model())
