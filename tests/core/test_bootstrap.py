"""Tests for bootstrap confidence intervals."""

import numpy as np
import pytest

from repro.core.fitting.bootstrap import (
    BootstrapError,
    ConfidenceInterval,
    bootstrap_mean_volume,
    bootstrap_power_law,
)
from repro.dataset.records import SessionTable


def synthetic_service_table(n=4000, alpha=0.01, beta=1.2, seed=0):
    """Sessions lying on a known power law with log-normal scatter."""
    rng = np.random.default_rng(seed)
    durations = 10.0 ** rng.uniform(0.5, 3.5, n)
    volumes = alpha * durations**beta * 10.0 ** rng.normal(0, 0.1, n)
    return SessionTable(
        service_idx=np.zeros(n, dtype=int),
        bs_id=np.zeros(n, dtype=int),
        day=np.zeros(n, dtype=int),
        start_minute=rng.integers(0, 1440, n),
        duration_s=durations,
        volume_mb=volumes,
        truncated=np.zeros(n, dtype=bool),
    )


class TestConfidenceInterval:
    def test_contains(self):
        ci = ConfidenceInterval(estimate=1.0, low=0.8, high=1.2, confidence=0.95)
        assert ci.contains(1.0)
        assert not ci.contains(1.5)
        assert ci.width == pytest.approx(0.4)

    def test_out_of_order_bounds_rejected(self):
        with pytest.raises(BootstrapError):
            ConfidenceInterval(estimate=1.0, low=2.0, high=1.0, confidence=0.95)


class TestBootstrapPowerLaw:
    @pytest.fixture(scope="class")
    def result(self):
        table = synthetic_service_table()
        return bootstrap_power_law(
            table, np.random.default_rng(1), n_resamples=60
        )

    def test_interval_contains_truth(self, result):
        # beta is unbiased; alpha carries a small duration-binning bias, so
        # the CI brackets the estimator (near the truth) rather than the
        # raw ground value.
        assert result.beta.contains(1.2)
        assert result.alpha.estimate == pytest.approx(0.01, rel=0.1)
        assert result.alpha.low <= result.alpha.estimate * 1.05
        assert result.alpha.high >= result.alpha.estimate * 0.95

    def test_estimate_inside_interval(self, result):
        assert result.beta.contains(result.beta.estimate)

    def test_interval_is_tight_for_large_samples(self, result):
        assert result.beta.width < 0.1

    def test_small_table_rejected(self):
        table = synthetic_service_table(n=5)
        with pytest.raises(BootstrapError):
            bootstrap_power_law(table, np.random.default_rng(0))

    def test_bad_confidence_rejected(self):
        table = synthetic_service_table(n=100)
        with pytest.raises(BootstrapError):
            bootstrap_power_law(
                table, np.random.default_rng(0), confidence=0.3
            )

    def test_too_few_resamples_rejected(self):
        table = synthetic_service_table(n=100)
        with pytest.raises(BootstrapError):
            bootstrap_power_law(table, np.random.default_rng(0), n_resamples=3)


class TestBootstrapMeanVolume:
    def test_interval_brackets_sample_mean(self):
        table = synthetic_service_table(n=3000, seed=2)
        ci = bootstrap_mean_volume(table, np.random.default_rng(3))
        sample_mean = float(table.volume_mb.mean())
        assert ci.low < sample_mean < ci.high

    def test_width_shrinks_with_sample_size(self):
        small = synthetic_service_table(n=200, seed=4)
        large = synthetic_service_table(n=8000, seed=4)
        rng = np.random.default_rng(5)
        ci_small = bootstrap_mean_volume(small, rng)
        ci_large = bootstrap_mean_volume(large, rng)
        relative_small = ci_small.width / ci_small.estimate
        relative_large = ci_large.width / ci_large.estimate
        assert relative_large < relative_small

    def test_campaign_service(self, campaign):
        sub = campaign.for_service("Deezer")
        ci = bootstrap_mean_volume(
            sub, np.random.default_rng(6), n_resamples=50
        )
        assert ci.contains(float(sub.volume_mb.mean()))
