"""Tests for the power-law duration–volume model (Section 5.3)."""

import numpy as np
import pytest

from repro.dataset.aggregation import (
    DURATION_CENTERS,
    N_DURATION_BINS,
    DurationVolumeCurve,
)
from repro.core.duration_model import (
    DurationModelError,
    FitFamily,
    PowerLawModel,
    fit_family,
    fit_power_law,
)


def synthetic_curve(alpha, beta, noise=0.0, rng=None):
    """A v(d) curve sampled from a known power law."""
    means = alpha * DURATION_CENTERS**beta
    if noise and rng is not None:
        means = means * 10.0 ** rng.normal(0, noise, size=means.shape)
    counts = np.full(N_DURATION_BINS, 100.0)
    return DurationVolumeCurve(means, counts)


class TestPowerLawModel:
    def test_predict_volume(self):
        model = PowerLawModel(alpha=0.01, beta=1.5, r2=1.0)
        assert model.predict_volume_mb(100.0) == pytest.approx(0.01 * 100**1.5)

    def test_inverse_round_trip(self):
        model = PowerLawModel(alpha=0.02, beta=0.7, r2=1.0)
        volumes = np.array([0.1, 1.0, 50.0])
        recovered = model.predict_volume_mb(model.duration_for_volume_s(volumes))
        assert np.allclose(recovered, volumes)

    def test_throughput_constant_iff_linear(self):
        linear = PowerLawModel(alpha=0.05, beta=1.0, r2=1.0)
        thr = linear.throughput_mbps(np.array([10.0, 100.0, 1000.0]))
        assert np.allclose(thr, thr[0])

    def test_super_linear_throughput_grows(self):
        model = PowerLawModel(alpha=0.001, beta=1.8, r2=1.0)
        thr = model.throughput_mbps(np.array([10.0, 1000.0]))
        assert thr[1] > thr[0]
        assert model.is_super_linear

    def test_sub_linear_throughput_shrinks(self):
        model = PowerLawModel(alpha=0.5, beta=0.3, r2=1.0)
        thr = model.throughput_mbps(np.array([10.0, 1000.0]))
        assert thr[1] < thr[0]
        assert not model.is_super_linear

    def test_invalid_alpha_raises(self):
        with pytest.raises(DurationModelError):
            PowerLawModel(alpha=0.0, beta=1.0, r2=1.0)

    def test_nonpositive_inputs_raise(self):
        model = PowerLawModel(alpha=1.0, beta=1.0, r2=1.0)
        with pytest.raises(DurationModelError):
            model.predict_volume_mb(np.array([0.0]))
        with pytest.raises(DurationModelError):
            model.duration_for_volume_s(np.array([-1.0]))

    def test_serialization_round_trip(self):
        model = PowerLawModel(alpha=0.003, beta=1.4, r2=0.87)
        restored = PowerLawModel.from_dict(model.to_dict())
        assert restored.alpha == model.alpha
        assert restored.beta == model.beta
        assert restored.r2 == model.r2

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(DurationModelError):
            PowerLawModel.from_dict({"alpha": 1.0})


class TestFitPowerLaw:
    def test_exact_recovery_without_noise(self):
        model = fit_power_law(synthetic_curve(0.004, 1.3))
        assert model.alpha == pytest.approx(0.004, rel=0.01)
        assert model.beta == pytest.approx(1.3, abs=0.01)
        assert model.r2 == pytest.approx(1.0, abs=1e-6)

    def test_recovery_under_noise(self):
        rng = np.random.default_rng(0)
        model = fit_power_law(synthetic_curve(0.05, 0.6, noise=0.1, rng=rng))
        assert model.beta == pytest.approx(0.6, abs=0.08)
        assert 0.6 < model.r2 <= 1.0

    def test_weights_follow_counts(self):
        # A contaminated sparse bin should barely move the fit.
        means = 0.01 * DURATION_CENTERS**1.2
        counts = np.full(N_DURATION_BINS, 1000.0)
        means[5] *= 100.0
        counts[5] = 1.0
        model = fit_power_law(DurationVolumeCurve(means, counts))
        assert model.beta == pytest.approx(1.2, abs=0.05)

    def test_too_few_bins_raise(self):
        means = np.zeros(N_DURATION_BINS)
        counts = np.zeros(N_DURATION_BINS)
        means[3], counts[3] = 1.0, 10.0
        means[7], counts[7] = 2.0, 10.0
        with pytest.raises(DurationModelError):
            fit_power_law(DurationVolumeCurve(means, counts))

    def test_fits_campaign_service(self, campaign):
        from repro.dataset.aggregation import pooled_duration_volume

        curve = pooled_duration_volume(campaign.for_service("Netflix"))
        model = fit_power_law(curve)
        # Fig 10: video streaming services are super-linear.
        assert model.beta > 1.0
        assert model.r2 > 0.7


class TestFitFamilies:
    def test_power_law_wins_on_power_data(self):
        # Section 5.3's ablation: the power family fits best.
        rng = np.random.default_rng(1)
        curve = synthetic_curve(0.01, 1.4, noise=0.05, rng=rng)
        fits = {f: fit_family(curve, f) for f in FitFamily}
        assert fits[FitFamily.POWER].r2 == max(f.r2 for f in fits.values())

    def test_exponential_family_fits_exponential_data(self):
        means = 0.5 * np.exp(2e-4 * DURATION_CENTERS)
        curve = DurationVolumeCurve(means, np.full(N_DURATION_BINS, 50.0))
        fit = fit_family(curve, FitFamily.EXPONENTIAL)
        assert fit.r2 > 0.99

    def test_polynomial_family_returns_three_coefficients(self):
        curve = synthetic_curve(0.01, 1.0)
        fit = fit_family(curve, FitFamily.POLYNOMIAL)
        assert len(fit.params) == 3
