"""Tests for the complete per-service session-level model (Section 5.4)."""

import numpy as np
import pytest

from repro.core.duration_model import PowerLawModel
from repro.core.service_model import (
    ServiceModelError,
    SessionLevelModel,
    fit_service_model,
)
from repro.core.volume_model import VolumeModel
from repro.core.distributions import LogNormal10
from repro.dataset.aggregation import pooled_duration_volume, pooled_volume_pdf


def toy_model():
    return SessionLevelModel(
        service="Netflix",
        volume=VolumeModel(main=LogNormal10(1.0, 0.4)),
        duration=PowerLawModel(alpha=0.005, beta=1.5, r2=0.9),
    )


class TestSampling:
    def test_sample_sizes(self):
        batch = toy_model().sample_sessions(np.random.default_rng(0), 1000)
        assert len(batch) == 1000
        assert batch.volumes_mb.shape == (1000,)
        assert batch.durations_s.shape == (1000,)

    def test_durations_follow_inverse_power_law(self):
        model = toy_model()
        batch = model.sample_sessions(np.random.default_rng(1), 5000)
        expected = model.duration.duration_for_volume_s(batch.volumes_mb)
        assert np.allclose(batch.durations_s, np.clip(expected, 1.0, None))

    def test_throughput_is_volume_over_duration(self):
        batch = toy_model().sample_sessions(np.random.default_rng(2), 100)
        assert np.allclose(
            batch.throughput_mbps, batch.volumes_mb * 8.0 / batch.durations_s
        )

    def test_durations_at_least_one_second(self):
        batch = toy_model().sample_sessions(np.random.default_rng(3), 10000)
        assert batch.durations_s.min() >= 1.0

    def test_negative_size_raises(self):
        with pytest.raises(ServiceModelError):
            toy_model().sample_sessions(np.random.default_rng(0), -1)

    def test_zero_size_is_empty(self):
        batch = toy_model().sample_sessions(np.random.default_rng(0), 0)
        assert len(batch) == 0


class TestSerialization:
    def test_round_trip(self):
        model = toy_model()
        restored = SessionLevelModel.from_dict(model.to_dict())
        assert restored.service == model.service
        assert restored.volume.main == model.volume.main
        assert restored.duration.alpha == model.duration.alpha

    def test_malformed_payload_raises(self):
        with pytest.raises(ServiceModelError):
            SessionLevelModel.from_dict({"service": "x"})


class TestFitServiceModel:
    def test_fit_from_campaign_statistics(self, campaign):
        sub = campaign.for_service("Deezer")
        model = fit_service_model(
            "Deezer", pooled_volume_pdf(sub), pooled_duration_volume(sub)
        )
        assert model.service == "Deezer"
        assert model.duration.r2 > 0.5

    def test_fitted_model_reproduces_mean_volume(self, campaign):
        sub = campaign.for_service("Facebook")
        pdf = pooled_volume_pdf(sub)
        model = fit_service_model(
            "Facebook", pdf, pooled_duration_volume(sub)
        )
        batch = model.sample_sessions(np.random.default_rng(0), 200000)
        assert batch.volumes_mb.mean() == pytest.approx(pdf.mean_mb(), rel=0.1)

    def test_volume_error_metric_is_small(self, campaign):
        sub = campaign.for_service("Amazon")
        pdf = pooled_volume_pdf(sub)
        model = fit_service_model("Amazon", pdf, pooled_duration_volume(sub))
        assert model.volume_error_against(pdf) < 0.1
