"""Tests for the in-house Levenberg–Marquardt solver (vs scipy.curve_fit)."""

import numpy as np
import pytest
from scipy.optimize import curve_fit

from repro.core.fitting.levenberg_marquardt import (
    FitError,
    fit_curve,
    levenberg_marquardt,
)


def power_law(x, alpha, beta):
    return alpha * x**beta


class TestLevenbergMarquardt:
    def test_exact_linear_system(self):
        # Residuals of a linear model: converges to the least-squares solution.
        x = np.linspace(0, 10, 30)
        y = 3.0 + 2.0 * x

        def residual(p):
            return y - (p[0] + p[1] * x)

        result = levenberg_marquardt(residual, np.array([0.0, 0.0]))
        assert result.converged
        assert result.params == pytest.approx([3.0, 2.0], abs=1e-6)

    def test_nonlinear_power_law(self):
        x = np.geomspace(1, 1000, 40)
        y = 0.05 * x**1.3

        def residual(p):
            return y - p[0] * x ** p[1]

        # LM is local: start within the basin of the optimum.
        result = levenberg_marquardt(residual, np.array([0.1, 1.2]))
        assert result.params[0] == pytest.approx(0.05, rel=1e-3)
        assert result.params[1] == pytest.approx(1.3, rel=1e-3)

    def test_multi_start_rescues_bad_power_law_start(self):
        # From (1, 1) a single LM run falls into the flat alpha<0 basin;
        # fit_curve's deterministic multi-start recovers the optimum.
        x = np.geomspace(1, 1000, 40)
        y = 0.05 * x**1.3
        result = fit_curve(lambda x, a, b: a * x**b, x, y, p0=[1.0, 1.0])
        assert result.params[0] == pytest.approx(0.05, rel=1e-3)
        assert result.params[1] == pytest.approx(1.3, rel=1e-3)

    def test_cost_decreases(self):
        x = np.linspace(1, 5, 20)
        y = np.exp(0.8 * x)

        def residual(p):
            return y - np.exp(p[0] * x)

        start = residual(np.array([0.1]))
        result = levenberg_marquardt(residual, np.array([0.1]))
        assert result.cost < 0.5 * float(start @ start)

    def test_non_finite_initial_residuals_raise(self):
        def residual(p):
            return np.array([np.nan])

        with pytest.raises(FitError):
            levenberg_marquardt(residual, np.array([1.0]))

    def test_matrix_initial_guess_raises(self):
        with pytest.raises(FitError):
            levenberg_marquardt(lambda p: p, np.zeros((2, 2)))


class TestFitCurve:
    def test_matches_scipy_curve_fit_on_power_law(self):
        rng = np.random.default_rng(0)
        x = np.geomspace(1, 500, 50)
        y = 0.02 * x**1.4 * (1 + 0.01 * rng.normal(size=50))
        ours = fit_curve(power_law, x, y, p0=[1.0, 1.0])
        theirs, _ = curve_fit(power_law, x, y, p0=[1.0, 1.0], method="lm")
        assert ours.params == pytest.approx(theirs, rel=1e-4)

    def test_matches_scipy_on_gaussian(self):
        def gauss(x, mu, sigma):
            return np.exp(-0.5 * ((x - mu) / sigma) ** 2)

        x = np.linspace(-3, 5, 100)
        y = gauss(x, 1.2, 0.8)
        ours = fit_curve(gauss, x, y, p0=[0.0, 1.0])
        theirs, _ = curve_fit(gauss, x, y, p0=[0.0, 1.0], method="lm")
        assert abs(ours.params[0]) == pytest.approx(abs(theirs[0]), rel=1e-4)
        assert abs(ours.params[1]) == pytest.approx(abs(theirs[1]), rel=1e-4)

    def test_weights_prioritize_heavy_points(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        y = np.array([1.0, 2.0, 3.0, 100.0])  # outlier at the end

        def line(x, a):
            return a * x

        balanced = fit_curve(line, x, y, p0=[1.0])
        down_weighted = fit_curve(
            line, x, y, p0=[1.0], weights=np.array([1.0, 1.0, 1.0, 1e-6])
        )
        assert down_weighted.params[0] == pytest.approx(1.0, abs=0.05)
        assert balanced.params[0] > 5.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(FitError):
            fit_curve(power_law, np.zeros(3), np.zeros(4), p0=[1.0, 1.0])

    def test_underdetermined_raises(self):
        with pytest.raises(FitError):
            fit_curve(power_law, np.array([1.0]), np.array([1.0]), p0=[1.0, 1.0])

    def test_weight_shape_mismatch_raises(self):
        with pytest.raises(FitError):
            fit_curve(
                power_law,
                np.ones(5),
                np.ones(5),
                p0=[1.0, 1.0],
                weights=np.ones(4),
            )
