"""Randomized robustness tests of the model-fitting pipeline.

The fitting entry points must behave on *any* plausible input — arbitrary
log-normal mixtures, tiny samples, spiky or flat PDFs — never crash, and
always return a normalized, serializable model.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.histogram import LogHistogram
from repro.core.distributions import LogNormal10, LogNormalMixture
from repro.core.duration_model import fit_power_law
from repro.core.service_model import SessionLevelModel
from repro.core.volume_model import fit_volume_model
from repro.dataset.aggregation import DurationVolumeCurve


@st.composite
def mixtures(draw):
    # Bounded so essentially no probability mass leaves the global
    # log-volume grid (components at mu=3, sigma=1 would put substantial
    # mass past 100 GB sessions, where grid clipping legitimately moves
    # the mean).
    n_components = draw(st.integers(min_value=1, max_value=4))
    components, weights = [], []
    for i in range(n_components):
        mu = draw(st.floats(min_value=-1.5, max_value=2.0))
        sigma = draw(st.floats(min_value=0.03, max_value=0.8))
        components.append(LogNormal10(mu, sigma))
        weights.append(draw(st.floats(min_value=0.05, max_value=1.0)))
    return LogNormalMixture.from_unnormalized(components, weights)


@given(
    mixture=mixtures(),
    n=st.integers(min_value=200, max_value=20000),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=30, deadline=None)
def test_property_volume_fit_never_crashes_and_normalizes(mixture, n, seed):
    """Any sampled mixture yields a valid, serializable volume model."""
    rng = np.random.default_rng(seed)
    hist = LogHistogram.from_volumes(mixture.sample(rng, n))
    model = fit_volume_model(hist)
    assert model.as_histogram().total_mass == pytest.approx(1.0, abs=1e-6)
    assert len(model.peaks) <= 3
    restored = type(model).from_dict(model.to_dict())
    assert restored.main.mu == pytest.approx(model.main.mu)


@given(
    alpha=st.floats(min_value=1e-4, max_value=1.0),
    beta=st.floats(min_value=0.1, max_value=1.8),
    noise=st.floats(min_value=0.0, max_value=0.3),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=30, deadline=None)
def test_property_power_law_fit_recovers_any_exponent(alpha, beta, noise, seed):
    """Power-law fitting converges across the paper's whole beta range."""
    rng = np.random.default_rng(seed)
    durations = 10.0 ** rng.uniform(0.3, 4.0, 3000)
    volumes = alpha * durations**beta * 10.0 ** rng.normal(0, noise, 3000)
    curve = DurationVolumeCurve.from_sessions(durations, volumes)
    model = fit_power_law(curve)
    assert model.beta == pytest.approx(beta, abs=0.1 + noise)
    assert model.alpha > 0


@given(
    mixture=mixtures(),
    alpha=st.floats(min_value=1e-3, max_value=0.5),
    beta=st.floats(min_value=0.2, max_value=1.6),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=20, deadline=None)
def test_property_full_model_round_trip(mixture, alpha, beta, seed):
    """Fit on synthetic sessions -> sample -> statistics stay close."""
    from hypothesis import assume

    rng = np.random.default_rng(seed)
    volumes = mixture.sample(rng, 10000)
    durations = np.clip((volumes / alpha) ** (1.0 / beta), 1.0, 86400.0)
    # Skip degenerate parameter combos whose durations pile up on the
    # clipping bounds or inside fewer than 3 duration bins — no duration
    # law is observable there (near-delta mixtures hit this).
    clipped = np.mean((durations <= 1.0) | (durations >= 86400.0))
    assume(clipped < 0.3)
    from repro.dataset.aggregation import _digitize_durations

    assume(np.unique(_digitize_durations(durations)).size >= 3)

    from repro.core.service_model import fit_service_model

    model = fit_service_model(
        "Facebook",
        LogHistogram.from_volumes(volumes),
        DurationVolumeCurve.from_sessions(durations, volumes),
    )
    assert isinstance(model, SessionLevelModel)
    batch = model.sample_sessions(rng, 20000)
    # Mean-calibrated fitting: generated mean volume tracks the input.
    assert batch.volumes_mb.mean() == pytest.approx(
        volumes.mean(), rel=0.25
    )
    assert np.all(batch.durations_s >= 1.0)
