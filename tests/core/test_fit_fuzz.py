"""Randomized robustness tests of the model-fitting pipeline.

The fitting entry points must behave on *any* plausible input — arbitrary
log-normal mixtures, tiny samples, spiky or flat PDFs — never crash, and
always return a normalized, serializable model.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.histogram import LogHistogram
from repro.core.distributions import LogNormal10, LogNormalMixture
from repro.core.duration_model import fit_power_law
from repro.core.service_model import SessionLevelModel
from repro.core.volume_model import fit_volume_model
from repro.dataset.aggregation import DurationVolumeCurve


from repro.core.fitting.gaussian_fit import fit_main_lognormal
from repro.core.fitting.levenberg_marquardt import (
    FitError,
    fit_curve,
    levenberg_marquardt,
)
from repro.core.fitting.savitzky_golay import FilterError, savgol_filter


@st.composite
def mixtures(draw):
    # Bounded so essentially no probability mass leaves the global
    # log-volume grid (components at mu=3, sigma=1 would put substantial
    # mass past 100 GB sessions, where grid clipping legitimately moves
    # the mean).
    n_components = draw(st.integers(min_value=1, max_value=4))
    components, weights = [], []
    for i in range(n_components):
        mu = draw(st.floats(min_value=-1.5, max_value=2.0))
        sigma = draw(st.floats(min_value=0.03, max_value=0.8))
        components.append(LogNormal10(mu, sigma))
        weights.append(draw(st.floats(min_value=0.05, max_value=1.0)))
    return LogNormalMixture.from_unnormalized(components, weights)


@given(
    mixture=mixtures(),
    n=st.integers(min_value=200, max_value=20000),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=30, deadline=None)
def test_property_volume_fit_never_crashes_and_normalizes(mixture, n, seed):
    """Any sampled mixture yields a valid, serializable volume model."""
    rng = np.random.default_rng(seed)
    hist = LogHistogram.from_volumes(mixture.sample(rng, n))
    model = fit_volume_model(hist)
    assert model.as_histogram().total_mass == pytest.approx(1.0, abs=1e-6)
    assert len(model.peaks) <= 3
    restored = type(model).from_dict(model.to_dict())
    assert restored.main.mu == pytest.approx(model.main.mu)


@given(
    alpha=st.floats(min_value=1e-4, max_value=1.0),
    beta=st.floats(min_value=0.1, max_value=1.8),
    noise=st.floats(min_value=0.0, max_value=0.3),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=30, deadline=None)
def test_property_power_law_fit_recovers_any_exponent(alpha, beta, noise, seed):
    """Power-law fitting converges across the paper's whole beta range."""
    rng = np.random.default_rng(seed)
    durations = 10.0 ** rng.uniform(0.3, 4.0, 3000)
    volumes = alpha * durations**beta * 10.0 ** rng.normal(0, noise, 3000)
    curve = DurationVolumeCurve.from_sessions(durations, volumes)
    model = fit_power_law(curve)
    assert model.beta == pytest.approx(beta, abs=0.1 + noise)
    assert model.alpha > 0


@given(
    mixture=mixtures(),
    alpha=st.floats(min_value=1e-3, max_value=0.5),
    beta=st.floats(min_value=0.2, max_value=1.6),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=20, deadline=None)
def test_property_full_model_round_trip(mixture, alpha, beta, seed):
    """Fit on synthetic sessions -> sample -> statistics stay close."""
    from hypothesis import assume

    rng = np.random.default_rng(seed)
    volumes = mixture.sample(rng, 10000)
    durations = np.clip((volumes / alpha) ** (1.0 / beta), 1.0, 86400.0)
    # Skip degenerate parameter combos whose durations pile up on the
    # clipping bounds or inside fewer than 3 duration bins — no duration
    # law is observable there (near-delta mixtures hit this).
    clipped = np.mean((durations <= 1.0) | (durations >= 86400.0))
    assume(clipped < 0.3)
    from repro.dataset.aggregation import _digitize_durations

    assume(np.unique(_digitize_durations(durations)).size >= 3)

    from repro.core.service_model import fit_service_model

    model = fit_service_model(
        "Facebook",
        LogHistogram.from_volumes(volumes),
        DurationVolumeCurve.from_sessions(durations, volumes),
    )
    assert isinstance(model, SessionLevelModel)
    batch = model.sample_sessions(rng, 20000)
    # Mean-calibrated fitting: generated mean volume tracks the input.
    assert batch.volumes_mb.mean() == pytest.approx(
        volumes.mean(), rel=0.25
    )
    assert np.all(batch.durations_s >= 1.0)


def _exp_decay(x, a, b):
    """Module-level test model: ``a * exp(-b x)``."""
    return a * np.exp(-b * x)


class TestLevenbergMarquardtProperties:
    """The in-house LM solver on arbitrary well-posed and degenerate input."""

    @given(
        a=st.floats(min_value=0.5, max_value=20.0),
        b=st.floats(min_value=0.1, max_value=3.0),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=30, deadline=None)
    def test_recovers_exponential_decay_parameters(self, a, b, seed):
        rng = np.random.default_rng(seed)
        x = np.linspace(0.0, 4.0, 60)
        y = _exp_decay(x, a, b) * (1.0 + rng.normal(0, 0.01, x.size))
        result = fit_curve(_exp_decay, x, y, p0=[1.0, 1.0])
        assert np.all(np.isfinite(result.params))
        assert result.params[0] == pytest.approx(a, rel=0.1)
        assert result.params[1] == pytest.approx(b, rel=0.1)

    @given(
        offset=st.floats(min_value=-5.0, max_value=5.0),
        n=st.integers(min_value=2, max_value=50),
    )
    @settings(max_examples=30, deadline=None)
    def test_constant_data_never_yields_non_finite_params(self, offset, n):
        """Flat data is a degenerate fit; it must stay finite, not NaN."""
        x = np.linspace(0.0, 1.0, n)
        y = np.full(n, offset)
        try:
            result = fit_curve(_exp_decay, x, y, p0=[1.0, 1.0])
        except FitError:
            return  # rejecting the degenerate input is equally acceptable
        assert np.all(np.isfinite(result.params))
        assert np.isfinite(result.cost)

    def test_non_finite_initial_residuals_rejected(self):
        with pytest.raises(FitError):
            levenberg_marquardt(
                lambda p: np.array([np.inf, 0.0]), np.array([1.0])
            )

    def test_too_few_points_rejected(self):
        with pytest.raises(FitError):
            fit_curve(_exp_decay, np.array([1.0]), np.array([2.0]), p0=[1, 1])


class TestGaussianFitProperties:
    """fit_main_lognormal on exact, sampled and degenerate densities."""

    @given(
        mu=st.floats(min_value=-1.5, max_value=2.0),
        sigma=st.floats(min_value=0.1, max_value=1.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_recovers_parameters_of_exact_density(self, mu, sigma):
        exact = LogHistogram.from_log_density(LogNormal10(mu, sigma).pdf_log10)
        fitted = fit_main_lognormal(exact)
        assert fitted.mu == pytest.approx(mu, abs=0.05)
        assert fitted.sigma == pytest.approx(sigma, abs=0.05)

    @given(
        mu=st.floats(min_value=-1.0, max_value=1.5),
        sigma=st.floats(min_value=0.1, max_value=0.8),
        n=st.integers(min_value=500, max_value=20000),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=30, deadline=None)
    def test_recovers_parameters_from_samples(self, mu, sigma, n, seed):
        rng = np.random.default_rng(seed)
        volumes = 10.0 ** rng.normal(mu, sigma, n)
        fitted = fit_main_lognormal(LogHistogram.from_volumes(volumes))
        assert fitted.mu == pytest.approx(mu, abs=0.15)
        assert fitted.sigma == pytest.approx(sigma, abs=0.15)

    @given(bin_index=st.integers(min_value=0, max_value=359))
    @settings(max_examples=20, deadline=None)
    def test_single_spike_histogram_stays_finite(self, bin_index):
        """A delta-like PDF must yield a finite, valid log-normal."""
        density = np.zeros(360)
        density[bin_index] = 1.0
        fitted = fit_main_lognormal(LogHistogram(density).normalized())
        assert np.isfinite(fitted.mu)
        assert np.isfinite(fitted.sigma) and fitted.sigma > 0

    def test_empty_histogram_rejected(self):
        from repro.core.fitting.levenberg_marquardt import FitError as LMError

        with pytest.raises(LMError):
            fit_main_lognormal(LogHistogram.empty())


class TestSavitzkyGolayProperties:
    """The from-scratch filter on polynomials and degenerate windows."""

    @given(
        degree=st.integers(min_value=0, max_value=5),
        window=st.sampled_from([5, 7, 9, 13, 17, 21]),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=30, deadline=None)
    def test_reproduces_polynomials_exactly_including_edges(
        self, degree, window, seed
    ):
        """A poly_order >= degree filter is exact everywhere, edges too."""
        from hypothesis import assume

        poly_order = min(degree, window - 1)
        assume(poly_order >= degree)
        rng = np.random.default_rng(seed)
        coeffs = rng.uniform(-2.0, 2.0, degree + 1)
        x = np.arange(50, dtype=float)
        y = np.polyval(coeffs, x / 10.0)
        smoothed = savgol_filter(y, window, poly_order)
        np.testing.assert_allclose(smoothed, y, rtol=1e-7, atol=1e-7)

    @given(
        slope=st.floats(min_value=-3.0, max_value=3.0),
        window=st.sampled_from([5, 9, 15, 21]),
    )
    @settings(max_examples=30, deadline=None)
    def test_first_derivative_of_a_line_is_its_slope(self, slope, window):
        y = slope * np.arange(40, dtype=float)
        deriv = savgol_filter(y, window, poly_order=2, deriv=1)
        np.testing.assert_allclose(deriv, slope, rtol=1e-7, atol=1e-7)

    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6),
            min_size=21,
            max_size=60,
        ),
        window=st.sampled_from([5, 7, 11, 21]),
        poly_order=st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=30, deadline=None)
    def test_finite_input_never_yields_non_finite_output(
        self, values, window, poly_order
    ):
        from hypothesis import assume

        assume(poly_order < window)
        out = savgol_filter(np.array(values), window, poly_order)
        assert np.all(np.isfinite(out))

    def test_invalid_parameters_rejected(self):
        y = np.zeros(30)
        with pytest.raises(FilterError):
            savgol_filter(y, 4, 2)  # even window
        with pytest.raises(FilterError):
            savgol_filter(y, 5, 5)  # poly_order >= window
        with pytest.raises(FilterError):
            savgol_filter(y, 5, 2, deriv=3)  # deriv > poly_order
        with pytest.raises(FilterError):
            savgol_filter(np.zeros(3), 5, 2)  # input shorter than window
