"""Tests for the elementary distributions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distributions import (
    DistributionError,
    Gaussian,
    LogNormal10,
    LogNormalMixture,
    Pareto,
)


class TestGaussian:
    def test_pdf_peaks_at_mean(self):
        g = Gaussian(2.0, 0.5)
        assert g.pdf(2.0) > g.pdf(1.0)
        assert g.pdf(2.0) > g.pdf(3.0)

    def test_pdf_integrates_to_one(self):
        g = Gaussian(0.0, 1.0)
        x = np.linspace(-8, 8, 4001)
        assert np.trapezoid(g.pdf(x), x) == pytest.approx(1.0, abs=1e-6)

    def test_cdf_at_mean_is_half(self):
        assert Gaussian(3.0, 2.0).cdf(3.0) == pytest.approx(0.5)

    def test_ppf_inverts_cdf(self):
        g = Gaussian(1.0, 0.7)
        for q in (0.05, 0.5, 0.95):
            assert g.cdf(g.ppf(q)) == pytest.approx(q)

    def test_ppf_rejects_boundary(self):
        with pytest.raises(DistributionError):
            Gaussian(0.0, 1.0).ppf(0.0)

    def test_sampling_moments(self):
        samples = Gaussian(5.0, 2.0).sample(np.random.default_rng(0), 50000)
        assert samples.mean() == pytest.approx(5.0, abs=0.05)
        assert samples.std() == pytest.approx(2.0, abs=0.05)

    def test_invalid_sigma_raises(self):
        with pytest.raises(DistributionError):
            Gaussian(0.0, 0.0)
        with pytest.raises(DistributionError):
            Gaussian(0.0, -1.0)


class TestPareto:
    def test_pdf_zero_below_scale(self):
        p = Pareto(1.765, 2.0)
        assert p.pdf(np.array([1.0, 1.9]))[0] == 0.0

    def test_pdf_integrates_to_one(self):
        p = Pareto(1.765, 1.0)
        x = np.geomspace(1.0, 1e6, 200001)
        assert np.trapezoid(p.pdf(x), x) == pytest.approx(1.0, abs=1e-3)

    def test_cdf_at_scale_is_zero(self):
        p = Pareto(2.0, 3.0)
        assert p.cdf(3.0) == pytest.approx(0.0)

    def test_ppf_inverts_cdf(self):
        p = Pareto(1.765, 0.5)
        for q in (0.0, 0.3, 0.9):
            assert p.cdf(p.ppf(q)) == pytest.approx(q)

    def test_mean_formula(self):
        p = Pareto(3.0, 2.0)
        assert p.mean() == pytest.approx(3.0)

    def test_mean_infinite_for_heavy_shape(self):
        assert Pareto(0.9, 1.0).mean() == float("inf")

    def test_sampling_respects_scale(self):
        samples = Pareto(1.765, 4.0).sample(np.random.default_rng(0), 1000)
        assert samples.min() >= 4.0

    def test_sampling_mean_for_finite_case(self):
        p = Pareto(3.0, 1.0)
        samples = p.sample(np.random.default_rng(1), 200000)
        assert samples.mean() == pytest.approx(p.mean(), rel=0.05)

    def test_invalid_parameters_raise(self):
        with pytest.raises(DistributionError):
            Pareto(0.0, 1.0)
        with pytest.raises(DistributionError):
            Pareto(1.0, 0.0)


class TestLogNormal10:
    def test_pdf_log10_is_eq3_gaussian(self):
        ln = LogNormal10(0.5, 0.3)
        g = Gaussian(0.5, 0.3)
        u = np.linspace(-1, 2, 50)
        assert np.allclose(ln.pdf_log10(u), g.pdf(u))

    def test_pdf_x_includes_jacobian(self):
        ln = LogNormal10(0.0, 0.5)
        x = np.array([1.0])
        expected = ln.pdf_log10(0.0) / (1.0 * np.log(10))
        assert ln.pdf_x(x)[0] == pytest.approx(float(expected))

    def test_pdf_x_integrates_to_one(self):
        ln = LogNormal10(0.2, 0.4)
        x = np.geomspace(1e-4, 1e4, 100001)
        assert np.trapezoid(ln.pdf_x(x), x) == pytest.approx(1.0, abs=1e-4)

    def test_median(self):
        assert LogNormal10(1.3, 0.4).median_mb() == pytest.approx(10**1.3)

    def test_cdf_at_median_is_half(self):
        ln = LogNormal10(0.7, 0.6)
        assert ln.cdf_x(ln.median_mb()) == pytest.approx(0.5)

    def test_ppf_inverts_cdf(self):
        ln = LogNormal10(-0.5, 0.8)
        for q in (0.1, 0.5, 0.9):
            assert ln.cdf_x(ln.ppf_x(q)) == pytest.approx(q)

    def test_sampling_log_moments(self):
        samples = LogNormal10(0.8, 0.25).sample(np.random.default_rng(0), 50000)
        assert np.log10(samples).mean() == pytest.approx(0.8, abs=0.01)
        assert np.log10(samples).std() == pytest.approx(0.25, abs=0.01)

    def test_pdf_x_rejects_nonpositive(self):
        with pytest.raises(DistributionError):
            LogNormal10(0.0, 1.0).pdf_x(np.array([0.0]))


class TestLogNormalMixture:
    def test_weights_must_sum_to_one(self):
        with pytest.raises(DistributionError):
            LogNormalMixture((LogNormal10(0, 1),), (0.5,))

    def test_from_unnormalized_normalizes(self):
        mix = LogNormalMixture.from_unnormalized(
            [LogNormal10(0, 1), LogNormal10(1, 1)], [1.0, 3.0]
        )
        assert mix.weights == (0.25, 0.75)

    def test_pdf_is_weighted_sum(self):
        a, b = LogNormal10(-1.0, 0.2), LogNormal10(1.0, 0.2)
        mix = LogNormalMixture((a, b), (0.3, 0.7))
        u = np.array([0.0, 1.0])
        expected = 0.3 * a.pdf_log10(u) + 0.7 * b.pdf_log10(u)
        assert np.allclose(mix.pdf_log10(u), expected)

    def test_pdf_integrates_to_one(self):
        mix = LogNormalMixture.from_unnormalized(
            [LogNormal10(0.0, 0.5), LogNormal10(2.0, 0.1)], [1.0, 0.1]
        )
        u = np.linspace(-4, 5, 10001)
        assert np.trapezoid(mix.pdf_log10(u), u) == pytest.approx(1.0, abs=1e-4)

    def test_sampling_respects_weights(self):
        mix = LogNormalMixture(
            (LogNormal10(-2.0, 0.05), LogNormal10(2.0, 0.05)), (0.25, 0.75)
        )
        samples = mix.sample(np.random.default_rng(0), 20000)
        high_fraction = (np.log10(samples) > 0).mean()
        assert high_fraction == pytest.approx(0.75, abs=0.02)

    def test_empty_mixture_raises(self):
        with pytest.raises(DistributionError):
            LogNormalMixture((), ())

    def test_negative_weight_raises(self):
        with pytest.raises(DistributionError):
            LogNormalMixture.from_unnormalized(
                [LogNormal10(0, 1), LogNormal10(1, 1)], [1.0, -0.5]
            )


@given(
    mu=st.floats(min_value=-3, max_value=3),
    sigma=st.floats(min_value=0.05, max_value=2.0),
    q=st.floats(min_value=0.01, max_value=0.99),
)
@settings(max_examples=50, deadline=None)
def test_property_gaussian_ppf_cdf_roundtrip(mu, sigma, q):
    """ppf and cdf are exact inverses over the open unit interval."""
    g = Gaussian(mu, sigma)
    assert g.cdf(g.ppf(q)) == pytest.approx(q, abs=1e-9)


@given(
    shape=st.floats(min_value=0.5, max_value=5.0),
    scale=st.floats(min_value=0.01, max_value=100.0),
    q=st.floats(min_value=0.0, max_value=0.99),
)
@settings(max_examples=50, deadline=None)
def test_property_pareto_ppf_cdf_roundtrip(shape, scale, q):
    """Pareto quantiles invert the CDF and respect the scale floor."""
    p = Pareto(shape, scale)
    x = p.ppf(q)
    assert x >= scale
    assert p.cdf(x) == pytest.approx(q, abs=1e-9)
