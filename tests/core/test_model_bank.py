"""Tests for the model bank (fit, sample, JSON round-trip)."""

import numpy as np
import pytest

from repro.core.model_bank import ModelBank, ModelBankError
from repro.core.service_mix import ServiceMix
from repro.dataset.records import SERVICE_NAMES


class TestFitFromTable:
    def test_fits_all_major_services(self, bank):
        for name in ("Facebook", "Instagram", "SnapChat", "Netflix"):
            assert name in bank

    def test_skips_undersampled_services(self, campaign):
        sparse = ModelBank.fit_from_table(campaign, min_sessions=10**9)
        assert len(sparse) == 0

    def test_services_listed_in_catalog_order(self, bank):
        services = bank.services()
        order = {name: i for i, name in enumerate(SERVICE_NAMES)}
        assert services == sorted(services, key=order.__getitem__)

    def test_restricting_services_argument(self, campaign):
        small = ModelBank.fit_from_table(
            campaign, services=["Facebook"], min_sessions=100
        )
        assert small.services() == ["Facebook"]


class TestAccess:
    def test_get_unknown_raises(self, bank):
        with pytest.raises(ModelBankError):
            bank.get("Not A Service")

    def test_contains(self, bank):
        assert "Facebook" in bank
        assert "Not A Service" not in bank

    def test_mismatched_key_raises(self, bank):
        model = bank.get("Facebook")
        with pytest.raises(ModelBankError):
            ModelBank({"Netflix": model})


class TestMixedSampling:
    def test_sampled_services_follow_mix(self, bank):
        mix = ServiceMix(
            {"Facebook": 0.8, "Netflix": 0.2}
        )
        idx, volumes, durations = bank.sample_mixed_sessions(
            mix, np.random.default_rng(0), 10000
        )
        fb = SERVICE_NAMES.index("Facebook")
        assert (idx == fb).mean() == pytest.approx(0.8, abs=0.02)
        assert volumes.shape == durations.shape == (10000,)
        assert np.all(volumes > 0)
        assert np.all(durations >= 1.0)

    def test_mix_with_unmodelled_service_raises(self, campaign):
        tiny_bank = ModelBank.fit_from_table(
            campaign, services=["Facebook"], min_sessions=100
        )
        mix = ServiceMix({"Facebook": 0.5, "Netflix": 0.5})
        with pytest.raises(ModelBankError):
            tiny_bank.sample_mixed_sessions(mix, np.random.default_rng(0), 100)


class TestJson:
    def test_round_trip_preserves_parameters(self, bank):
        restored = ModelBank.from_json(bank.to_json())
        assert set(restored.services()) == set(bank.services())
        for name in bank.services():
            assert restored.get(name).duration.beta == pytest.approx(
                bank.get(name).duration.beta
            )
            assert restored.get(name).volume.main.mu == pytest.approx(
                bank.get(name).volume.main.mu
            )

    def test_invalid_json_raises(self):
        with pytest.raises(ModelBankError):
            ModelBank.from_json("{not json")

    def test_non_object_json_raises(self):
        with pytest.raises(ModelBankError):
            ModelBank.from_json("[1, 2]")

    def test_save_load_file(self, bank, tmp_path):
        path = tmp_path / "bank.json"
        bank.save(path)
        assert set(ModelBank.load(path).services()) == set(bank.services())
