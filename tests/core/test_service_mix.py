"""Tests for the per-service arrival breakdown."""

import numpy as np
import pytest

from repro.core.service_mix import ServiceMix, ServiceMixError
from repro.dataset.records import SERVICE_NAMES
from repro.dataset.services import get_service


class TestConstruction:
    def test_probabilities_normalized(self):
        mix = ServiceMix({"Facebook": 3.0, "Netflix": 1.0})
        assert mix.probability("Facebook") == pytest.approx(0.75)
        assert mix.probability("Netflix") == pytest.approx(0.25)

    def test_unknown_service_raises(self):
        with pytest.raises(ServiceMixError):
            ServiceMix({"NotAService": 1.0})

    def test_negative_probability_raises(self):
        with pytest.raises(ServiceMixError):
            ServiceMix({"Facebook": -0.1})

    def test_all_zero_raises(self):
        with pytest.raises(ServiceMixError):
            ServiceMix({"Facebook": 0.0})

    def test_vector_covers_catalog(self):
        mix = ServiceMix.from_table1()
        assert mix.probabilities().shape == (len(SERVICE_NAMES),)
        assert mix.probabilities().sum() == pytest.approx(1.0)


class TestFromTable1:
    def test_facebook_share_matches_table(self):
        mix = ServiceMix.from_table1()
        # Table 1: Facebook ~36.5 % of sessions (renormalized).
        assert mix.probability("Facebook") == pytest.approx(0.365, abs=0.01)

    def test_ordering_follows_table(self):
        mix = ServiceMix.from_table1()
        assert mix.probability("Facebook") > mix.probability("Instagram")
        assert mix.probability("Instagram") > mix.probability("Netflix")


class TestFromMeasurements:
    def test_recovers_empirical_shares(self, campaign):
        mix = ServiceMix.from_measurements(campaign)
        counts = np.bincount(campaign.service_idx, minlength=len(SERVICE_NAMES))
        empirical = counts / counts.sum()
        for i, name in enumerate(SERVICE_NAMES):
            assert mix.probability(name) == pytest.approx(float(empirical[i]))

    def test_empty_table_raises(self):
        from repro.dataset.records import SessionTable

        with pytest.raises(ServiceMixError):
            ServiceMix.from_measurements(SessionTable.empty())


class TestRestriction:
    def test_restricted_renormalizes(self):
        mix = ServiceMix.from_table1().restricted_to(["Facebook", "Netflix"])
        assert mix.probability("Facebook") + mix.probability("Netflix") == pytest.approx(1.0)
        assert mix.probability("Instagram") == 0.0

    def test_uniform_over(self):
        mix = ServiceMix.uniform_over(["Amazon", "Waze", "Uber"])
        for name in ("Amazon", "Waze", "Uber"):
            assert mix.probability(name) == pytest.approx(1 / 3)

    def test_uniform_over_empty_raises(self):
        with pytest.raises(ServiceMixError):
            ServiceMix.uniform_over([])


class TestSampling:
    def test_sampling_matches_probabilities(self):
        mix = ServiceMix({"Facebook": 0.7, "Netflix": 0.3})
        idx = mix.sample(np.random.default_rng(0), 20000)
        names = [SERVICE_NAMES[i] for i in idx]
        assert names.count("Facebook") / 20000 == pytest.approx(0.7, abs=0.02)

    def test_sample_names(self):
        mix = ServiceMix({"Waze": 1.0})
        assert mix.sample_names(np.random.default_rng(0), 5) == ["Waze"] * 5

    def test_probability_of_unknown_raises(self):
        with pytest.raises(ServiceMixError):
            ServiceMix.from_table1().probability("Nope")


class TestCatalogConsistency:
    def test_category_shares_match_paper_aggregation(self):
        # Section 6.1.1: aggregating Table 1 over IW/CS/MS gives bm a's
        # shares (IW 49.30, CS 48.46, MS 2.24) up to rounding.
        from repro.dataset.services import category_session_shares, LiteratureCategory

        shares = category_session_shares()
        assert shares[LiteratureCategory.INTERACTIVE_WEB] == pytest.approx(0.493, abs=0.01)
        assert shares[LiteratureCategory.CASUAL_STREAMING] == pytest.approx(0.485, abs=0.01)
        assert shares[LiteratureCategory.MOVIE_STREAMING] == pytest.approx(0.022, abs=0.005)

    def test_every_service_has_category(self):
        for name in SERVICE_NAMES:
            assert get_service(name).category is not None
