"""Tests for the BS-level aggregate comparator model."""

import numpy as np
import pytest

from repro.core.bs_level import (
    BsLevelError,
    BsLevelModel,
    aggregate_accuracy,
    bs_minute_traffic,
    fit_bs_level_model,
)
from repro.dataset.circadian import MINUTES_PER_DAY, peak_minute_mask


def synthetic_series(n_days=2, day_level=100.0, night_level=5.0, seed=0):
    rng = np.random.default_rng(seed)
    mask = np.tile(peak_minute_mask(), n_days)
    series = np.empty(n_days * MINUTES_PER_DAY)
    series[mask] = day_level * 10 ** rng.normal(0, 0.1, mask.sum())
    series[~mask] = night_level * 10 ** rng.normal(0, 0.2, (~mask).sum())
    return series


class TestBsMinuteTraffic:
    def test_volume_conserved(self, campaign):
        from tests.conftest import CAMPAIGN_DAYS

        series = bs_minute_traffic(campaign, 9, CAMPAIGN_DAYS)
        sub = campaign.for_bs_ids([9])
        assert series.sum() <= sub.total_volume_mb() * (1 + 1e-6)
        assert series.sum() > 0.85 * sub.total_volume_mb()

    def test_circadian_shape(self, campaign):
        from tests.conftest import CAMPAIGN_DAYS

        series = bs_minute_traffic(campaign, 9, CAMPAIGN_DAYS)
        mask = np.tile(peak_minute_mask(), CAMPAIGN_DAYS)
        assert series[mask].mean() > 2 * series[~mask].mean()


class TestFitBsLevelModel:
    def test_round_trip_recovery(self):
        series = synthetic_series()
        model = fit_bs_level_model(series)
        assert 10**model.day_mu == pytest.approx(100.0, rel=0.1)
        assert 10**model.night_mu == pytest.approx(5.0, rel=0.2)

    def test_partial_day_rejected(self):
        with pytest.raises(BsLevelError):
            fit_bs_level_model(np.ones(1000))

    def test_negative_traffic_rejected(self):
        series = -np.ones(MINUTES_PER_DAY)
        with pytest.raises(BsLevelError):
            fit_bs_level_model(series)

    def test_zero_minutes_floored(self):
        series = np.zeros(MINUTES_PER_DAY)
        series[peak_minute_mask()] = 10.0
        model = fit_bs_level_model(series)
        assert model.night_mu == pytest.approx(-3.0)


class TestBsLevelModel:
    def test_sampled_day_has_circadian_structure(self):
        model = BsLevelModel(2.0, 0.1, 0.5, 0.2)
        day = model.sample_day(np.random.default_rng(1))
        mask = peak_minute_mask()
        assert day[mask].mean() > 5 * day[~mask].mean()

    def test_campaign_length(self):
        model = BsLevelModel(2.0, 0.1, 0.5, 0.2)
        series = model.sample_campaign(3, np.random.default_rng(2))
        assert series.size == 3 * MINUTES_PER_DAY

    def test_invalid_days_rejected(self):
        model = BsLevelModel(2.0, 0.1, 0.5, 0.2)
        with pytest.raises(BsLevelError):
            model.sample_campaign(0, np.random.default_rng(0))

    def test_fit_sample_round_trip_accuracy(self):
        series = synthetic_series(n_days=4)
        model = fit_bs_level_model(series)
        synthetic = model.sample_campaign(4, np.random.default_rng(3))
        errors = aggregate_accuracy(series, synthetic)
        assert errors["mean"] < 0.1
        assert errors["day_night_ratio"] < 0.2


class TestAggregateAccuracy:
    def test_identical_series_zero_error(self):
        series = synthetic_series()
        errors = aggregate_accuracy(series, series)
        assert all(v == 0.0 for v in errors.values())

    def test_scaled_series_mean_error(self):
        series = synthetic_series()
        errors = aggregate_accuracy(series, series * 2.0)
        assert errors["mean"] == pytest.approx(1.0)
        assert errors["day_night_ratio"] == pytest.approx(0.0, abs=1e-9)

    def test_partial_days_rejected(self):
        with pytest.raises(BsLevelError):
            aggregate_accuracy(np.ones(1000), np.ones(1000))
