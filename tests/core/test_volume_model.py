"""Tests for the log-normal mixture volume model (Section 5.2)."""

import numpy as np
import pytest

from repro.analysis.histogram import BIN_WIDTH, LOG_CENTERS, LogHistogram
from repro.core.distributions import LogNormal10, LogNormalMixture
from repro.core.residuals import ResidualPeak
from repro.core.volume_model import (
    VolumeModel,
    VolumeModelError,
    decompose_volume_pdf,
    fit_volume_model,
)


def synthetic_service_pdf(rng, n=200000):
    """Samples from a known mixture: main LogN(0.8, 0.5) + peak at 40 MB."""
    mixture = LogNormalMixture.from_unnormalized(
        [LogNormal10(0.8, 0.5), LogNormal10(np.log10(40.0), 0.06)],
        [1.0, 0.10],
    )
    return LogHistogram.from_volumes(mixture.sample(rng, n))


class TestVolumeModel:
    def test_pdf_is_normalized(self):
        model = VolumeModel(
            main=LogNormal10(0.5, 0.4),
            peaks=(ResidualPeak(0.1, 1.5, 0.05, 1.4, 1.6),),
        )
        u = np.linspace(-4, 5, 20001)
        assert np.trapezoid(model.pdf_log10(u), u) == pytest.approx(1.0, abs=1e-3)

    def test_eq5_normalization_factor(self):
        main = LogNormal10(0.0, 0.3)
        peak = ResidualPeak(0.25, 2.0, 0.05, 1.9, 2.1)
        model = VolumeModel(main=main, peaks=(peak,))
        u = np.array([0.0])
        expected = (main.pdf_log10(u) + peak.pdf_log10(u)) / 1.25
        assert model.pdf_log10(u)[0] == pytest.approx(float(expected[0]))

    def test_as_mixture_round_trips_density(self):
        model = VolumeModel(
            main=LogNormal10(0.5, 0.4),
            peaks=(ResidualPeak(0.1, 1.5, 0.05, 1.4, 1.6),),
        )
        u = np.linspace(-2, 3, 100)
        assert np.allclose(model.as_mixture().pdf_log10(u), model.pdf_log10(u))

    def test_sampling_matches_pdf_moments(self):
        model = VolumeModel(main=LogNormal10(0.3, 0.4))
        samples = model.sample_volumes_mb(np.random.default_rng(0), 50000)
        assert np.log10(samples).mean() == pytest.approx(0.3, abs=0.02)

    def test_error_against_self_is_tiny(self):
        model = VolumeModel(main=LogNormal10(0.5, 0.5))
        assert model.error_against(model.as_histogram()) < 1e-9

    def test_serialization_round_trip(self):
        model = VolumeModel(
            main=LogNormal10(0.5, 0.4),
            peaks=(
                ResidualPeak(0.1, 1.5, 0.05, 1.4, 1.6),
                ResidualPeak(0.02, 2.3, 0.08, 2.2, 2.4),
            ),
        )
        restored = VolumeModel.from_dict(model.to_dict())
        assert restored.main == model.main
        assert restored.peaks == model.peaks

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(VolumeModelError):
            VolumeModel.from_dict({"nope": 1})


class TestFitVolumeModel:
    def test_recovers_main_component(self):
        hist = synthetic_service_pdf(np.random.default_rng(0))
        model = fit_volume_model(hist)
        assert model.main.mu == pytest.approx(0.8, abs=0.06)
        assert model.main.sigma == pytest.approx(0.5, abs=0.06)

    def test_recovers_characteristic_peak(self):
        hist = synthetic_service_pdf(np.random.default_rng(1))
        model = fit_volume_model(hist)
        assert len(model.peaks) >= 1
        strongest = max(model.peaks, key=lambda p: p.weight)
        assert 10**strongest.mu == pytest.approx(40.0, rel=0.1)

    def test_model_error_much_below_shape_scale(self):
        # Section 5.4: model EMD is an order of magnitude below typical
        # inter-service distances (which are O(0.1..1) decades).
        hist = synthetic_service_pdf(np.random.default_rng(2))
        model = fit_volume_model(hist)
        assert model.error_against(hist) < 0.05

    def test_mean_calibration_matches_measured_mean(self):
        hist = synthetic_service_pdf(np.random.default_rng(3))
        model = fit_volume_model(hist, calibration="mean")
        assert model.as_histogram().mean_mb() == pytest.approx(
            hist.mean_mb(), rel=0.02
        )

    def test_quantile_calibration_matches_measured_quantile(self):
        hist = synthetic_service_pdf(np.random.default_rng(4))
        model = fit_volume_model(
            hist, calibration="quantile", calibration_quantile=0.9
        )
        assert np.log10(model.as_histogram().quantile_mb(0.9)) == pytest.approx(
            np.log10(hist.quantile_mb(0.9)), abs=2 * BIN_WIDTH
        )

    def test_unknown_calibration_raises(self):
        hist = synthetic_service_pdf(np.random.default_rng(5), n=20000)
        with pytest.raises(VolumeModelError):
            fit_volume_model(hist, calibration="bogus")

    def test_pure_lognormal_yields_no_peaks(self):
        rng = np.random.default_rng(6)
        hist = LogHistogram.from_volumes(10.0 ** rng.normal(0.5, 0.5, 200000))
        model = fit_volume_model(hist)
        assert sum(p.weight for p in model.peaks) < 0.02

    def test_max_peaks_respected(self):
        hist = synthetic_service_pdf(np.random.default_rng(7))
        model = fit_volume_model(hist, max_peaks=1)
        assert len(model.peaks) <= 1


class TestDecomposition:
    def test_trace_exposes_all_steps(self):
        hist = synthetic_service_pdf(np.random.default_rng(8))
        trace = decompose_volume_pdf(hist)
        assert trace.measured.total_mass == pytest.approx(1.0)
        assert trace.residual.shape == LOG_CENTERS.shape
        assert np.all(trace.residual >= 0)
        assert trace.model.main == trace.main

    def test_refinement_tightens_main_sigma(self):
        # Without refinement the 40 MB peak broadens the main component.
        hist = synthetic_service_pdf(np.random.default_rng(9))
        raw = decompose_volume_pdf(hist, n_refinements=0, calibration="none")
        refined = decompose_volume_pdf(hist, n_refinements=1, calibration="none")
        assert refined.main.sigma <= raw.main.sigma + 1e-9
