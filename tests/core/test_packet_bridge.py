"""Tests for the session → packet-schedule bridge."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.packet_bridge import (
    MTU_BYTES,
    PacketBridgeError,
    PacketSchedule,
    packetize_service_session,
    packetize_session,
)
from repro.dataset.services import BehaviourClass


class TestPacketSchedule:
    def test_misaligned_arrays_rejected(self):
        with pytest.raises(PacketBridgeError):
            PacketSchedule(np.zeros(2), np.zeros(3))

    def test_burst_count_on_two_separated_trains(self):
        schedule = PacketSchedule(
            timestamps_s=np.array([0.0, 0.001, 5.0, 5.001]),
            sizes_bytes=np.array([1500, 1500, 1500, 1500]),
        )
        assert schedule.burst_count() == 2

    def test_empty_schedule_has_zero_bursts(self):
        schedule = PacketSchedule(np.array([]), np.array([]))
        assert schedule.burst_count() == 0


class TestPacketizeSession:
    def test_volume_conserved_exactly_streaming(self):
        schedule = packetize_session(
            5.0, 60.0, BehaviourClass.STREAMING, np.random.default_rng(0)
        )
        assert schedule.total_bytes == 5_000_000

    def test_volume_conserved_exactly_messaging(self):
        schedule = packetize_session(
            0.731, 45.0, BehaviourClass.MESSAGING, np.random.default_rng(1)
        )
        assert schedule.total_bytes == 731_000

    def test_timestamps_within_session(self):
        schedule = packetize_session(
            2.0, 30.0, BehaviourClass.STREAMING, np.random.default_rng(2)
        )
        assert schedule.timestamps_s.min() >= 0.0
        assert schedule.timestamps_s.max() <= 30.0 + 1.0  # last train drains

    def test_timestamps_sorted(self):
        schedule = packetize_session(
            1.0, 120.0, BehaviourClass.MESSAGING, np.random.default_rng(3)
        )
        assert np.all(np.diff(schedule.timestamps_s) >= 0)

    def test_packet_sizes_bounded_by_mtu(self):
        schedule = packetize_session(
            3.0, 60.0, BehaviourClass.STREAMING, np.random.default_rng(4)
        )
        assert schedule.sizes_bytes.max() <= MTU_BYTES
        assert schedule.sizes_bytes.min() > 0

    def test_streaming_is_periodic(self):
        # One chunk every 4 s over 40 s -> 10 bursts.
        schedule = packetize_session(
            10.0, 40.0, BehaviourClass.STREAMING, np.random.default_rng(5)
        )
        assert schedule.burst_count(gap_threshold_s=1.0) == 10

    def test_messaging_burst_count_scales_with_duration(self):
        rng = np.random.default_rng(6)
        short = packetize_session(1.0, 30.0, BehaviourClass.MESSAGING, rng)
        long = packetize_session(1.0, 600.0, BehaviourClass.MESSAGING, rng)
        assert long.burst_count() > short.burst_count()

    def test_tiny_volume_single_packet(self):
        schedule = packetize_session(
            1e-6, 10.0, BehaviourClass.MESSAGING, np.random.default_rng(7)
        )
        assert len(schedule) == 1
        assert schedule.total_bytes == 1

    def test_invalid_inputs_rejected(self):
        rng = np.random.default_rng(8)
        with pytest.raises(PacketBridgeError):
            packetize_session(0.0, 10.0, BehaviourClass.STREAMING, rng)
        with pytest.raises(PacketBridgeError):
            packetize_session(1.0, 0.0, BehaviourClass.STREAMING, rng)
        with pytest.raises(PacketBridgeError):
            packetize_session(
                1.0, 10.0, BehaviourClass.STREAMING, rng, link_rate_mbps=0.0
            )

    def test_service_dispatch_uses_catalog_class(self):
        rng = np.random.default_rng(9)
        netflix = packetize_service_session("Netflix", 20.0, 120.0, rng)
        # Streaming cadence: 120 s / 4 s = 30 periodic bursts.
        assert netflix.burst_count(gap_threshold_s=1.0) == 30


class TestComposition:
    def test_bridge_preserves_session_level_statistics(self, bank):
        # Packetizing model-generated sessions must leave the session-level
        # totals untouched (the composition contract of Section 1).
        rng = np.random.default_rng(10)
        model = bank.get("Facebook")
        batch = model.sample_sessions(rng, 50)
        for volume, duration in zip(batch.volumes_mb[:10], batch.durations_s[:10]):
            schedule = packetize_service_session(
                "Facebook", float(volume), float(duration), rng
            )
            assert schedule.total_bytes == pytest.approx(
                volume * 1e6, abs=1.0
            )


@given(
    volume=st.floats(min_value=1e-4, max_value=100.0),
    duration=st.floats(min_value=1.0, max_value=3600.0),
    behaviour=st.sampled_from(list(BehaviourClass)),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=40, deadline=None)
def test_property_packetization_invariants(volume, duration, behaviour, seed):
    """Exact volume conservation and valid packet sizes for any session."""
    rng = np.random.default_rng(seed)
    schedule = packetize_session(volume, duration, behaviour, rng)
    assert schedule.total_bytes == max(int(round(volume * 1e6)), 1)
    assert schedule.sizes_bytes.min() > 0
    assert schedule.sizes_bytes.max() <= MTU_BYTES
    assert np.all(np.diff(schedule.timestamps_s) >= 0)
