"""Tests for the model-driven traffic generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.arrivals import ArrivalModel
from repro.core.generator import (
    GeneratorError,
    TrafficGenerator,
    generate_campaign_reference,
    unit_rng,
    unit_seed,
)
from repro.core.service_mix import ServiceMix
from repro.dataset.circadian import peak_minute_mask
from repro.dataset.records import SERVICE_NAMES


@pytest.fixture(scope="module")
def generator(bank):
    arrival = ArrivalModel(peak_mu=10.0, peak_sigma=1.0, night_scale=1.2)
    mix = ServiceMix.from_table1().restricted_to(bank.services())
    return TrafficGenerator({0: arrival, 1: arrival}, mix, bank)


class TestConstruction:
    def test_requires_arrival_models(self, bank):
        mix = ServiceMix.from_table1().restricted_to(bank.services())
        with pytest.raises(GeneratorError):
            TrafficGenerator({}, mix, bank)

    def test_mix_must_be_covered_by_bank(self, bank):
        # Uber is too rare in the small fixture campaign to be fitted.
        uncovered = [n for n in SERVICE_NAMES if n not in bank]
        if not uncovered:
            pytest.skip("fixture bank covers every service")
        mix = ServiceMix({uncovered[0]: 1.0})
        arrival = ArrivalModel(5.0, 0.5, 0.6)
        with pytest.raises(GeneratorError):
            TrafficGenerator({0: arrival}, mix, bank)


class TestGeneration:
    def test_day_table_schema(self, generator):
        day = generator.generate_bs_day(0, 0, np.random.default_rng(0))
        table = day.table
        assert len(table) == int(day.minute_counts.sum())
        assert np.all(table.bs_id == 0)
        assert np.all(table.day == 0)
        assert np.all(table.volume_mb > 0)
        assert np.all(table.duration_s >= 1.0)

    def test_day_counts_follow_arrival_model(self, generator):
        day = generator.generate_bs_day(0, 0, np.random.default_rng(1))
        mask = peak_minute_mask()
        assert day.minute_counts[mask].mean() == pytest.approx(10.0, rel=0.1)

    def test_unknown_bs_raises(self, generator):
        with pytest.raises(GeneratorError):
            generator.generate_bs_day(99, 0, np.random.default_rng(0))

    def test_campaign_covers_all_bs_and_days(self, generator):
        table = generator.generate_campaign(2, np.random.default_rng(2))
        assert set(np.unique(table.bs_id)) == {0, 1}
        assert set(np.unique(table.day)) == {0, 1}

    def test_campaign_rejects_zero_days(self, generator):
        with pytest.raises(GeneratorError):
            generator.generate_campaign(0, np.random.default_rng(0))

    def test_generated_mix_matches_requested(self, generator, bank):
        table = generator.generate_campaign(1, np.random.default_rng(3))
        fb = SERVICE_NAMES.index("Facebook")
        share = float((table.service_idx == fb).mean())
        expected = generator.mix.probability("Facebook")
        assert share == pytest.approx(expected, abs=0.02)


@pytest.fixture(scope="module")
def tiny_generator(bank):
    """Low-rate generator keeping determinism tests fast."""
    arrival = ArrivalModel(peak_mu=2.0, peak_sigma=0.5, night_scale=0.4)
    mix = ServiceMix.from_table1().restricted_to(bank.services())
    return TrafficGenerator({0: arrival, 3: arrival, 7: arrival}, mix, bank)


def _tables_identical(a, b) -> bool:
    return all(
        getattr(a, col).dtype == getattr(b, col).dtype
        and np.array_equal(getattr(a, col), getattr(b, col))
        for col in a.COLUMNS
    )


class TestSeedStreams:
    """The satellite bugfix: per-(day, BS) spawned seed streams."""

    def test_serial_matches_parallel(self, tiny_generator):
        serial = tiny_generator.generate_campaign(2, 11, jobs=1)
        parallel = tiny_generator.generate_campaign(2, 11, jobs=2)
        assert _tables_identical(serial, parallel)

    def test_independent_of_arrival_dict_order(self, bank, tiny_generator):
        models = tiny_generator.arrival_models
        reordered = TrafficGenerator(
            dict(sorted(models.items(), reverse=True)),
            tiny_generator.mix,
            bank,
        )
        assert _tables_identical(
            tiny_generator.generate_campaign(2, 11),
            reordered.generate_campaign(2, 11),
        )

    def test_int_seed_is_deterministic(self, tiny_generator):
        assert _tables_identical(
            tiny_generator.generate_campaign(1, 5),
            tiny_generator.generate_campaign(1, 5),
        )

    def test_generator_seed_is_deterministic(self, tiny_generator):
        assert _tables_identical(
            tiny_generator.generate_campaign(1, np.random.default_rng(5)),
            tiny_generator.generate_campaign(1, np.random.default_rng(5)),
        )

    def test_unit_regenerates_its_campaign_slice(self, tiny_generator):
        campaign = tiny_generator.generate_campaign(2, 11)
        rng = unit_rng(11, 1, 3)
        day = tiny_generator.generate_bs_day(3, 1, rng)
        sliced = campaign.select((campaign.day == 1) & (campaign.bs_id == 3))
        assert _tables_identical(day.table, sliced)

    def test_executor_and_jobs_are_exclusive(self, tiny_generator):
        from repro.pipeline.executors import SerialExecutor

        with pytest.raises(GeneratorError):
            tiny_generator.generate_campaign(
                1, 5, executor=SerialExecutor(), jobs=2
            )


class TestChunking:
    def test_chunked_equals_unchunked(self, tiny_generator):
        whole = tiny_generator.generate_campaign(2, 11)
        chunked = tiny_generator.generate_campaign(2, 11, chunk_sessions=500)
        assert _tables_identical(whole, chunked)

    def test_chunks_cover_canonical_units_in_order(self, tiny_generator):
        chunks = list(
            tiny_generator.iter_campaign_chunks(2, 11, chunk_sessions=500)
        )
        units = [unit for chunk in chunks for unit in chunk.units]
        assert units == tiny_generator.campaign_units(2)
        assert [c.index for c in chunks] == list(range(len(chunks)))
        assert all(c.n_chunks == len(chunks) for c in chunks)

    def test_plan_respects_expected_budget(self, tiny_generator):
        per_unit = tiny_generator.expected_unit_sessions(0)
        budget = int(per_unit * 2.5)
        plan = tiny_generator.plan_chunks(3, budget)
        assert all(len(chunk) <= 2 for chunk in plan)
        assert sum(len(chunk) for chunk in plan) == 9

    def test_single_unit_over_budget_still_runs(self, tiny_generator):
        plan = tiny_generator.plan_chunks(1, 1)
        assert all(len(chunk) == 1 for chunk in plan)

    def test_invalid_chunk_budget_rejected(self, tiny_generator):
        with pytest.raises(GeneratorError):
            tiny_generator.plan_chunks(1, 0)


class TestSchema:
    """The satellite bugfix: exact dtypes and day-boundary truncation."""

    def test_generated_dtypes_match_session_table_schema(self, generator):
        table = generator.generate_bs_day(0, 0, np.random.default_rng(0)).table
        assert table.service_idx.dtype == np.int16
        assert table.bs_id.dtype == np.int32
        assert table.day.dtype == np.int16
        assert table.start_minute.dtype == np.int16
        assert table.duration_s.dtype == np.float32
        assert table.volume_mb.dtype == np.float32
        assert table.truncated.dtype == np.bool_

    def test_truncated_flags_day_boundary_sessions(self, generator):
        table = generator.generate_campaign(1, 13)
        crossing = (
            table.start_minute.astype(np.float64) * 60.0 + table.duration_s
            > 86400.0
        )
        assert np.array_equal(table.truncated, crossing)

    def test_boundary_crossing_sessions_are_marked(self, bank):
        # A duration model mapping every volume to ~10^6 s guarantees each
        # session crosses the day boundary.
        from repro.core.distributions import LogNormal10
        from repro.core.duration_model import PowerLawModel
        from repro.core.model_bank import ModelBank
        from repro.core.service_model import SessionLevelModel
        from repro.core.volume_model import VolumeModel

        long_bank = ModelBank()
        long_bank.add(
            SessionLevelModel(
                service="Facebook",
                volume=VolumeModel(main=LogNormal10(0.0, 0.1)),
                duration=PowerLawModel(alpha=1e-6, beta=1.0, r2=1.0),
            )
        )
        gen = TrafficGenerator(
            {0: ArrivalModel(2.0, 0.5, 0.4)},
            ServiceMix({"Facebook": 1.0}),
            long_bank,
        )
        table = gen.generate_campaign(1, 3)
        assert len(table) > 0
        assert bool(table.truncated.all())
        # The sampled duration itself is kept (distribution fidelity).
        assert float(table.duration_s.min()) > 86400.0


class TestDistributionFidelity:
    """The batched path must sample the same distributions as the old
    per-unit ``sample_mixed_sessions`` loop."""

    def test_service_draws_match_service_mix_exactly(self, generator):
        sampler = generator.sampler()
        drawn = sampler.sample_services(np.random.default_rng(21), 20_000)
        expected = generator.mix.sample(np.random.default_rng(21), 20_000)
        assert np.array_equal(drawn, expected)

    def test_durations_follow_power_law_inverse(self, generator, bank):
        table = generator.generate_campaign(1, 17)
        for service in bank.services():
            sub = table.for_service(service)
            if not len(sub):
                continue
            model = bank.get(service)
            expected = np.maximum(
                model.duration.duration_for_volume_s(
                    sub.volume_mb.astype(np.float64)
                ),
                1.0,
            )
            np.testing.assert_allclose(
                sub.duration_s, expected, rtol=1e-3
            )

    def test_volume_distribution_matches_reference_path(self, generator):
        from repro.analysis.emd import emd
        from repro.analysis.histogram import LogHistogram

        batched = generator.generate_campaign(2, 23)
        reference = generate_campaign_reference(
            generator, 2, np.random.default_rng(23)
        )
        old = LogHistogram.from_volumes(
            reference.for_service("Facebook").volume_mb
        )
        new = LogHistogram.from_volumes(
            batched.for_service("Facebook").volume_mb
        )
        assert emd(old, new) < 0.1

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_any_seed_yields_schema_valid_reproducible_day(
        self, generator, seed
    ):
        first = generator.generate_bs_day(1, 0, unit_rng(seed, 0, 1))
        second = generator.generate_bs_day(1, 0, unit_rng(seed, 0, 1))
        assert _tables_identical(first.table, second.table)
        assert np.all(first.table.duration_s >= 1.0)
        assert np.all(first.table.volume_mb > 0)


class TestSpooling:
    def test_spool_roundtrip_matches_direct_generation(
        self, tiny_generator, tmp_path
    ):
        from repro.io.cache import ArtifactCache

        cache = ArtifactCache(tmp_path)
        manifest = tiny_generator.spool_campaign(
            2, 11, cache, chunk_sessions=500
        )
        direct = tiny_generator.generate_campaign(2, 11)
        assert manifest.n_sessions == len(direct)
        assert manifest.total_volume_mb == pytest.approx(
            direct.total_volume_mb(), rel=1e-6
        )
        assert _tables_identical(manifest.load(cache), direct)

    def test_spool_resumes_from_cached_chunks(self, tiny_generator, tmp_path):
        from repro.io.cache import ArtifactCache

        cache = ArtifactCache(tmp_path)
        first = tiny_generator.spool_campaign(2, 11, cache, chunk_sessions=500)
        stamps = {
            key: cache.path_for(first.kind, key, ".npz").stat().st_mtime_ns
            for key in first.chunk_keys
        }
        second = tiny_generator.spool_campaign(
            2, 11, cache, chunk_sessions=500
        )
        assert second.chunk_keys == first.chunk_keys
        assert second.n_sessions == first.n_sessions
        for key in second.chunk_keys:
            # untouched on the second run: chunks were loaded, not rebuilt
            assert (
                cache.path_for(second.kind, key, ".npz").stat().st_mtime_ns
                == stamps[key]
            )

    def test_different_seeds_spool_under_different_keys(
        self, tiny_generator, tmp_path
    ):
        from repro.io.cache import ArtifactCache

        cache = ArtifactCache(tmp_path)
        a = tiny_generator.spool_campaign(1, 11, cache)
        b = tiny_generator.spool_campaign(1, 12, cache)
        assert set(a.chunk_keys).isdisjoint(b.chunk_keys)
