"""Tests for the model-driven traffic generator."""

import numpy as np
import pytest

from repro.core.arrivals import ArrivalModel
from repro.core.generator import GeneratorError, TrafficGenerator
from repro.core.service_mix import ServiceMix
from repro.dataset.circadian import peak_minute_mask
from repro.dataset.records import SERVICE_NAMES


@pytest.fixture(scope="module")
def generator(bank):
    arrival = ArrivalModel(peak_mu=10.0, peak_sigma=1.0, night_scale=1.2)
    mix = ServiceMix.from_table1().restricted_to(bank.services())
    return TrafficGenerator({0: arrival, 1: arrival}, mix, bank)


class TestConstruction:
    def test_requires_arrival_models(self, bank):
        mix = ServiceMix.from_table1().restricted_to(bank.services())
        with pytest.raises(GeneratorError):
            TrafficGenerator({}, mix, bank)

    def test_mix_must_be_covered_by_bank(self, bank):
        # Uber is too rare in the small fixture campaign to be fitted.
        uncovered = [n for n in SERVICE_NAMES if n not in bank]
        if not uncovered:
            pytest.skip("fixture bank covers every service")
        mix = ServiceMix({uncovered[0]: 1.0})
        arrival = ArrivalModel(5.0, 0.5, 0.6)
        with pytest.raises(GeneratorError):
            TrafficGenerator({0: arrival}, mix, bank)


class TestGeneration:
    def test_day_table_schema(self, generator):
        day = generator.generate_bs_day(0, 0, np.random.default_rng(0))
        table = day.table
        assert len(table) == int(day.minute_counts.sum())
        assert np.all(table.bs_id == 0)
        assert np.all(table.day == 0)
        assert np.all(table.volume_mb > 0)
        assert np.all(table.duration_s >= 1.0)

    def test_day_counts_follow_arrival_model(self, generator):
        day = generator.generate_bs_day(0, 0, np.random.default_rng(1))
        mask = peak_minute_mask()
        assert day.minute_counts[mask].mean() == pytest.approx(10.0, rel=0.1)

    def test_unknown_bs_raises(self, generator):
        with pytest.raises(GeneratorError):
            generator.generate_bs_day(99, 0, np.random.default_rng(0))

    def test_campaign_covers_all_bs_and_days(self, generator):
        table = generator.generate_campaign(2, np.random.default_rng(2))
        assert set(np.unique(table.bs_id)) == {0, 1}
        assert set(np.unique(table.day)) == {0, 1}

    def test_campaign_rejects_zero_days(self, generator):
        with pytest.raises(GeneratorError):
            generator.generate_campaign(0, np.random.default_rng(0))

    def test_generated_mix_matches_requested(self, generator, bank):
        table = generator.generate_campaign(1, np.random.default_rng(3))
        fb = SERVICE_NAMES.index("Facebook")
        share = float((table.service_idx == fb).mean())
        expected = generator.mix.probability("Facebook")
        assert share == pytest.approx(expected, abs=0.02)
