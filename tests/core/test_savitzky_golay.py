"""Tests for the in-house Savitzky–Golay filter (cross-checked vs scipy)."""

import numpy as np
import pytest
from scipy.signal import savgol_filter as scipy_savgol

from repro.core.fitting.savitzky_golay import (
    FilterError,
    savgol_coefficients,
    savgol_filter,
)


class TestCoefficients:
    def test_smoothing_kernel_sums_to_one(self):
        kernel = savgol_coefficients(7, 2, deriv=0)
        assert kernel.sum() == pytest.approx(1.0)

    def test_derivative_kernel_sums_to_zero(self):
        kernel = savgol_coefficients(7, 2, deriv=1)
        assert kernel.sum() == pytest.approx(0.0, abs=1e-12)

    def test_matches_scipy_coefficients(self):
        from scipy.signal import savgol_coeffs

        ours = savgol_coefficients(9, 3, deriv=0)
        # scipy returns the kernel for convolution (reversed order).
        theirs = savgol_coeffs(9, 3, deriv=0)
        assert np.allclose(ours, theirs[::-1])

    def test_even_window_rejected(self):
        with pytest.raises(FilterError):
            savgol_coefficients(8, 2)

    def test_order_must_be_below_window(self):
        with pytest.raises(FilterError):
            savgol_coefficients(5, 5)

    def test_deriv_must_not_exceed_order(self):
        with pytest.raises(FilterError):
            savgol_coefficients(7, 1, deriv=2)

    def test_delta_scaling(self):
        k1 = savgol_coefficients(7, 1, deriv=1, delta=1.0)
        k2 = savgol_coefficients(7, 1, deriv=1, delta=0.5)
        assert np.allclose(k2, k1 * 2.0)


class TestFilter:
    def test_polynomial_is_reproduced_exactly(self):
        # A SG filter of order p reproduces degree-p polynomials exactly.
        x = np.arange(50, dtype=float)
        y = 2.0 + 0.3 * x + 0.01 * x**2
        smoothed = savgol_filter(y, 9, 2)
        assert np.allclose(smoothed, y, atol=1e-8)

    def test_derivative_of_line_is_constant_slope(self):
        y = 5.0 + 0.7 * np.arange(40, dtype=float)
        deriv = savgol_filter(y, 7, 1, deriv=1)
        assert np.allclose(deriv, 0.7, atol=1e-8)

    def test_derivative_respects_delta(self):
        y = 3.0 * np.arange(40, dtype=float) * 0.1  # slope 0.3 per sample
        deriv = savgol_filter(y, 7, 1, deriv=1, delta=0.1)
        assert np.allclose(deriv, 3.0, atol=1e-8)

    def test_matches_scipy_interior_and_edges(self):
        rng = np.random.default_rng(0)
        y = np.sin(np.linspace(0, 4 * np.pi, 120)) + 0.1 * rng.normal(size=120)
        ours = savgol_filter(y, 11, 3)
        theirs = scipy_savgol(y, 11, 3, mode="interp")
        assert np.allclose(ours, theirs, atol=1e-10)

    def test_matches_scipy_first_derivative(self):
        rng = np.random.default_rng(1)
        y = np.cumsum(rng.normal(size=80))
        ours = savgol_filter(y, 7, 1, deriv=1, delta=0.025)
        theirs = scipy_savgol(y, 7, 1, deriv=1, delta=0.025, mode="interp")
        assert np.allclose(ours, theirs, atol=1e-8)

    def test_smoothing_reduces_noise_variance(self):
        rng = np.random.default_rng(2)
        noise = rng.normal(size=500)
        smoothed = savgol_filter(noise, 21, 2)
        assert smoothed.std() < 0.5 * noise.std()

    def test_input_shorter_than_window_raises(self):
        with pytest.raises(FilterError):
            savgol_filter(np.zeros(5), 7, 1)

    def test_two_dimensional_input_raises(self):
        with pytest.raises(FilterError):
            savgol_filter(np.zeros((4, 4)), 3, 1)
