"""Spool-resume under the arena path: interruption and corruption recovery.

A spooled campaign must survive a killed run (missing trailing chunk) and
a torn write (truncated trailing chunk): the next ``spool_campaign`` call
regenerates exactly the damaged chunks and the materialized campaign stays
byte-identical to an uninterrupted spool.  Both artifact encodings are
covered — compressed ``.npz`` archives and raw ``.seg`` segments
(``memmap_spool=True``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.arrivals import ArrivalModel
from repro.core.generator import TrafficGenerator
from repro.core.service_mix import ServiceMix
from repro.dataset.records import TABLE_SCHEMA, SessionArena
from repro.io.cache import ArtifactCache

SEED = 11
DAYS = 2
CHUNK = 500


@pytest.fixture(scope="module")
def generator(bank):
    """Low-rate generator spanning several chunks at CHUNK=500."""
    arrival = ArrivalModel(peak_mu=2.0, peak_sigma=0.5, night_scale=0.4)
    mix = ServiceMix.from_table1().restricted_to(bank.services())
    return TrafficGenerator({0: arrival, 3: arrival, 7: arrival}, mix, bank)


def spool(generator, cache, **kwargs):
    return generator.spool_campaign(
        DAYS, SEED, cache, chunk_sessions=CHUNK, **kwargs
    )


def assert_tables_identical(a, b) -> None:
    for spec in TABLE_SCHEMA:
        left, right = getattr(a, spec.name), getattr(b, spec.name)
        assert left.dtype == right.dtype, spec.name
        np.testing.assert_array_equal(left, right, err_msg=spec.name)


@pytest.fixture(scope="module")
def baseline(generator, tmp_path_factory):
    """An uninterrupted spool: the byte-identity reference."""
    cache = ArtifactCache(tmp_path_factory.mktemp("baseline"))
    manifest = spool(generator, cache)
    assert len(manifest.chunk_keys) > 1, "workload must span several chunks"
    return manifest.load(cache)


@pytest.mark.parametrize("memmap_spool", [False, True], ids=["npz", "seg"])
class TestInterruptedSpool:
    def test_killed_run_resumes_byte_identical(
        self, generator, baseline, tmp_path, memmap_spool
    ):
        """Missing trailing chunk (process died before writing it)."""
        cache = ArtifactCache(tmp_path)
        first = spool(generator, cache, memmap_spool=memmap_spool)
        last = cache.path_for(
            first.kind, first.chunk_keys[-1], first.suffix
        )
        last.unlink()
        resumed = spool(generator, cache, memmap_spool=memmap_spool)
        assert resumed.chunk_keys == first.chunk_keys
        assert last.exists()
        assert_tables_identical(resumed.load(cache), baseline)

    def test_torn_write_regenerates_byte_identical(
        self, generator, baseline, tmp_path, memmap_spool
    ):
        """Truncated trailing chunk (torn write): detected and rebuilt."""
        cache = ArtifactCache(tmp_path)
        first = spool(generator, cache, memmap_spool=memmap_spool)
        last = cache.path_for(
            first.kind, first.chunk_keys[-1], first.suffix
        )
        raw = last.read_bytes()
        last.write_bytes(raw[: len(raw) // 2])
        resumed = spool(generator, cache, memmap_spool=memmap_spool)
        assert last.read_bytes() == raw  # rebuilt, not trusted as-is
        assert_tables_identical(resumed.load(cache), baseline)

    def test_intact_chunks_not_rebuilt_on_resume(
        self, generator, tmp_path, memmap_spool
    ):
        """Resume touches only the damaged chunk, never the intact ones."""
        cache = ArtifactCache(tmp_path)
        first = spool(generator, cache, memmap_spool=memmap_spool)
        paths = {
            key: cache.path_for(first.kind, key, first.suffix)
            for key in first.chunk_keys
        }
        stamps = {
            key: path.stat().st_mtime_ns for key, path in paths.items()
        }
        paths[first.chunk_keys[-1]].unlink()
        spool(generator, cache, memmap_spool=memmap_spool)
        for key in first.chunk_keys[:-1]:
            assert paths[key].stat().st_mtime_ns == stamps[key]


class TestEncodingsAgree:
    def test_segment_spool_matches_npz_spool(
        self, generator, baseline, tmp_path
    ):
        cache = ArtifactCache(tmp_path)
        manifest = spool(generator, cache, memmap_spool=True)
        assert manifest.suffix == ".seg"
        assert_tables_identical(manifest.load(cache), baseline)

    def test_memmapped_chunks_match_copies(self, generator, tmp_path):
        cache = ArtifactCache(tmp_path)
        manifest = spool(generator, cache, memmap_spool=True)
        copied = list(manifest.iter_tables(cache))
        mapped = list(manifest.iter_tables(cache, memmap=True))
        assert len(copied) == len(mapped)
        for a, b in zip(copied, mapped):
            assert isinstance(b.volume_mb.base, np.memmap)
            assert_tables_identical(a, b)

    def test_caller_arena_spool_matches(self, generator, baseline, tmp_path):
        """A caller-provided (deliberately tiny) arena changes nothing."""
        cache = ArtifactCache(tmp_path)
        manifest = spool(
            generator, cache, arena=SessionArena(capacity=64)
        )
        assert_tables_identical(manifest.load(cache), baseline)
