"""Tests for the main-component Gaussian fitting helpers."""

import numpy as np
import pytest

from repro.analysis.histogram import LogHistogram
from repro.core.fitting.gaussian_fit import fit_main_lognormal, moment_gaussian
from repro.core.fitting.levenberg_marquardt import FitError


def gaussian_hist(mu, sigma):
    return LogHistogram.from_log_density(
        lambda u: np.exp(-0.5 * ((u - mu) / sigma) ** 2)
        / (sigma * np.sqrt(2 * np.pi))
    )


class TestMomentGaussian:
    def test_recovers_clean_gaussian(self):
        fit = moment_gaussian(gaussian_hist(0.8, 0.4))
        assert fit.mu == pytest.approx(0.8, abs=0.01)
        assert fit.sigma == pytest.approx(0.4, abs=0.01)

    def test_empty_histogram_raises(self):
        with pytest.raises(FitError):
            moment_gaussian(LogHistogram.empty())


class TestFitMainLognormal:
    def test_recovers_clean_gaussian(self):
        fit = fit_main_lognormal(gaussian_hist(1.1, 0.5))
        assert fit.mu == pytest.approx(1.1, abs=0.01)
        assert fit.sigma == pytest.approx(0.5, abs=0.01)

    def test_lm_beats_moments_under_contamination(self):
        # Body + a far contaminating bump: moments get dragged, LM less so.
        body = gaussian_hist(0.0, 0.3)
        bump = gaussian_hist(2.5, 0.1)
        mixed = LogHistogram.weighted_average([body, bump], [0.9, 0.1])
        moment = moment_gaussian(mixed)
        refined = fit_main_lognormal(mixed)
        assert abs(refined.mu - 0.0) < abs(moment.mu - 0.0)
        assert abs(refined.sigma - 0.3) < abs(moment.sigma - 0.3)

    def test_fit_from_samples(self):
        rng = np.random.default_rng(0)
        volumes = 10.0 ** rng.normal(0.5, 0.35, size=30000)
        fit = fit_main_lognormal(LogHistogram.from_volumes(volumes))
        assert fit.mu == pytest.approx(0.5, abs=0.02)
        assert fit.sigma == pytest.approx(0.35, abs=0.02)

    def test_narrow_spike_does_not_crash(self):
        volumes = np.full(1000, 3.0)
        fit = fit_main_lognormal(LogHistogram.from_volumes(volumes))
        assert fit.mu == pytest.approx(np.log10(3.0), abs=0.05)
        assert fit.sigma > 0
