"""Tests for model drift detection between releases."""

import pytest

from repro.core.distributions import LogNormal10
from repro.core.drift import ServiceDrift, compare_banks
from repro.core.duration_model import PowerLawModel
from repro.core.model_bank import ModelBank
from repro.core.service_model import SessionLevelModel
from repro.core.volume_model import VolumeModel


def make_model(service, mu=0.5, sigma=0.5, alpha=0.01, beta=1.0):
    return SessionLevelModel(
        service=service,
        volume=VolumeModel(main=LogNormal10(mu, sigma)),
        duration=PowerLawModel(alpha=alpha, beta=beta, r2=0.9),
    )


def bank_of(*models):
    bank = ModelBank()
    for model in models:
        bank.add(model)
    return bank


class TestServiceDrift:
    def test_no_drift_not_significant(self):
        drift = ServiceDrift("Facebook", 0.0, 1.0, 0.0)
        assert not drift.is_significant()

    def test_emd_drift_flags(self):
        assert ServiceDrift("x", 0.5, 1.0, 0.0).is_significant()

    def test_mean_drift_flags_both_directions(self):
        assert ServiceDrift("x", 0.0, 2.0, 0.0).is_significant()
        assert ServiceDrift("x", 0.0, 0.4, 0.0).is_significant()

    def test_beta_drift_flags(self):
        assert ServiceDrift("x", 0.0, 1.0, 0.5).is_significant()

    def test_custom_thresholds(self):
        drift = ServiceDrift("x", 0.05, 1.1, 0.1)
        assert not drift.is_significant()
        assert drift.is_significant(emd_threshold=0.01)


class TestCompareBanks:
    def test_identical_banks_show_no_drift(self):
        bank = bank_of(make_model("Facebook"), make_model("Netflix"))
        report = compare_banks(bank, bank)
        assert report.significant() == []
        assert len(report.stable()) == 2
        assert report.only_in_old == []
        assert report.only_in_new == []

    def test_shifted_volume_detected(self):
        old = bank_of(make_model("Facebook", mu=0.0))
        new = bank_of(make_model("Facebook", mu=1.0))
        report = compare_banks(old, new)
        assert len(report.significant()) == 1
        drift = report.drifts[0]
        assert drift.volume_emd == pytest.approx(1.0, abs=0.05)
        assert drift.mean_ratio == pytest.approx(10.0, rel=0.05)

    def test_beta_shift_detected(self):
        old = bank_of(make_model("Netflix", beta=1.0))
        new = bank_of(make_model("Netflix", beta=1.5))
        report = compare_banks(old, new)
        assert report.drifts[0].beta_delta == pytest.approx(0.5)
        assert report.significant()

    def test_emerging_and_retired_services_listed(self):
        old = bank_of(make_model("Facebook"), make_model("Yahoo"))
        new = bank_of(make_model("Facebook"), make_model("Uber"))
        report = compare_banks(old, new)
        assert report.only_in_old == ["Yahoo"]
        assert report.only_in_new == ["Uber"]
        assert [d.service for d in report.drifts] == ["Facebook"]

    def test_refit_on_same_substrate_is_stable(self, campaign, bank):
        # Two independent fits on halves of the same campaign barely drift.
        half_a = campaign.for_days([0])
        half_b = campaign.for_days([1])
        bank_a = ModelBank.fit_from_table(
            half_a, services=["Facebook", "Instagram"], min_sessions=300
        )
        bank_b = ModelBank.fit_from_table(
            half_b, services=["Facebook", "Instagram"], min_sessions=300
        )
        report = compare_banks(bank_a, bank_b)
        assert report.significant() == []
