"""Tests for residual-peak extraction (Section 5.2 step 2)."""

import numpy as np
import pytest

from repro.analysis.histogram import BIN_WIDTH, LOG_CENTERS, N_BINS
from repro.core.residuals import (
    ResidualError,
    ResidualPeak,
    find_residual_peaks,
    smoothed_derivative,
)


def make_peak(mu, sigma, weight):
    """A scaled Gaussian bump on the global grid."""
    return weight * np.exp(-0.5 * ((LOG_CENTERS - mu) / sigma) ** 2) / (
        sigma * np.sqrt(2 * np.pi)
    )


class TestSmoothedDerivative:
    def test_zero_residual_gives_zero_derivative(self):
        deriv = smoothed_derivative(np.zeros(N_BINS))
        assert np.allclose(deriv, 0.0)

    def test_linear_ramp_gives_constant_slope(self):
        ramp = np.linspace(0, 1, N_BINS)
        deriv = smoothed_derivative(ramp)
        expected = 1.0 / (N_BINS - 1) / BIN_WIDTH
        assert np.allclose(deriv[10:-10], expected, rtol=1e-6)

    def test_wrong_shape_raises(self):
        with pytest.raises(ResidualError):
            smoothed_derivative(np.zeros(10))


class TestFindResidualPeaks:
    def test_single_peak_recovered(self):
        residual = make_peak(1.0, 0.06, 0.08)
        peaks = find_residual_peaks(residual)
        assert len(peaks) == 1
        assert peaks[0].mu == pytest.approx(1.0, abs=2 * BIN_WIDTH)
        assert peaks[0].weight == pytest.approx(0.08, rel=0.15)
        assert peaks[0].sigma == pytest.approx(0.06, abs=0.05)

    def test_two_separated_peaks_recovered(self):
        residual = make_peak(0.54, 0.045, 0.10) + make_peak(0.88, 0.045, 0.06)
        peaks = find_residual_peaks(residual)
        assert len(peaks) == 2
        mus = sorted(p.mu for p in peaks)
        assert mus[0] == pytest.approx(0.54, abs=2 * BIN_WIDTH)
        assert mus[1] == pytest.approx(0.88, abs=2 * BIN_WIDTH)

    def test_peaks_ranked_by_weight(self):
        residual = make_peak(-1.0, 0.05, 0.02) + make_peak(2.0, 0.05, 0.09)
        peaks = find_residual_peaks(residual)
        assert peaks[0].weight > peaks[1].weight
        assert peaks[0].mu == pytest.approx(2.0, abs=2 * BIN_WIDTH)

    def test_max_peaks_cap(self):
        residual = sum(
            make_peak(mu, 0.05, 0.05) for mu in (-1.0, 0.0, 1.0, 2.0, 3.0)
        )
        assert len(find_residual_peaks(residual, max_peaks=3)) == 3
        assert len(find_residual_peaks(residual, max_peaks=5)) == 5

    def test_zero_max_peaks_returns_nothing(self):
        residual = make_peak(0.0, 0.05, 0.1)
        assert find_residual_peaks(residual, max_peaks=0) == []

    def test_negligible_weight_filtered(self):
        # Section 5.4: peaks with weight below 1e-4 are noise.
        residual = make_peak(0.0, 0.05, 5e-5)
        assert find_residual_peaks(residual) == []

    def test_broad_gentle_bump_not_a_peak(self):
        # A wide, low-slope residual is fit mismatch, not a service peak.
        residual = make_peak(0.5, 1.5, 0.05)
        assert find_residual_peaks(residual) == []

    def test_empty_residual_gives_no_peaks(self):
        assert find_residual_peaks(np.zeros(N_BINS)) == []

    def test_negative_residual_raises(self):
        residual = np.zeros(N_BINS)
        residual[100] = -0.5
        with pytest.raises(ResidualError):
            find_residual_peaks(residual)

    def test_peak_component_is_lognormal(self):
        peak = ResidualPeak(weight=0.1, mu=0.5, sigma=0.05, u_lo=0.4, u_hi=0.6)
        component = peak.component()
        assert component.mu == 0.5
        assert component.sigma == 0.05

    def test_peak_pdf_scales_with_weight(self):
        peak = ResidualPeak(weight=0.1, mu=0.5, sigma=0.05, u_lo=0.4, u_hi=0.6)
        u = np.array([0.5])
        assert peak.pdf_log10(u)[0] == pytest.approx(
            0.1 * peak.component().pdf_log10(u)[0]
        )

    def test_interval_bounds_bracket_mu(self):
        residual = make_peak(1.2, 0.06, 0.08)
        peak = find_residual_peaks(residual)[0]
        assert peak.u_lo <= peak.mu <= peak.u_hi
