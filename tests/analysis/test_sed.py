"""Tests for the squared Euclidean distance between v(d) curves."""

import numpy as np
import pytest

from repro.analysis.sed import PairsError, align_pairs, sed


class TestAlignPairs:
    def test_keeps_only_common_bins(self):
        a, b = align_pairs(
            np.array([1.0, 2.0, 3.0]),
            np.array([10.0, 20.0, 30.0]),
            np.array([2.0, 3.0, 4.0]),
            np.array([22.0, 33.0, 44.0]),
        )
        assert list(a) == [20.0, 30.0]
        assert list(b) == [22.0, 33.0]

    def test_no_overlap_raises(self):
        with pytest.raises(PairsError):
            align_pairs(
                np.array([1.0]), np.array([1.0]),
                np.array([2.0]), np.array([2.0]),
            )

    def test_misaligned_inputs_raise(self):
        with pytest.raises(PairsError):
            align_pairs(
                np.array([1.0, 2.0]), np.array([1.0]),
                np.array([1.0]), np.array([1.0]),
            )


class TestSed:
    def test_identical_curves_zero(self):
        d = np.array([1.0, 10.0, 100.0])
        v = np.array([2.0, 15.0, 80.0])
        assert sed(d, v, d, v) == 0.0

    def test_symmetric(self):
        d = np.array([1.0, 10.0, 100.0])
        va = np.array([2.0, 15.0, 80.0])
        vb = np.array([3.0, 10.0, 90.0])
        assert sed(d, va, d, vb) == pytest.approx(sed(d, vb, d, va))

    def test_log_space_measures_ratio(self):
        d = np.array([1.0, 10.0])
        va = np.array([1.0, 1.0])
        vb = np.array([10.0, 10.0])  # one decade above everywhere
        assert sed(d, va, d, vb) == pytest.approx(1.0)

    def test_linear_space_option(self):
        d = np.array([1.0, 10.0])
        va = np.array([1.0, 1.0])
        vb = np.array([3.0, 3.0])
        assert sed(d, va, d, vb, log_space=False) == pytest.approx(4.0)

    def test_mean_normalization_ignores_overlap_size(self):
        # Same per-bin discrepancy, different overlap size: equal SED.
        d_small = np.array([1.0, 2.0])
        d_large = np.array([1.0, 2.0, 3.0, 4.0])
        small = sed(d_small, np.full(2, 1.0), d_small, np.full(2, 10.0))
        large = sed(d_large, np.full(4, 1.0), d_large, np.full(4, 10.0))
        assert small == pytest.approx(large)

    def test_log_space_rejects_all_nonpositive(self):
        d = np.array([1.0, 2.0])
        with pytest.raises(PairsError):
            sed(d, np.zeros(2), d, np.ones(2))
