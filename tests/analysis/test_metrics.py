"""Tests for goodness-of-fit and dispersion metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import (
    BoxplotStats,
    MetricError,
    absolute_percentage_error,
    coefficient_of_variation,
    r_squared,
)


class TestRSquared:
    def test_perfect_fit_is_one(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r_squared(y, y) == 1.0

    def test_mean_predictor_is_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r_squared(y, np.full(3, 2.0)) == pytest.approx(0.0)

    def test_worse_than_mean_is_negative(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r_squared(y, np.array([3.0, 2.0, 1.0])) < 0

    def test_constant_observed_perfect(self):
        y = np.full(4, 5.0)
        assert r_squared(y, y) == 1.0

    def test_constant_observed_imperfect(self):
        y = np.full(4, 5.0)
        assert r_squared(y, y + 1.0) == 0.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(MetricError):
            r_squared(np.zeros(3), np.zeros(4))

    def test_single_point_raises(self):
        with pytest.raises(MetricError):
            r_squared(np.zeros(1), np.zeros(1))


class TestApe:
    def test_exact_estimate_zero(self):
        assert absolute_percentage_error(np.array([2.0]), np.array([2.0]))[0] == 0.0

    def test_double_is_hundred_percent(self):
        assert absolute_percentage_error(np.array([2.0]), np.array([4.0]))[
            0
        ] == pytest.approx(100.0)

    def test_symmetric_in_magnitude(self):
        under = absolute_percentage_error(np.array([10.0]), np.array([5.0]))[0]
        assert under == pytest.approx(50.0)

    def test_zero_reference_raises(self):
        with pytest.raises(MetricError):
            absolute_percentage_error(np.array([0.0]), np.array([1.0]))


class TestCv:
    def test_constant_samples_zero(self):
        assert coefficient_of_variation(np.full(10, 3.0)) == 0.0

    def test_known_value(self):
        samples = np.array([1.0, 3.0])  # mean 2, std 1
        assert coefficient_of_variation(samples) == pytest.approx(0.5)

    def test_scale_invariant(self):
        samples = np.array([1.0, 2.0, 3.0, 4.0])
        assert coefficient_of_variation(samples) == pytest.approx(
            coefficient_of_variation(samples * 100)
        )

    def test_single_sample_raises(self):
        with pytest.raises(MetricError):
            coefficient_of_variation(np.array([1.0]))

    def test_zero_mean_raises(self):
        with pytest.raises(MetricError):
            coefficient_of_variation(np.array([-1.0, 1.0]))


class TestBoxplotStats:
    def test_ordering_of_summary(self):
        stats = BoxplotStats.from_samples(np.random.default_rng(0).normal(size=500))
        assert stats.p5 <= stats.q1 <= stats.median <= stats.q3 <= stats.p95

    def test_known_percentiles(self):
        stats = BoxplotStats.from_samples(np.arange(101, dtype=float))
        assert stats.median == pytest.approx(50.0)
        assert stats.q1 == pytest.approx(25.0)
        assert stats.p95 == pytest.approx(95.0)

    def test_empty_raises(self):
        with pytest.raises(MetricError):
            BoxplotStats.from_samples(np.array([]))

    def test_as_row_matches_fields(self):
        stats = BoxplotStats.from_samples(np.arange(11, dtype=float))
        assert stats.as_row() == (stats.p5, stats.q1, stats.median, stats.q3, stats.p95)


@given(
    st.lists(st.floats(min_value=-100, max_value=100), min_size=2, max_size=50),
    st.floats(min_value=0.01, max_value=10),
    st.floats(min_value=-50, max_value=50),
)
@settings(max_examples=30, deadline=None)
def test_property_r_squared_affine_invariance(values, scale, shift):
    """A perfect affine relation has R^2 == 1 against itself."""
    observed = np.asarray(values)
    if np.allclose(observed, observed[0]):
        return
    assert r_squared(observed, observed) == 1.0
    # Shifting predictions strictly reduces R^2.
    assert r_squared(observed, observed + abs(shift) + 0.1) < 1.0
