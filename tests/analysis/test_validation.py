"""Tests for goodness-of-fit helpers and campaign validation."""

import numpy as np
import pytest

from repro.analysis.histogram import LogHistogram
from repro.analysis.validation import (
    CampaignReport,
    Finding,
    Severity,
    ValidationError,
    ks_distance,
    qq_max_deviation,
    qq_points,
    validate_campaign,
)
from repro.dataset.records import SessionTable


def gaussian_hist(mu, sigma=0.3):
    return LogHistogram.from_log_density(
        lambda u: np.exp(-0.5 * ((u - mu) / sigma) ** 2)
        / (sigma * np.sqrt(2 * np.pi))
    )


class TestKsDistance:
    def test_identical_is_zero(self):
        h = gaussian_hist(0.5)
        assert ks_distance(h, h) == 0.0

    def test_symmetric(self):
        a, b = gaussian_hist(0.0), gaussian_hist(1.0)
        assert ks_distance(a, b) == pytest.approx(ks_distance(b, a))

    def test_bounded_by_one(self):
        a, b = gaussian_hist(-2.0, 0.1), gaussian_hist(3.0, 0.1)
        assert 0.99 < ks_distance(a, b) <= 1.0

    def test_grows_with_separation(self):
        base = gaussian_hist(0.0)
        d_small = ks_distance(base, gaussian_hist(0.1))
        d_large = ks_distance(base, gaussian_hist(0.8))
        assert d_small < d_large


class TestQq:
    def test_identical_on_diagonal(self):
        h = gaussian_hist(0.5)
        measured, model = qq_points(h, h)
        assert np.allclose(measured, model)

    def test_shift_appears_as_offset(self):
        a, b = gaussian_hist(0.0), gaussian_hist(1.0)
        measured, model = qq_points(a, b)
        assert np.allclose(model - measured, 1.0, atol=0.05)

    def test_max_deviation_matches_shift(self):
        a, b = gaussian_hist(0.0), gaussian_hist(0.5)
        assert qq_max_deviation(a, b) == pytest.approx(0.5, abs=0.05)

    def test_invalid_quantiles_rejected(self):
        h = gaussian_hist(0.0)
        with pytest.raises(ValidationError):
            qq_points(h, h, quantiles=np.array([0.0, 0.5]))


class TestValidateCampaign:
    def test_healthy_campaign_is_ok(self, campaign):
        from tests.conftest import CAMPAIGN_DAYS

        report = validate_campaign(campaign, CAMPAIGN_DAYS)
        assert report.ok
        assert not report.errors()
        checks = {f.check for f in report.findings}
        assert "circadian" in checks
        assert "transients" in checks

    def test_empty_campaign_is_error(self):
        report = validate_campaign(SessionTable.empty(), 1)
        assert not report.ok
        assert report.errors()[0].check == "non-empty"

    def test_missing_day_flagged(self, campaign):
        report = validate_campaign(campaign, n_days=5)
        assert not report.ok
        assert any(f.check == "day-coverage" for f in report.errors())

    def test_share_deviation_flagged(self):
        # A single-service campaign wildly violates Table 1.
        n = 3000
        rng = np.random.default_rng(0)
        table = SessionTable(
            service_idx=np.zeros(n, dtype=int),  # everything is Facebook
            bs_id=np.zeros(n, dtype=int),
            day=np.zeros(n, dtype=int),
            start_minute=rng.integers(480, 1320, n),
            duration_s=rng.uniform(1, 100, n),
            volume_mb=rng.uniform(0.1, 10, n),
            truncated=rng.random(n) < 0.1,
        )
        report = validate_campaign(table, 1)
        assert any(f.check == "table1-shares" for f in report.warnings())

    def test_no_transients_flagged(self):
        n = 1000
        rng = np.random.default_rng(1)
        table = SessionTable(
            service_idx=rng.integers(0, 5, n),
            bs_id=np.zeros(n, dtype=int),
            day=np.zeros(n, dtype=int),
            start_minute=rng.integers(480, 1320, n),
            duration_s=rng.uniform(1, 100, n),
            volume_mb=rng.uniform(0.1, 10, n),
            truncated=np.zeros(n, dtype=bool),
        )
        report = validate_campaign(table, 1)
        assert any(
            f.check == "transients" and f.severity is Severity.WARNING
            for f in report.findings
        )

    def test_report_helpers(self):
        report = CampaignReport(
            findings=[
                Finding(Severity.INFO, "a", "fine"),
                Finding(Severity.WARNING, "b", "meh"),
                Finding(Severity.ERROR, "c", "bad"),
            ]
        )
        assert not report.ok
        assert len(report.warnings()) == 1
        assert len(report.errors()) == 1
