"""Tests for the throughput-distribution derivation."""

import numpy as np
import pytest

from repro.analysis.histogram import HistogramError
from repro.analysis.throughput import (
    mean_throughput_mbps,
    measured_throughput_pdf,
    model_throughput_pdf,
    throughput_pdf_from_samples,
)
from repro.dataset.records import SessionTable


class TestThroughputPdf:
    def test_known_single_rate(self):
        # 1 MB over 8 s = 1 Mbps exactly.
        pdf = throughput_pdf_from_samples(np.array([1.0]), np.array([8.0]))
        assert np.log10(pdf.mode_mb()) == pytest.approx(0.0, abs=0.05)

    def test_normalized(self):
        rng = np.random.default_rng(0)
        pdf = throughput_pdf_from_samples(
            rng.uniform(0.1, 10, 1000), rng.uniform(10, 1000, 1000)
        )
        assert pdf.total_mass == pytest.approx(1.0)

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(HistogramError):
            throughput_pdf_from_samples(np.ones(3), np.ones(2))

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(HistogramError):
            throughput_pdf_from_samples(np.ones(1), np.zeros(1))

    def test_empty_input(self):
        assert throughput_pdf_from_samples(np.array([]), np.array([])).is_empty


class TestMeasuredVsModel:
    def test_measured_pdf_from_campaign(self, campaign):
        pdf = measured_throughput_pdf(campaign.for_service("Netflix"))
        assert pdf.total_mass == pytest.approx(1.0)
        # Session-level average throughputs sit well below link rates.
        assert pdf.quantile_mb(0.99) < 100.0

    def test_model_throughput_tracks_measurement(self, campaign, bank):
        from repro.analysis.emd import emd

        measured = measured_throughput_pdf(campaign.for_service("Facebook"))
        modelled = model_throughput_pdf(
            bank.get("Facebook"), np.random.default_rng(0)
        )
        # Throughput is a derived quantity: the model couples it through
        # the deterministic v^{-1}, so dispersion differs; the location
        # must agree.
        assert modelled.mean_log10() == pytest.approx(
            measured.mean_log10(), abs=0.35
        )
        assert emd(measured, modelled) < 0.5

    def test_streaming_outpaces_messaging(self, campaign):
        streaming = mean_throughput_mbps(campaign.for_service("Twitch"))
        messaging = mean_throughput_mbps(campaign.for_service("Gmail"))
        assert streaming != messaging  # distinct service behaviours

    def test_mean_throughput_empty_rejected(self):
        with pytest.raises(HistogramError):
            mean_throughput_mbps(SessionTable.empty())

    def test_model_pdf_needs_samples(self, bank):
        with pytest.raises(HistogramError):
            model_throughput_pdf(
                bank.get("Facebook"), np.random.default_rng(0), n_samples=0
            )
