"""Tests for the replication helpers."""

import pytest

from repro.analysis.replication import (
    MetricSummary,
    ReplicationError,
    replicate,
)


class TestReplicate:
    def test_deterministic_experiment_zero_spread(self):
        summary = replicate(lambda rng: {"x": 5.0}, n_replicas=4)
        assert summary["x"].mean == 5.0
        assert summary["x"].std == 0.0
        assert summary["x"].n == 4

    def test_replicas_use_independent_streams(self):
        summary = replicate(
            lambda rng: {"u": float(rng.random())}, n_replicas=10
        )
        assert summary["u"].std > 0.0
        assert 0.0 <= summary["u"].low < summary["u"].high <= 1.0

    def test_same_seed_is_reproducible(self):
        fn = lambda rng: {"u": float(rng.random())}
        a = replicate(fn, 5, seed=3)
        b = replicate(fn, 5, seed=3)
        assert a["u"].mean == b["u"].mean

    def test_different_seed_changes_samples(self):
        fn = lambda rng: {"u": float(rng.random())}
        a = replicate(fn, 5, seed=3)
        b = replicate(fn, 5, seed=4)
        assert a["u"].mean != b["u"].mean

    def test_mean_concentrates_with_replicas(self):
        fn = lambda rng: {"u": float(rng.normal(10.0, 1.0))}
        small = replicate(fn, 5, seed=0)
        large = replicate(fn, 50, seed=0)
        assert abs(large["u"].mean - 10.0) < abs(small["u"].mean - 10.0) + 0.5

    def test_too_few_replicas_rejected(self):
        with pytest.raises(ReplicationError):
            replicate(lambda rng: {"x": 1.0}, n_replicas=1)

    def test_inconsistent_metrics_rejected(self):
        calls = iter([{"a": 1.0}, {"b": 2.0}])

        with pytest.raises(ReplicationError):
            replicate(lambda rng: next(calls), n_replicas=2)

    def test_empty_metrics_rejected(self):
        with pytest.raises(ReplicationError):
            replicate(lambda rng: {}, n_replicas=2)

    def test_rows_rendering(self):
        summary = replicate(lambda rng: {"x": 1.0, "y": 2.0}, 3)
        rows = summary.rows()
        assert {row[0] for row in rows} == {"x", "y"}

    def test_summary_str(self):
        metric = MetricSummary(mean=1.234, std=0.1, low=1.1, high=1.4, n=5)
        assert "n=5" in str(metric)
