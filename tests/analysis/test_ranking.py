"""Tests for the service ranking and exponential-law fit (Fig 4)."""

import numpy as np
import pytest

from repro.analysis.metrics import MetricError
from repro.analysis.ranking import (
    fit_exponential_law,
    rank_services,
    top_k_session_fraction,
)
from repro.dataset.records import SERVICE_NAMES


class TestRankServices:
    def test_ranking_is_sorted_by_session_fraction(self, campaign):
        ranking = rank_services(campaign)
        fractions = [r.session_fraction for r in ranking]
        assert fractions == sorted(fractions, reverse=True)

    def test_ranks_are_one_based_and_dense(self, campaign):
        ranking = rank_services(campaign)
        assert [r.rank for r in ranking] == list(range(1, len(ranking) + 1))

    def test_facebook_tops_the_ranking(self, campaign):
        # Table 1: Facebook generates by far the most sessions.
        assert rank_services(campaign)[0].service == "Facebook"

    def test_fractions_sum_to_one(self, campaign):
        ranking = rank_services(campaign)
        assert sum(r.session_fraction for r in ranking) == pytest.approx(1.0)
        assert sum(r.traffic_fraction for r in ranking) == pytest.approx(1.0)

    def test_all_catalog_services_present(self, campaign):
        ranking = rank_services(campaign)
        assert {r.service for r in ranking} <= set(SERVICE_NAMES)


class TestExponentialLaw:
    def test_fit_on_exact_exponential_is_perfect(self):
        from repro.analysis.ranking import RankedService

        ranking = [
            RankedService(k, f"s{k}", 0.5 * np.exp(-0.3 * k), 0.0)
            for k in range(1, 20)
        ]
        fit = fit_exponential_law(ranking)
        assert fit.decay == pytest.approx(0.3, rel=1e-6)
        assert fit.amplitude == pytest.approx(0.5, rel=1e-6)
        assert fit.r2 == pytest.approx(1.0)

    def test_campaign_ranking_follows_exponential_law(self, campaign):
        # The paper reports R^2 ~ 0.97 for the measured ranking.
        fit = fit_exponential_law(rank_services(campaign))
        assert fit.r2 > 0.85
        assert fit.decay > 0

    def test_prediction_decreases_with_rank(self):
        from repro.analysis.ranking import ExponentialLawFit

        fit = ExponentialLawFit(amplitude=0.5, decay=0.2, r2=1.0)
        predictions = fit.predict([1, 5, 10])
        assert predictions[0] > predictions[1] > predictions[2]

    def test_too_few_services_raises(self):
        from repro.analysis.ranking import RankedService

        with pytest.raises(MetricError):
            fit_exponential_law(
                [RankedService(1, "a", 0.9, 0.0), RankedService(2, "b", 0.1, 0.0)]
            )


class TestTopK:
    def test_top_20_concentration(self, campaign):
        # The paper: top-20 services produce over 78 % of sessions.
        ranking = rank_services(campaign)
        assert top_k_session_fraction(ranking, 20) > 0.78

    def test_top_all_is_one(self, campaign):
        ranking = rank_services(campaign)
        assert top_k_session_fraction(ranking, len(ranking)) == pytest.approx(1.0)

    def test_monotone_in_k(self, campaign):
        ranking = rank_services(campaign)
        values = [top_k_session_fraction(ranking, k) for k in (1, 5, 10, 20)]
        assert values == sorted(values)

    def test_invalid_k_raises(self, campaign):
        with pytest.raises(MetricError):
            top_k_session_fraction(rank_services(campaign), 0)
