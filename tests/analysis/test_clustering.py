"""Tests for the centroid hierarchical clustering and silhouette score."""

import numpy as np
import pytest

from repro.analysis.clustering import (
    CentroidHierarchicalClustering,
    ClusteringError,
    silhouette_profile,
    silhouette_score,
)
from repro.analysis.emd import emd_matrix
from repro.analysis.histogram import LogHistogram


def gaussian_hist(mu, sigma=0.2):
    return LogHistogram.from_log_density(
        lambda u: np.exp(-0.5 * ((u - mu) / sigma) ** 2)
        / (sigma * np.sqrt(2 * np.pi))
    )


def two_group_pdfs():
    """Six PDFs forming two well-separated groups."""
    lows = [gaussian_hist(m) for m in (-1.1, -1.0, -0.9)]
    highs = [gaussian_hist(m) for m in (1.9, 2.0, 2.1)]
    return lows + highs


class TestClustering:
    def test_needs_at_least_two_items(self):
        with pytest.raises(ClusteringError):
            CentroidHierarchicalClustering([gaussian_hist(0.0)])

    def test_fit_produces_n_minus_one_merges(self):
        pdfs = two_group_pdfs()
        merges = CentroidHierarchicalClustering(pdfs).fit()
        assert len(merges) == len(pdfs) - 1

    def test_merge_distances_start_small(self):
        # The first merges join near-identical PDFs within a group.
        merges = CentroidHierarchicalClustering(two_group_pdfs()).fit()
        assert merges[0].distance < merges[-1].distance

    def test_two_clusters_separate_groups(self):
        pdfs = two_group_pdfs()
        labels = CentroidHierarchicalClustering(pdfs).labels(2)
        assert len(set(labels[:3])) == 1
        assert len(set(labels[3:])) == 1
        assert labels[0] != labels[5]

    def test_n_clusters_equal_items_is_identity(self):
        pdfs = two_group_pdfs()
        labels = CentroidHierarchicalClustering(pdfs).labels(len(pdfs))
        assert len(set(labels)) == len(pdfs)

    def test_one_cluster_joins_everything(self):
        pdfs = two_group_pdfs()
        labels = CentroidHierarchicalClustering(pdfs).labels(1)
        assert len(set(labels)) == 1

    def test_invalid_cut_raises(self):
        clustering = CentroidHierarchicalClustering(two_group_pdfs())
        with pytest.raises(ClusteringError):
            clustering.labels(0)
        with pytest.raises(ClusteringError):
            clustering.labels(7)

    def test_weights_align_with_histograms(self):
        with pytest.raises(ClusteringError):
            CentroidHierarchicalClustering(two_group_pdfs(), weights=[1.0])


class TestSilhouette:
    def test_well_separated_clusters_score_high(self):
        pdfs = two_group_pdfs()
        matrix = emd_matrix(pdfs)
        labels = np.array([0, 0, 0, 1, 1, 1])
        assert silhouette_score(matrix, labels) > 0.8

    def test_random_labels_score_low(self):
        pdfs = two_group_pdfs()
        matrix = emd_matrix(pdfs)
        labels = np.array([0, 1, 0, 1, 0, 1])
        assert silhouette_score(matrix, labels) < 0.2

    def test_single_cluster_raises(self):
        matrix = np.zeros((3, 3))
        with pytest.raises(ClusteringError):
            silhouette_score(matrix, np.zeros(3, dtype=int))

    def test_singletons_contribute_zero(self):
        matrix = np.array(
            [[0.0, 1.0, 5.0], [1.0, 0.0, 5.0], [5.0, 5.0, 0.0]]
        )
        labels = np.array([0, 0, 1])
        # Third item is a singleton with s = 0; others score high.
        score = silhouette_score(matrix, labels)
        assert 0.4 < score < 0.7

    def test_shape_mismatch_raises(self):
        with pytest.raises(ClusteringError):
            silhouette_score(np.zeros((2, 3)), np.array([0, 1]))


class TestSilhouetteProfile:
    def test_profile_covers_requested_levels(self):
        profile = silhouette_profile(two_group_pdfs(), max_clusters=4)
        assert [k for k, _ in profile] == [2, 3, 4]

    def test_profile_peaks_at_true_group_count(self):
        profile = dict(silhouette_profile(two_group_pdfs(), max_clusters=5))
        assert profile[2] == max(profile.values())

    def test_profile_score_drops_past_true_count(self):
        profile = dict(silhouette_profile(two_group_pdfs(), max_clusters=5))
        assert profile[4] < profile[2]
