"""Tests for the Fig 8 invariance analysis."""

import numpy as np
import pytest

from repro.analysis.comparisons import ComparisonError, invariance_report

SERVICES = ["Facebook", "Instagram", "SnapChat", "Netflix", "Youtube"]


@pytest.fixture(scope="module")
def report(campaign, network):
    from tests.conftest import CAMPAIGN_DAYS

    weekend = [d for d in range(CAMPAIGN_DAYS) if d % 7 in (5, 6)]
    return invariance_report(
        campaign, network, SERVICES, weekend_days=weekend, min_sessions=150
    )


class TestInvarianceReport:
    def test_all_tags_present(self, report):
        expected = {"Apps", "Days", "Regions", "Cities", "RATs", "Apps (4G)", "Apps (5G)"}
        assert expected <= set(report.emd_samples)
        assert expected <= set(report.sed_samples)

    def test_apps_pairwise_count(self, report):
        n = len(SERVICES)
        assert report.emd_samples["Apps"].size == n * (n - 1) // 2

    def test_inter_service_diversity_dominates_rats(self, report):
        # The paper's core finding: same-service cross-RAT distances are
        # negligible compared to inter-service distances.
        if report.emd_samples["RATs"].size:
            assert (
                np.median(report.emd_samples["Apps"])
                > 3 * np.median(report.emd_samples["RATs"])
            )

    def test_inter_service_diversity_dominates_regions(self, report):
        if report.emd_samples["Regions"].size:
            assert (
                np.median(report.emd_samples["Apps"])
                > 3 * np.median(report.emd_samples["Regions"])
            )

    def test_app_diversity_stable_across_rats(self, report):
        # Fig 8b: Apps (4G) and Apps (5G) distances match plain Apps.
        for tag in ("Apps (4G)", "Apps (5G)"):
            if report.emd_samples[tag].size:
                assert np.median(report.emd_samples[tag]) == pytest.approx(
                    np.median(report.emd_samples["Apps"]), rel=0.5
                )

    def test_distances_nonnegative(self, report):
        for samples in report.emd_samples.values():
            assert np.all(samples >= 0)
        for samples in report.sed_samples.values():
            assert np.all(samples >= 0)

    def test_too_few_services_raises(self, campaign, network):
        with pytest.raises(ComparisonError):
            invariance_report(
                campaign, network, ["Facebook"], weekend_days=[], min_sessions=1
            )
