"""Tests for zero-mean normalization of log-PDFs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.emd import emd
from repro.analysis.histogram import BIN_WIDTH, LogHistogram
from repro.analysis.normalization import center_of_mass, zero_mean, zero_mean_all


def gaussian_hist(mu, sigma=0.3):
    return LogHistogram.from_log_density(
        lambda u: np.exp(-0.5 * ((u - mu) / sigma) ** 2)
        / (sigma * np.sqrt(2 * np.pi))
    )


class TestZeroMean:
    def test_mean_is_zeroed(self):
        shifted = zero_mean(gaussian_hist(1.7))
        assert shifted.mean_log10() == pytest.approx(0.0, abs=BIN_WIDTH)

    def test_negative_mean_is_zeroed(self):
        shifted = zero_mean(gaussian_hist(-2.1))
        assert shifted.mean_log10() == pytest.approx(0.0, abs=BIN_WIDTH)

    def test_mass_is_conserved(self):
        shifted = zero_mean(gaussian_hist(2.5))
        assert shifted.total_mass == pytest.approx(1.0, abs=1e-9)

    def test_shape_is_preserved(self):
        original = gaussian_hist(1.5, sigma=0.4)
        shifted = zero_mean(original)
        assert shifted.std_log10() == pytest.approx(0.4, abs=0.02)

    def test_already_centered_is_unchanged(self):
        original = gaussian_hist(0.0)
        shifted = zero_mean(original)
        assert np.allclose(shifted.density, original.normalized().density)

    def test_removes_scale_difference_for_emd(self):
        # Same shape at different scales becomes EMD-identical.
        a, b = gaussian_hist(-1.0), gaussian_hist(2.0)
        assert emd(zero_mean(a), zero_mean(b)) == pytest.approx(0.0, abs=2 * BIN_WIDTH)

    def test_center_of_mass_matches_mean(self):
        hist = gaussian_hist(0.8)
        assert center_of_mass(hist) == pytest.approx(hist.mean_log10())

    def test_zero_mean_all_applies_elementwise(self):
        hists = [gaussian_hist(m) for m in (-1.0, 0.5, 2.0)]
        for shifted in zero_mean_all(hists):
            assert shifted.mean_log10() == pytest.approx(0.0, abs=BIN_WIDTH)


@given(mu=st.floats(min_value=-2.5, max_value=3.5))
@settings(max_examples=25, deadline=None)
def test_property_zero_mean_idempotent(mu):
    """zero_mean applied twice equals once."""
    once = zero_mean(gaussian_hist(mu))
    twice = zero_mean(once)
    assert np.allclose(once.density, twice.density)
