"""Tests for the earth mover distance on log-volume PDFs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.emd import emd, emd_matrix
from repro.analysis.histogram import BIN_WIDTH, LogHistogram


def gaussian_hist(mu, sigma=0.3):
    return LogHistogram.from_log_density(
        lambda u: np.exp(-0.5 * ((u - mu) / sigma) ** 2)
        / (sigma * np.sqrt(2 * np.pi))
    )


class TestEmd:
    def test_identical_pdfs_have_zero_distance(self):
        hist = gaussian_hist(0.5)
        assert emd(hist, hist) == 0.0

    def test_symmetry(self):
        a, b = gaussian_hist(-0.5), gaussian_hist(1.0)
        assert emd(a, b) == pytest.approx(emd(b, a))

    def test_shift_equals_distance(self):
        # EMD between two identical shapes shifted by d decades is d.
        a, b = gaussian_hist(0.0), gaussian_hist(1.0)
        assert emd(a, b) == pytest.approx(1.0, abs=0.02)

    def test_monotone_in_shift(self):
        base = gaussian_hist(0.0)
        distances = [emd(base, gaussian_hist(s)) for s in (0.2, 0.5, 1.0, 2.0)]
        assert distances == sorted(distances)

    def test_triangle_inequality(self):
        a, b, c = gaussian_hist(-1.0), gaussian_hist(0.0), gaussian_hist(1.5)
        assert emd(a, c) <= emd(a, b) + emd(b, c) + 1e-9

    def test_insensitive_to_input_normalization(self):
        a = gaussian_hist(0.3)
        scaled = LogHistogram(a.density * 7.0)
        assert emd(a, scaled) == pytest.approx(0.0, abs=1e-12)


class TestEmdMatrix:
    def test_matrix_shape_and_diagonal(self):
        hists = [gaussian_hist(m) for m in (-1.0, 0.0, 1.0)]
        matrix = emd_matrix(hists)
        assert matrix.shape == (3, 3)
        assert np.allclose(np.diag(matrix), 0.0)

    def test_matrix_symmetric(self):
        hists = [gaussian_hist(m) for m in (-1.0, 0.2, 0.9, 2.0)]
        matrix = emd_matrix(hists)
        assert np.allclose(matrix, matrix.T)

    def test_matrix_matches_pairwise_calls(self):
        hists = [gaussian_hist(m) for m in (-0.5, 0.5, 1.5)]
        matrix = emd_matrix(hists)
        for i in range(3):
            for j in range(3):
                assert matrix[i, j] == pytest.approx(emd(hists[i], hists[j]))


@given(
    mu_a=st.floats(min_value=-2, max_value=3),
    mu_b=st.floats(min_value=-2, max_value=3),
)
@settings(max_examples=25, deadline=None)
def test_property_emd_nonnegative_and_symmetric(mu_a, mu_b):
    """EMD is a symmetric non-negative dissimilarity."""
    a, b = gaussian_hist(mu_a), gaussian_hist(mu_b)
    d = emd(a, b)
    assert d >= 0
    assert d == pytest.approx(emd(b, a), rel=1e-9, abs=1e-12)
    # And approximately the mean shift for equal shapes.
    assert d == pytest.approx(abs(mu_a - mu_b), abs=3 * BIN_WIDTH)


class TestScipyCrossCheck:
    def test_emd_matches_scipy_wasserstein_on_samples(self):
        # Our closed-form grid EMD equals scipy's sample-based Wasserstein
        # distance (up to binning resolution).
        from scipy.stats import wasserstein_distance

        rng = np.random.default_rng(0)
        a = rng.normal(0.2, 0.4, 40000)   # log10-volumes
        b = rng.normal(0.9, 0.3, 40000)
        ours = emd(
            LogHistogram.from_volumes(10.0**a),
            LogHistogram.from_volumes(10.0**b),
        )
        theirs = wasserstein_distance(a, b)
        assert ours == pytest.approx(theirs, abs=3 * BIN_WIDTH)
