"""Tests for the log-binned PDF container."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.histogram import (
    BIN_WIDTH,
    LOG_CENTERS,
    LOG_GRID,
    LOG_U_MAX,
    LOG_U_MIN,
    N_BINS,
    HistogramError,
    LogHistogram,
)


def gaussian_density(mu, sigma):
    return lambda u: np.exp(-0.5 * ((u - mu) / sigma) ** 2) / (
        sigma * np.sqrt(2 * np.pi)
    )


class TestGrid:
    def test_grid_spans_configured_range(self):
        assert LOG_GRID[0] == LOG_U_MIN
        assert LOG_GRID[-1] == LOG_U_MAX

    def test_grid_has_uniform_bins(self):
        widths = np.diff(LOG_GRID)
        assert np.allclose(widths, BIN_WIDTH)

    def test_centers_between_edges(self):
        assert np.all(LOG_CENTERS > LOG_GRID[:-1])
        assert np.all(LOG_CENTERS < LOG_GRID[1:])


class TestConstruction:
    def test_empty_histogram_has_no_mass(self):
        assert LogHistogram.empty().is_empty
        assert LogHistogram.empty().total_mass == 0.0

    def test_rejects_wrong_shape(self):
        with pytest.raises(HistogramError):
            LogHistogram(np.zeros(N_BINS + 1))

    def test_rejects_negative_density(self):
        density = np.zeros(N_BINS)
        density[5] = -1.0
        with pytest.raises(HistogramError):
            LogHistogram(density)

    def test_rejects_nan_density(self):
        density = np.zeros(N_BINS)
        density[5] = np.nan
        with pytest.raises(HistogramError):
            LogHistogram(density)

    def test_from_volumes_is_normalized(self):
        hist = LogHistogram.from_volumes(np.array([1.0, 2.0, 5.0, 10.0]))
        assert hist.total_mass == pytest.approx(1.0)
        assert hist.n_samples == 4

    def test_from_volumes_rejects_nonpositive(self):
        with pytest.raises(HistogramError):
            LogHistogram.from_volumes(np.array([1.0, 0.0]))

    def test_from_volumes_empty_input(self):
        assert LogHistogram.from_volumes(np.array([])).is_empty

    def test_from_volumes_clips_outliers_conserving_mass(self):
        hist = LogHistogram.from_volumes(np.array([1e-9, 1e9]))
        assert hist.total_mass == pytest.approx(1.0)

    def test_from_log_density_matches_callable(self):
        hist = LogHistogram.from_log_density(gaussian_density(0.5, 0.4))
        assert hist.total_mass == pytest.approx(1.0, abs=1e-3)


class TestMoments:
    def test_mean_of_gaussian_density(self):
        hist = LogHistogram.from_log_density(gaussian_density(0.7, 0.3))
        assert hist.mean_log10() == pytest.approx(0.7, abs=0.01)

    def test_std_of_gaussian_density(self):
        hist = LogHistogram.from_log_density(gaussian_density(0.7, 0.3))
        assert hist.std_log10() == pytest.approx(0.3, abs=0.01)

    def test_skewness_of_symmetric_density_is_zero(self):
        hist = LogHistogram.from_log_density(gaussian_density(0.0, 0.5))
        assert hist.skewness_log10() == pytest.approx(0.0, abs=0.02)

    def test_mode_of_gaussian_density(self):
        hist = LogHistogram.from_log_density(gaussian_density(1.0, 0.2))
        assert np.log10(hist.mode_mb()) == pytest.approx(1.0, abs=BIN_WIDTH)

    def test_mode_of_empty_raises(self):
        with pytest.raises(HistogramError):
            LogHistogram.empty().mode_mb()

    def test_mean_mb_exceeds_median_for_lognormal(self):
        # E[X] > median for any log-normal.
        hist = LogHistogram.from_log_density(gaussian_density(0.0, 0.5))
        assert hist.mean_mb() > 1.0


class TestCdfAndSampling:
    def test_cdf_monotone_and_ends_at_one(self):
        hist = LogHistogram.from_log_density(gaussian_density(0.3, 0.5))
        cdf = hist.cdf()
        assert np.all(np.diff(cdf) >= 0)
        assert cdf[-1] == pytest.approx(1.0)

    def test_quantile_bounds(self):
        hist = LogHistogram.from_log_density(gaussian_density(0.3, 0.5))
        assert hist.quantile_mb(0.05) < hist.quantile_mb(0.95)

    def test_median_of_gaussian_density(self):
        hist = LogHistogram.from_log_density(gaussian_density(1.2, 0.3))
        assert np.log10(hist.quantile_mb(0.5)) == pytest.approx(1.2, abs=0.05)

    def test_quantile_rejects_out_of_range(self):
        hist = LogHistogram.from_log_density(gaussian_density(0.0, 0.3))
        with pytest.raises(HistogramError):
            hist.quantile_mb(1.5)

    def test_sampling_recovers_distribution(self):
        hist = LogHistogram.from_log_density(gaussian_density(0.5, 0.4))
        samples = hist.sample_mb(np.random.default_rng(0), size=20000)
        assert np.log10(samples).mean() == pytest.approx(0.5, abs=0.02)
        assert np.log10(samples).std() == pytest.approx(0.4, abs=0.02)

    def test_sampling_empty_raises(self):
        with pytest.raises(HistogramError):
            LogHistogram.empty().sample_mb(np.random.default_rng(0))

    def test_round_trip_samples_to_histogram(self):
        source = LogHistogram.from_log_density(gaussian_density(0.2, 0.6))
        samples = source.sample_mb(np.random.default_rng(1), size=50000)
        rebuilt = LogHistogram.from_volumes(samples)
        assert rebuilt.mean_log10() == pytest.approx(source.mean_log10(), abs=0.02)


class TestAveraging:
    def test_weighted_average_of_identical_is_identity(self):
        hist = LogHistogram.from_log_density(gaussian_density(0.0, 0.5))
        avg = LogHistogram.weighted_average([hist, hist], [1.0, 3.0])
        assert np.allclose(avg.density, hist.normalized().density)

    def test_weighted_average_uses_weights(self):
        a = LogHistogram.from_log_density(gaussian_density(-1.0, 0.2))
        b = LogHistogram.from_log_density(gaussian_density(1.0, 0.2))
        avg = LogHistogram.weighted_average([a, b], [3.0, 1.0])
        assert avg.mean_log10() == pytest.approx(-0.5, abs=0.02)

    def test_weighted_average_defaults_to_n_samples(self):
        a = LogHistogram.from_volumes(np.full(300, 0.1))
        b = LogHistogram.from_volumes(np.full(100, 10.0))
        avg = LogHistogram.weighted_average([a, b])
        # 3:1 weighting towards 0.1 MB (u = -1).
        assert avg.mean_log10() == pytest.approx(-0.5, abs=BIN_WIDTH)

    def test_weighted_average_rejects_mismatched_weights(self):
        hist = LogHistogram.from_log_density(gaussian_density(0.0, 0.5))
        with pytest.raises(HistogramError):
            LogHistogram.weighted_average([hist], [1.0, 2.0])

    def test_weighted_average_zero_weights_gives_empty(self):
        hist = LogHistogram.from_log_density(gaussian_density(0.0, 0.5))
        assert LogHistogram.weighted_average([hist], [0.0]).is_empty

    def test_scaled_by_zero_is_empty(self):
        hist = LogHistogram.from_log_density(gaussian_density(0.0, 0.5))
        assert hist.scaled(0.0).is_empty

    def test_scaled_rejects_negative(self):
        hist = LogHistogram.from_log_density(gaussian_density(0.0, 0.5))
        with pytest.raises(HistogramError):
            hist.scaled(-1.0)

    def test_residual_against_is_nonnegative(self):
        a = LogHistogram.from_log_density(gaussian_density(0.0, 0.3))
        b = LogHistogram.from_log_density(gaussian_density(0.5, 0.3))
        residual = a.residual_against(b)
        assert np.all(residual >= 0)


class TestNormalization:
    def test_normalized_total_mass(self):
        density = np.zeros(N_BINS)
        density[100:110] = 3.0
        hist = LogHistogram(density)
        assert hist.normalized().total_mass == pytest.approx(1.0)

    def test_normalize_empty_raises(self):
        with pytest.raises(HistogramError):
            LogHistogram.empty().normalized()


@given(
    mu=st.floats(min_value=-1.0, max_value=2.0),
    sigma=st.floats(min_value=0.1, max_value=0.6),
)
@settings(max_examples=25, deadline=None)
def test_property_gaussian_moments_recovered(mu, sigma):
    """Moment extraction inverts density construction.

    ``mu``/``sigma`` are constrained so the density fits well inside the
    grid — a Gaussian overlapping a grid edge is clipped and its moments
    legitimately shift.
    """
    hist = LogHistogram.from_log_density(gaussian_density(mu, sigma))
    assert abs(hist.mean_log10() - mu) < 0.05
    assert abs(hist.std_log10() - sigma) < 0.05


@given(
    volumes=st.lists(
        st.floats(min_value=1e-3, max_value=1e4), min_size=1, max_size=200
    )
)
@settings(max_examples=25, deadline=None)
def test_property_from_volumes_always_normalized(volumes):
    """Any positive sample set yields a unit-mass PDF."""
    hist = LogHistogram.from_volumes(np.array(volumes))
    assert hist.total_mass == pytest.approx(1.0)
    assert hist.n_samples == len(volumes)


class TestFromLogDensityClipping:
    def test_negative_density_values_clipped(self):
        # A callable returning negative values (e.g. a residual difference)
        # is clipped to a valid density rather than rejected.
        hist = LogHistogram.from_log_density(lambda u: np.sin(u))
        assert np.all(hist.density >= 0)

    def test_quantile_zero_returns_grid_floor(self):
        hist = LogHistogram.from_log_density(gaussian_density(0.0, 0.3))
        assert hist.quantile_mb(0.0) <= hist.quantile_mb(0.5)
