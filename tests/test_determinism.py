"""Seed determinism of every stochastic entry point.

Reproducibility is a core promise of the library ("implicitly enable
verifiability and reproducibility of results", Section 1): equal seeds
must give byte-equal outputs, different seeds different ones, and no
component may touch global random state.
"""

import numpy as np

from repro.core.model_bank import ModelBank
from repro.core.packet_bridge import packetize_session
from repro.core.service_mix import ServiceMix
from repro.dataset.appsessions import expand_app_sessions
from repro.dataset.network import Network, NetworkConfig
from repro.dataset.services import BehaviourClass
from repro.dataset.simulator import SimulationConfig, simulate
from repro.usecases.vran.sources import generate_skeleton
from repro.usecases.vran.topology import VranTopology


def twin_rngs(seed=7):
    return np.random.default_rng(seed), np.random.default_rng(seed)


class TestSeedDeterminism:
    def test_network_construction(self):
        a = Network(NetworkConfig(n_bs=30), np.random.default_rng(1))
        b = Network(NetworkConfig(n_bs=30), np.random.default_rng(1))
        for sa, sb in zip(a, b):
            assert sa == sb

    def test_simulation(self, network):
        rng_a, rng_b = twin_rngs()
        config = SimulationConfig(n_days=1)
        ta = simulate(network, config, rng_a)
        tb = simulate(network, config, rng_b)
        assert np.array_equal(ta.volume_mb, tb.volume_mb)
        assert np.array_equal(ta.service_idx, tb.service_idx)

    def test_simulation_seed_sensitivity(self, network):
        config = SimulationConfig(n_days=1)
        ta = simulate(network, config, np.random.default_rng(1))
        tb = simulate(network, config, np.random.default_rng(2))
        assert len(ta) != len(tb) or not np.array_equal(
            ta.volume_mb, tb.volume_mb
        )

    def test_model_sampling(self, bank):
        rng_a, rng_b = twin_rngs()
        model = bank.get("Netflix")
        a = model.sample_sessions(rng_a, 500)
        b = model.sample_sessions(rng_b, 500)
        assert np.array_equal(a.volumes_mb, b.volumes_mb)

    def test_bank_fit_is_deterministic(self, campaign):
        bank_a = ModelBank.fit_from_table(campaign, services=["Deezer"])
        bank_b = ModelBank.fit_from_table(campaign, services=["Deezer"])
        assert bank_a.to_json() == bank_b.to_json()

    def test_skeleton_generation(self, campaign, bank):
        mix = ServiceMix.from_measurements(campaign).restricted_to(
            bank.services()
        )
        rng_a, rng_b = twin_rngs()
        topo = VranTopology(n_es=2, n_ru_per_es=2)
        sk_a = generate_skeleton(topo, mix, rng_a, 300.0)
        sk_b = generate_skeleton(topo, mix, rng_b, 300.0)
        assert np.array_equal(sk_a.t_start_s, sk_b.t_start_s)
        assert np.array_equal(sk_a.service_idx, sk_b.service_idx)

    def test_packetization(self):
        rng_a, rng_b = twin_rngs()
        a = packetize_session(2.0, 120.0, BehaviourClass.MESSAGING, rng_a)
        b = packetize_session(2.0, 120.0, BehaviourClass.MESSAGING, rng_b)
        assert np.array_equal(a.timestamps_s, b.timestamps_s)
        assert np.array_equal(a.sizes_bytes, b.sizes_bytes)

    def test_app_session_expansion(self):
        rng_a, rng_b = twin_rngs()
        minutes = np.arange(20)
        zeros = np.zeros(20, dtype=int)
        ta = expand_app_sessions("Facebook", minutes, zeros, zeros, rng_a)
        tb = expand_app_sessions("Facebook", minutes, zeros, zeros, rng_b)
        assert np.array_equal(ta.flows.volume_mb, tb.flows.volume_mb)
        assert np.array_equal(ta.app_id, tb.app_id)

    def test_no_global_random_state_usage(self, network):
        # Identical explicit generators must be unaffected by reseeding the
        # legacy global state in between.
        config = SimulationConfig(n_days=1)
        np.random.seed(0)
        ta = simulate(network, config, np.random.default_rng(5))
        np.random.seed(12345)
        tb = simulate(network, config, np.random.default_rng(5))
        assert np.array_equal(ta.volume_mb, tb.volume_mb)

    def test_simulation_int_seed(self, network):
        # An explicit integer root seed is a first-class entry point (the
        # CLI uses it so cache keys stay stable).
        config = SimulationConfig(n_days=1)
        ta = simulate(network, config, 7)
        tb = simulate(network, config, 7)
        assert np.array_equal(ta.volume_mb, tb.volume_mb)
        assert np.array_equal(ta.bs_id, tb.bs_id)

    def test_use_case_experiment_determinism(self, campaign):
        from repro.usecases.vran import VranScenario, VranTopology as VT
        from repro.usecases.vran import run_vran_experiment

        scenario = VranScenario(
            topology=VT(n_es=1, n_ru_per_es=2), horizon_s=120.0, warmup_s=30.0
        )
        out_a = run_vran_experiment(
            campaign, np.random.default_rng(3), scenario, strategies=("model",)
        )
        out_b = run_vran_experiment(
            campaign, np.random.default_rng(3), scenario, strategies=("model",)
        )
        assert np.array_equal(
            out_a.traces["model"].power_w, out_b.traces["model"].power_w
        )


class TestOrderIndependence:
    """Campaign output must not depend on unit order or worker count.

    Each (day, BS) work unit draws from its own spawned seed stream, so
    running units in any order — or across any number of processes — must
    reassemble into the exact same campaign table.
    """

    def test_permuted_unit_order(self, network):
        from repro.dataset.simulator import (
            campaign_units,
            decile_peer_map,
            simulate_bs_day,
            unit_seed,
        )

        config = SimulationConfig(n_days=2)
        root_seed = 7
        reference = simulate(network, config, root_seed)

        units = campaign_units(network, config)
        peers = decile_peer_map(network)
        shuffled = list(units)
        np.random.default_rng(99).shuffle(shuffled)
        pieces = {}
        for day, bs_id in shuffled:
            station = network.station(bs_id)
            rng = np.random.default_rng(unit_seed(root_seed, day, bs_id))
            pieces[(day, bs_id)] = simulate_bs_day(
                station, day, config, peers[station.decile], rng
            )
        # Reassemble in canonical order: identical to the one-shot run.
        from repro.dataset.records import SessionTable

        reassembled = SessionTable.concatenate(
            [pieces[unit] for unit in units]
        )
        assert len(reassembled) == len(reference)
        assert np.array_equal(reassembled.volume_mb, reference.volume_mb)
        assert np.array_equal(reassembled.bs_id, reference.bs_id)
        assert np.array_equal(reassembled.service_idx, reference.service_idx)

    def test_serial_vs_parallel_simulation(self, network):
        from repro.pipeline import make_executor

        config = SimulationConfig(n_days=1)
        serial = simulate(network, config, 7)
        with make_executor(2) as executor:
            parallel = simulate(network, config, 7, executor=executor)
        assert len(serial) == len(parallel)
        assert np.array_equal(serial.volume_mb, parallel.volume_mb)
        assert np.array_equal(serial.duration_s, parallel.duration_s)
        assert np.array_equal(serial.bs_id, parallel.bs_id)

    def test_serial_vs_parallel_streaming(self, network):
        from repro.dataset.streaming import simulate_aggregated
        from repro.pipeline import make_executor

        config = SimulationConfig(n_days=1)
        serial = simulate_aggregated(network, config, 7)
        with make_executor(2) as executor:
            parallel = simulate_aggregated(network, config, 7, executor=executor)
        assert serial.n_sessions == parallel.n_sessions
        assert np.array_equal(serial._traffic_mb, parallel._traffic_mb)

    def test_parallel_fit_matches_serial(self, campaign):
        from repro.pipeline import make_executor

        serial = ModelBank.fit_from_table(campaign, services=["Facebook"])
        with make_executor(2) as executor:
            parallel = ModelBank.fit_from_table(
                campaign, services=["Facebook"], executor=executor
            )
        assert serial.to_json() == parallel.to_json()
