"""Trace provenance and request-level RED telemetry on the serve stack.

The observability layer must be strictly out-of-band: these tests pin
that responses stay byte-identical with or without telemetry attached,
while the ``X-Repro-Trace`` header, the ``/metrics`` exposition and the
``access`` events faithfully report what the service did.
"""

from __future__ import annotations

from repro.obs.expose import CONTENT_TYPE, parse_exposition
from repro.obs.schema import validate_events_file
from repro.obs.telemetry import Telemetry
from repro.pipeline.context import mint_trace_id
from repro.serve import ServeApp

from .conftest import SEED, as_json, wsgi_get

TRACE = mint_trace_id(SEED)


def ingest_with_provenance(store, aggregate, name="camp"):
    """Ingest the shared aggregate under a provenance envelope."""
    payload = aggregate.to_dict()
    payload["provenance"] = {"trace_id": TRACE}
    return store.ingest_aggregate(name, payload)


class TestTraceProvenance:
    def test_envelope_rides_outside_the_canonical_payload(
        self, store, aggregate
    ):
        digest = ingest_with_provenance(store, aggregate)
        # from_dict ignored the envelope: the stored bytes are canonical.
        assert digest == aggregate.digest()
        assert store.trace("camp") == TRACE

    def test_campaign_listing_carries_the_trace(self, store, aggregate):
        ingest_with_provenance(store, aggregate)
        app = ServeApp(store)
        status, _, body = wsgi_get(app, "/v1/campaigns")
        assert status == 200
        (entry,) = as_json(body)["campaigns"]
        assert entry["trace"] == TRACE

    def test_traced_routes_answer_with_the_header(self, store, aggregate):
        ingest_with_provenance(store, aggregate)
        app = ServeApp(store)
        for path in (
            "/v1/services/shares",
            "/v1/pdf/volume",
            "/v1/pdf/duration",
            "/v1/fidelity",
        ):
            status, headers, _ = wsgi_get(app, path, "campaign=camp")
            assert status == 200
            assert headers["X-Repro-Trace"] == TRACE

    def test_304_responses_keep_the_header(self, store, aggregate):
        ingest_with_provenance(store, aggregate)
        app = ServeApp(store)
        _, first, _ = wsgi_get(app, "/v1/fidelity", "campaign=camp")
        status, headers, body = wsgi_get(
            app,
            "/v1/fidelity",
            "campaign=camp",
            headers={"If-None-Match": first["ETag"]},
        )
        assert status == 304 and body == b""
        assert headers["X-Repro-Trace"] == TRACE

    def test_no_provenance_means_no_header(self, store, aggregate):
        store.ingest_aggregate("camp", aggregate.to_dict())
        app = ServeApp(store)
        status, headers, _ = wsgi_get(app, "/v1/fidelity", "campaign=camp")
        assert status == 200
        assert "X-Repro-Trace" not in headers
        assert store.trace("camp") is None

    def test_explicit_trace_id_overrides_the_payload(self, store, aggregate):
        payload = aggregate.to_dict()
        payload["provenance"] = {"trace_id": "overridden"}
        store.ingest_aggregate("camp", payload, trace_id=TRACE)
        assert store.trace("camp") == TRACE

    def test_telemetry_never_changes_a_response_byte(
        self, store, aggregate, tmp_path
    ):
        ingest_with_provenance(store, aggregate)
        plain = ServeApp(store)
        telemetry = Telemetry(directory=tmp_path, verbosity=0)
        instrumented = ServeApp(store, telemetry=telemetry)
        for path, query in (
            ("/v1/campaigns", ""),
            ("/v1/services/shares", "campaign=camp"),
            ("/v1/fidelity", "campaign=camp"),
        ):
            status_a, headers_a, body_a = wsgi_get(plain, path, query)
            status_b, headers_b, body_b = wsgi_get(instrumented, path, query)
            assert (status_a, body_a) == (status_b, body_b)
            assert headers_a == headers_b


class TestMetricsEndpoint:
    def test_exposition_reports_red_series(self, store, aggregate):
        ingest_with_provenance(store, aggregate)
        app = ServeApp(store)
        wsgi_get(app, "/v1/services/shares", "campaign=camp")
        wsgi_get(app, "/v1/campaigns")
        wsgi_get(app, "/v1/nope")  # 404 gets its own status label
        status, headers, body = wsgi_get(app, "/metrics")
        assert status == 200
        assert headers["Content-Type"] == CONTENT_TYPE
        text = body.decode("utf-8")
        families = parse_exposition(text)
        assert families["repro_serve_requests_total"]["type"] == "counter"
        assert (
            families["repro_serve_request_seconds"]["type"] == "histogram"
        )
        assert 'route="/v1/services/shares"' in text
        assert 'status="404"' in text
        # The request loop is idle while we scrape, so in-flight counts
        # only the scrape itself.
        assert "repro_serve_inflight 1" in text

    def test_head_returns_headers_only(self, store):
        app = ServeApp(store)
        status, headers, body = wsgi_get(app, "/metrics", method="HEAD")
        assert status == 200 and body == b""
        assert int(headers["Content-Length"]) > 0

    def test_post_rejected(self, store):
        app = ServeApp(store)
        status, _, _ = wsgi_get(app, "/metrics", method="POST")
        assert status == 405

    def test_metrics_route_measures_itself(self, store):
        app = ServeApp(store)
        wsgi_get(app, "/metrics")
        _, _, body = wsgi_get(app, "/metrics")
        assert 'route="/metrics"' in body.decode("utf-8")


class TestAccessEvents:
    def test_requests_stream_schema_valid_access_events(
        self, store, aggregate, tmp_path
    ):
        ingest_with_provenance(store, aggregate)
        telemetry = Telemetry(directory=tmp_path, verbosity=0)
        app = ServeApp(store, telemetry=telemetry)
        with telemetry.span("serve:test", kind="serve"):
            wsgi_get(app, "/v1/services/shares", "campaign=camp")
            wsgi_get(app, "/v1/campaigns")
        telemetry.finalize(command="serve")
        counts = validate_events_file(tmp_path / "events.jsonl")
        assert counts["access"] == 2

    def test_access_events_carry_the_resolved_trace(
        self, store, aggregate, tmp_path
    ):
        import json

        ingest_with_provenance(store, aggregate)
        telemetry = Telemetry(directory=tmp_path, verbosity=0)
        app = ServeApp(store, telemetry=telemetry)
        with telemetry.span("serve:test", kind="serve"):
            wsgi_get(app, "/v1/fidelity", "campaign=camp")
            wsgi_get(app, "/v1/campaigns")
        telemetry.finalize(command="serve")  # flush the buffered sink
        events = [
            json.loads(line)
            for line in (tmp_path / "events.jsonl").read_text().splitlines()
            if '"access"' in line
        ]
        traced = {e["route"]: e["trace"] for e in events}
        assert traced["/v1/fidelity"] == TRACE
        assert traced["/v1/campaigns"] is None
