"""OpenAPI spec: sync with the checked-in file, live-response conformance.

Mirrors the telemetry-schema discipline (``tests/obs/test_schema.py``):
``schemas/openapi-serve.json`` is generated from
:func:`repro.serve.openapi.openapi_spec` and committed; drifting the code
without regenerating the file fails here, not in a consumer.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.serve import ServeApp, openapi_spec, validate_response
from repro.serve.openapi import SPEC_PATH, render_spec

from .conftest import as_json, wsgi_get, wsgi_post

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestSpecFile:
    def test_checked_in_spec_is_current(self):
        """Regenerate with ``python -m repro.serve.openapi`` on mismatch."""
        committed = (REPO_ROOT / SPEC_PATH).read_text(encoding="utf-8")
        assert committed == render_spec()

    def test_spec_shape(self):
        spec = openapi_spec()
        assert spec["openapi"].startswith("3.1")
        for path in (
            "/v1/campaigns",
            "/v1/services/shares",
            "/v1/pdf/volume",
            "/v1/pdf/duration",
            "/v1/arrivals/deciles",
            "/v1/fidelity",
            "/v1/submit",
        ):
            assert path in spec["paths"], path

    def test_every_get_documents_304(self):
        """Every ETagged GET documents 304; /metrics is live, un-ETagged."""
        spec = openapi_spec()
        for path, item in spec["paths"].items():
            if "get" in item and path != "/metrics":
                assert "304" in item["get"]["responses"], path

    def test_spec_covers_served_routes(self):
        spec = openapi_spec()
        assert "/v1/openapi.json" in spec["paths"]
        assert "/metrics" in spec["paths"]


class TestLiveConformance:
    TOKEN = "spec-token"

    @pytest.fixture()
    def app(self, store, aggregate, bank, tmp_path):
        from repro.core.arrivals import ArrivalModel
        from repro.io.params import save_release

        store.ingest_aggregate("camp", aggregate.to_dict())
        store.ingest_manifest("camp", {"run_id": "r1"})
        release = tmp_path / "release.json"
        save_release(
            release,
            bank,
            {"d1": ArrivalModel(peak_mu=2.0, peak_sigma=0.5, night_scale=0.4)},
        )
        store.ingest_release(release)
        return ServeApp(store, token=self.TOKEN)

    @pytest.mark.parametrize(
        "path",
        [
            "/v1/campaigns",
            "/v1/services/shares",
            "/v1/pdf/volume",
            "/v1/pdf/duration",
            "/v1/arrivals/deciles",
            "/v1/fidelity",
        ],
    )
    def test_get_responses_conform(self, app, path):
        status, _, body = wsgi_get(app, path)
        assert status == 200
        validate_response(path, 200, as_json(body))

    def test_paginated_shares_conform(self, app):
        status, _, body = wsgi_get(
            app, "/v1/services/shares", query="offset=0&limit=1"
        )
        assert status == 200
        validate_response("/v1/services/shares", 200, as_json(body))

    def test_not_modified_conforms(self, app):
        _, headers, _ = wsgi_get(app, "/v1/fidelity")
        status, _, body = wsgi_get(
            app, "/v1/fidelity", headers={"If-None-Match": headers["ETag"]}
        )
        assert status == 304
        validate_response("/v1/fidelity", 304, None)

    def test_submit_result_conforms(self, app, aggregate):
        line = json.dumps(
            {
                "type": "aggregate",
                "campaign": "fresh",
                "digest": aggregate.digest(),
                "payload": aggregate.to_dict(),
            }
        ).encode("utf-8")
        status, _, body = wsgi_post(
            app,
            "/v1/submit",
            line,
            headers={"Authorization": f"Bearer {self.TOKEN}"},
        )
        assert status == 200
        validate_response("/v1/submit", 200, as_json(body), method="post")

    def test_error_responses_conform(self, app):
        status, _, body = wsgi_get(
            app, "/v1/fidelity", query="campaign=ghost"
        )
        assert status == 404
        validate_response("/v1/fidelity", 404, as_json(body))

    def test_nonconforming_payload_rejected(self):
        with pytest.raises(ValueError):
            validate_response(
                "/v1/pdf/volume", 200, {"campaign": "c"}
            )
