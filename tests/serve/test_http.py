"""The /v1 query API: correctness, caching, auth, concurrency.

The float-identity tests are the serving layer's reason to exist: a value
read off the HTTP API must equal — bit for bit — what the batch pipeline
computes from the same sketches.  ``json.dumps`` emits shortest-repr
doubles, which round-trip exactly, so equality here is ``==`` on floats,
never ``pytest.approx``.
"""

from __future__ import annotations

import json
import threading
import urllib.request

import pytest

from repro.campaign.fidelity import evaluate_aggregate
from repro.dataset.records import SERVICE_NAMES
from repro.serve import ServeApp, make_server

from .conftest import as_json, wsgi_get, wsgi_post

TOKEN = "test-token-123"


@pytest.fixture()
def app(store, aggregate):
    store.ingest_aggregate("camp", aggregate.to_dict())
    return ServeApp(store, token=TOKEN)


def submit_line(aggregate, name="camp"):
    return json.dumps(
        {
            "type": "aggregate",
            "campaign": name,
            "digest": aggregate.digest(),
            "payload": aggregate.to_dict(),
        }
    ).encode("utf-8")


class TestFloatIdentity:
    def test_shares_match_sketch_derivation(self, app, aggregate):
        status, _, body = wsgi_get(app, "/v1/services/shares")
        assert status == 200
        document = as_json(body)
        shares = aggregate.shares_table()
        assert [s["service"] for s in document["services"]] == list(
            SERVICE_NAMES
        )
        for entry in document["services"]:
            session_share, traffic_share = shares[entry["service"]]
            assert entry["session_share"] == session_share
            assert entry["traffic_share"] == traffic_share
        assert document["total_volume_mb"] == aggregate.total_volume_mb()

    def test_volume_pdf_matches_sketch_derivation(self, app, aggregate):
        status, _, body = wsgi_get(app, "/v1/pdf/volume")
        assert status == 200
        document = as_json(body)
        assert document["density"] == [
            float(d) for d in aggregate.volume_pdf()
        ]
        assert document["samples"] == aggregate.volume_hist.total

    def test_duration_pdf_matches_sketch_derivation(self, app, aggregate):
        status, _, body = wsgi_get(app, "/v1/pdf/duration")
        assert status == 200
        document = as_json(body)
        assert document["density"] == [
            float(d) for d in aggregate.duration_pdf()
        ]

    def test_fidelity_matches_batch_gate(self, app, aggregate, baseline):
        status, _, body = wsgi_get(app, "/v1/fidelity")
        assert status == 200
        document = as_json(body)
        report = evaluate_aggregate(aggregate, baseline)
        assert document["summary"] == report.summary()
        served = {c["claim"]: c for c in document["checks"]}
        for result in report.results:
            assert served[result.claim]["value"] == result.value
            assert served[result.claim]["passed"] == result.passed


class TestCaching:
    def test_repeat_request_not_modified(self, app):
        status, headers, _ = wsgi_get(app, "/v1/services/shares")
        assert status == 200
        etag = headers["ETag"]
        status, headers2, body = wsgi_get(
            app, "/v1/services/shares", headers={"If-None-Match": etag}
        )
        assert status == 304
        assert body == b""
        assert headers2["ETag"] == etag

    def test_unquoted_and_star_tags_match(self, app):
        _, headers, _ = wsgi_get(app, "/v1/pdf/volume")
        bare = headers["ETag"].strip('"')
        assert wsgi_get(
            app, "/v1/pdf/volume", headers={"If-None-Match": bare}
        )[0] == 304
        assert wsgi_get(
            app, "/v1/pdf/volume", headers={"If-None-Match": "*"}
        )[0] == 304

    def test_etag_changes_with_aggregate(self, store, app, aggregate):
        _, headers, _ = wsgi_get(app, "/v1/pdf/volume")
        from repro.campaign.sketches import CampaignAggregate

        from .conftest import PRECISION

        store.ingest_aggregate(
            "camp", CampaignAggregate.empty(precision=PRECISION).to_dict()
        )
        _, headers2, _ = wsgi_get(app, "/v1/pdf/volume")
        assert headers2["ETag"] != headers["ETag"]

    def test_pages_cache_independently(self, app):
        _, full, _ = wsgi_get(app, "/v1/services/shares")
        _, page, _ = wsgi_get(
            app, "/v1/services/shares", query="offset=0&limit=2"
        )
        assert page["ETag"] != full["ETag"]
        assert wsgi_get(
            app,
            "/v1/services/shares",
            query="offset=0&limit=2",
            headers={"If-None-Match": page["ETag"]},
        )[0] == 304


class TestPagination:
    def test_shares_page_window(self, app):
        status, _, body = wsgi_get(
            app, "/v1/services/shares", query="offset=1&limit=2"
        )
        assert status == 200
        document = as_json(body)
        assert len(document["services"]) == 2
        assert document["offset"] == 1
        assert document["limit"] == 2
        assert document["total"] == len(SERVICE_NAMES)
        assert [s["service"] for s in document["services"]] == list(
            SERVICE_NAMES[1:3]
        )

    def test_campaign_listing_paginates(self, app):
        status, _, body = wsgi_get(app, "/v1/campaigns", query="limit=0")
        assert status == 200
        document = as_json(body)
        assert document["campaigns"] == []
        assert document["total"] == 1

    def test_negative_pagination_rejected(self, app):
        assert wsgi_get(
            app, "/v1/services/shares", query="offset=-1"
        )[0] == 400
        assert wsgi_get(
            app, "/v1/services/shares", query="limit=zap"
        )[0] == 400


class TestRouting:
    def test_campaign_listing_entry(self, app, aggregate):
        status, _, body = wsgi_get(app, "/v1/campaigns")
        assert status == 200
        (entry,) = as_json(body)["campaigns"]
        assert entry["name"] == "camp"
        assert entry["digest"] == aggregate.digest()
        assert entry["manifest"] is None

    def test_unknown_endpoint_404(self, app):
        status, _, body = wsgi_get(app, "/v1/nope")
        assert status == 404
        assert "error" in as_json(body)

    def test_unknown_campaign_404(self, app):
        assert wsgi_get(
            app, "/v1/fidelity", query="campaign=ghost"
        )[0] == 404

    def test_ambiguous_campaign_400(self, store, app, aggregate):
        store.ingest_aggregate("other", aggregate.to_dict())
        status, _, body = wsgi_get(app, "/v1/services/shares")
        assert status == 400
        assert "camp" in as_json(body)["error"]

    def test_sole_campaign_resolved_implicitly(self, app):
        explicit = wsgi_get(
            app, "/v1/services/shares", query="campaign=camp"
        )
        implicit = wsgi_get(app, "/v1/services/shares")
        assert explicit[2] == implicit[2]

    def test_get_only_on_query_endpoints(self, app):
        assert wsgi_post(app, "/v1/fidelity", b"")[0] == 405

    def test_openapi_served(self, app):
        from repro.serve.openapi import openapi_spec

        status, _, body = wsgi_get(app, "/v1/openapi.json")
        assert status == 200
        assert as_json(body) == openapi_spec()


class TestSubmitAuth:
    def test_unauthenticated_rejected(self, app, aggregate):
        status, _, body = wsgi_post(
            app, "/v1/submit", submit_line(aggregate, "fresh")
        )
        assert status == 401
        assert wsgi_get(app, "/v1/campaigns", query="")[0] == 200

    def test_wrong_token_rejected(self, app, aggregate):
        status, _, _ = wsgi_post(
            app,
            "/v1/submit",
            submit_line(aggregate, "fresh"),
            headers={"Authorization": "Bearer wrong"},
        )
        assert status == 401

    def test_bearer_token_accepted(self, app, store, aggregate):
        status, _, body = wsgi_post(
            app,
            "/v1/submit",
            submit_line(aggregate, "fresh"),
            headers={"Authorization": f"Bearer {TOKEN}"},
        )
        assert status == 200
        assert as_json(body)["ingested"] == 1
        assert "fresh" in store.campaign_names()

    def test_readonly_mode_refuses_submit(self, store, aggregate):
        app = ServeApp(store, token=TOKEN, readonly=True)
        status, _, _ = wsgi_post(
            app,
            "/v1/submit",
            submit_line(aggregate),
            headers={"Authorization": f"Bearer {TOKEN}"},
        )
        assert status == 403

    def test_no_token_disables_submit(self, store, aggregate):
        app = ServeApp(store)
        status, _, body = wsgi_post(
            app,
            "/v1/submit",
            submit_line(aggregate),
            headers={"Authorization": "Bearer anything"},
        )
        assert status == 403
        assert "disabled" in as_json(body)["error"]

    def test_digest_mismatch_409(self, app, store, aggregate):
        line = json.loads(submit_line(aggregate, "bad"))
        line["digest"] = "0" * 64
        status, _, _ = wsgi_post(
            app,
            "/v1/submit",
            json.dumps(line).encode("utf-8"),
            headers={"Authorization": f"Bearer {TOKEN}"},
        )
        assert status == 409
        assert "bad" not in store.campaign_names()

    def test_schema_violation_400(self, app):
        status, _, _ = wsgi_post(
            app,
            "/v1/submit",
            b'{"type": "mystery"}',
            headers={"Authorization": f"Bearer {TOKEN}"},
        )
        assert status == 400


@pytest.fixture()
def live_server(store, aggregate):
    """A real threaded HTTP server on an ephemeral port."""
    store.ingest_aggregate("camp", aggregate.to_dict())
    app = ServeApp(store, token=TOKEN)
    server = make_server("127.0.0.1", 0, app)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.server_port}", store
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


def _fetch(url):
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.status, dict(response.headers), response.read()


class TestConcurrency:
    N_THREADS = 8

    def test_concurrent_readers_identical_bodies(self, live_server):
        base, _ = live_server
        results, errors = [], []

        def hit():
            try:
                results.append(_fetch(base + "/v1/services/shares"))
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [
            threading.Thread(target=hit) for _ in range(self.N_THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        assert len(results) == self.N_THREADS
        statuses = {status for status, _, _ in results}
        bodies = {body for _, _, body in results}
        etags = {headers["ETag"] for _, headers, _ in results}
        assert statuses == {200}
        assert len(bodies) == 1
        assert len(etags) == 1

    def test_no_torn_reads_during_reingest(self, live_server, aggregate):
        """Readers racing an ingest see a complete snapshot, never a mix.

        The writer flips the campaign between the full aggregate and an
        empty one; every response must be internally consistent — its
        digest field decides which snapshot it came from, and the
        session count must agree with that digest.
        """
        from repro.campaign.sketches import CampaignAggregate

        from .conftest import PRECISION

        base, store = live_server
        empty = CampaignAggregate.empty(precision=PRECISION)
        expected = {
            aggregate.digest(): aggregate.n_sessions,
            empty.digest(): 0,
        }
        stop = threading.Event()
        torn, errors = [], []

        def writer():
            flip = False
            while not stop.is_set():
                payload = (empty if flip else aggregate).to_dict()
                store.ingest_aggregate("camp", payload)
                flip = not flip

        def reader():
            while not stop.is_set():
                try:
                    _, _, body = _fetch(base + "/v1/services/shares")
                except Exception as exc:  # pragma: no cover - diagnostic
                    errors.append(exc)
                    return
                document = json.loads(body)
                if document["sessions"] != expected[document["digest"]]:
                    torn.append(document)  # pragma: no cover - failure path

        workers = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(4)
        ]
        for t in workers:
            t.start()
        stop_timer = threading.Timer(2.0, stop.set)
        stop_timer.start()
        for t in workers:
            t.join(timeout=60)
        stop_timer.cancel()
        assert not errors
        assert not torn

    def test_served_bytes_identical_to_store_document(self, live_server):
        """Out-of-band check: HTTP adds nothing to the stored bytes."""
        base, store = live_server
        _, _, body = _fetch(base + "/v1/pdf/volume")
        _, stored_body = store.document("camp", "pdf/volume")
        assert body.decode("utf-8") == stored_body
