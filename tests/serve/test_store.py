"""Aggregate store: ingest round trips, digest discipline, atomicity."""

from __future__ import annotations

import json

import pytest

from repro.campaign import run_campaign
from repro.campaign.sketches import CampaignAggregate
from repro.io.cache import ArtifactCache
from repro.serve import AggregateStore, DigestMismatchError, StoreError
from repro.serve.schema import SubmitSchemaError, validate_submission
from repro.serve.store import ARRIVALS_FAMILY
from repro.serve.views import AGGREGATE_FAMILIES, RELEASE_SCOPE, document_etag

from .conftest import DAYS, PRECISION, SEED


class TestIngestAggregate:
    def test_round_trips_exactly(self, store, aggregate):
        digest = store.ingest_aggregate("camp", aggregate.to_dict())
        assert digest == aggregate.digest()
        restored = store.aggregate("camp")
        assert restored.digest() == digest
        assert restored.canonical_json() == aggregate.canonical_json()

    def test_precomputes_every_family_document(self, store, aggregate):
        digest = store.ingest_aggregate("camp", aggregate.to_dict())
        for family in AGGREGATE_FAMILIES:
            stored = store.document("camp", family)
            assert stored is not None, family
            etag, body = stored
            assert etag == document_etag(digest, family)
            assert json.loads(body)["digest"] == digest

    def test_matching_expected_digest_accepted(self, store, aggregate):
        store.ingest_aggregate(
            "camp", aggregate.to_dict(), expect_digest=aggregate.digest()
        )
        assert store.campaign_names() == ["camp"]

    def test_digest_mismatch_stores_nothing(self, store, aggregate):
        with pytest.raises(DigestMismatchError):
            store.ingest_aggregate(
                "camp", aggregate.to_dict(), expect_digest="0" * 64
            )
        assert store.campaign_names() == []
        assert store.document("camp", "services/shares") is None

    def test_empty_name_rejected(self, store, aggregate):
        with pytest.raises(StoreError):
            store.ingest_aggregate("", aggregate.to_dict())

    def test_malformed_payload_rejected(self, store):
        with pytest.raises(StoreError, match="invalid aggregate"):
            store.ingest_aggregate("camp", {"format": 999})

    def test_reingest_replaces_snapshot(self, store, aggregate):
        store.ingest_aggregate("camp", aggregate.to_dict())
        empty = CampaignAggregate.empty(precision=PRECISION)
        store.ingest_aggregate("camp", empty.to_dict())
        assert store.campaign_names() == ["camp"]
        etag, _ = store.document("camp", "pdf/volume")
        assert etag == document_etag(empty.digest(), "pdf/volume")


class TestIngestCheckpoints:
    def test_merges_to_campaign_digest(self, store, generator, tmp_path):
        result = run_campaign(
            generator,
            DAYS,
            SEED,
            shard_bs=1,
            cache=ArtifactCache(tmp_path),
            hll_precision=PRECISION,
        )
        digest, n_shards = store.ingest_checkpoints("camp", tmp_path)
        assert digest == result.digest()
        assert n_shards == result.n_shards
        entry = store.campaigns()[0]
        assert entry["shards"] == n_shards
        assert entry["sessions"] == result.aggregate.n_sessions

    def test_empty_cache_rejected(self, store, tmp_path):
        with pytest.raises(StoreError, match="no campaign-shard"):
            store.ingest_checkpoints("camp", tmp_path)


class TestIngestRelease:
    def test_arrivals_document_matches_release(
        self, store, bank, tmp_path
    ):
        from repro.core.arrivals import ArrivalModel
        from repro.io.params import save_release

        path = tmp_path / "release.json"
        arrivals = {
            "decile-2": ArrivalModel(peak_mu=1.5, peak_sigma=0.4, night_scale=0.5),
            "decile-1": ArrivalModel(peak_mu=1.0, peak_sigma=0.3, night_scale=0.2),
        }
        save_release(path, bank, arrivals)
        etag = store.ingest_release(path)
        stored = store.document(RELEASE_SCOPE, ARRIVALS_FAMILY)
        assert stored is not None and stored[0] == etag
        document = json.loads(stored[1])
        # Labels sorted; floats identical to the live models.
        assert [d["label"] for d in document["deciles"]] == [
            "decile-1", "decile-2",
        ]
        assert document["deciles"][1]["peak_mu"] == 1.5


class TestManifests:
    def test_manifest_joins_campaign_listing(self, store, aggregate):
        store.ingest_aggregate("camp", aggregate.to_dict())
        store.ingest_manifest("camp", {"run_id": "r1", "events": 42})
        (entry,) = store.campaigns()
        assert entry["manifest"] == {"events": 42, "run_id": "r1"}
        assert store.manifest("camp") == {"events": 42, "run_id": "r1"}

    def test_manifest_file_accepts_telemetry_dir(self, store, tmp_path):
        (tmp_path / "manifest.json").write_text(
            json.dumps({"run_id": "r2"}), encoding="utf-8"
        )
        store.ingest_manifest_file("camp", tmp_path)
        assert store.manifest("camp") == {"run_id": "r2"}


class TestSubmit:
    @staticmethod
    def _line(aggregate, name="camp", digest=None):
        return json.dumps(
            {
                "type": "aggregate",
                "campaign": name,
                "digest": digest or aggregate.digest(),
                "payload": aggregate.to_dict(),
            }
        )

    def test_submission_counts(self, store, aggregate):
        text = "\n".join(
            [
                self._line(aggregate, "a"),
                self._line(aggregate, "b"),
                json.dumps(
                    {
                        "type": "manifest",
                        "campaign": "a",
                        "payload": {"run_id": "r"},
                    }
                ),
            ]
        )
        outcome = store.submit(text)
        assert outcome["ingested"] == 3
        assert outcome["campaigns"] == ["a", "b"]
        assert outcome["aggregate"] == 2
        assert outcome["manifest"] == 1
        assert store.campaign_names() == ["a", "b"]

    def test_rejected_line_aborts_whole_submission(self, store, aggregate):
        text = "\n".join(
            [
                self._line(aggregate, "good"),
                self._line(aggregate, "bad", digest="f" * 64),
            ]
        )
        with pytest.raises(DigestMismatchError):
            store.submit(text)
        # Atomic: the valid first line must not have landed either.
        assert store.campaign_names() == []

    def test_schema_violations_rejected(self, store, aggregate):
        with pytest.raises(SubmitSchemaError):
            store.submit(json.dumps({"type": "mystery", "campaign": "c"}))
        with pytest.raises(SubmitSchemaError):
            store.submit("")  # empty submission
        with pytest.raises(SubmitSchemaError):
            store.submit("{not json")

    def test_validate_submission_rejects_unknown_fields(self, aggregate):
        line = {
            "type": "aggregate",
            "campaign": "c",
            "digest": aggregate.digest(),
            "payload": aggregate.to_dict(),
            "extra": True,
        }
        with pytest.raises(SubmitSchemaError, match="extra"):
            validate_submission(line)


class TestStoreFile:
    def test_format_version_pinned(self, tmp_path, aggregate, baseline):
        path = tmp_path / "store.sqlite"
        first = AggregateStore(path, baseline=baseline)
        first.ingest_aggregate("camp", aggregate.to_dict())
        first.close()
        # Reopen: data persisted, format accepted.
        second = AggregateStore(path, baseline=baseline)
        assert second.campaign_names() == ["camp"]
        second.close()

    def test_foreign_format_rejected(self, tmp_path, baseline):
        import sqlite3

        path = tmp_path / "store.sqlite"
        conn = sqlite3.connect(path)
        conn.execute(
            "CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT NOT NULL)"
        )
        conn.execute("INSERT INTO meta VALUES ('format', '999')")
        conn.commit()
        conn.close()
        with pytest.raises(StoreError, match="format 999"):
            AggregateStore(path, baseline=baseline)
