"""Shared serving-layer fixtures: one campaign aggregate, one store.

Everything the serving tests judge is anchored to the same small campaign
(the module-scoped ``aggregate``); byte/float-identity assertions compare
served documents against direct :class:`CampaignAggregate` derivations on
that object.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.campaign.sketches import CampaignAggregate
from repro.core.arrivals import ArrivalModel
from repro.core.generator import TrafficGenerator
from repro.core.service_mix import ServiceMix
from repro.verify import Baseline, default_baseline_path

SEED = 11
DAYS = 1
N_BS = 6

#: HLL precision small enough that test aggregates stay tiny.
PRECISION = 10


@pytest.fixture(scope="package")
def generator(bank):
    arrival = ArrivalModel(peak_mu=2.0, peak_sigma=0.5, night_scale=0.4)
    mix = ServiceMix.from_table1().restricted_to(bank.services())
    return TrafficGenerator(
        {bs: arrival for bs in range(N_BS)}, mix, bank
    )


@pytest.fixture(scope="package")
def aggregate(generator):
    """Single-pass aggregate of the shared serving-test campaign."""
    table = generator.generate_campaign(DAYS, SEED)
    return CampaignAggregate.from_table(
        table, n_units=N_BS * DAYS, precision=PRECISION
    )


@pytest.fixture(scope="package")
def baseline():
    return Baseline.load(default_baseline_path())


@pytest.fixture()
def store(baseline):
    """A fresh in-memory store judged under the golden baseline."""
    from repro.serve import AggregateStore

    s = AggregateStore(":memory:", baseline=baseline)
    yield s
    s.close()


def wsgi_get(app, path, query="", headers=None, method="GET"):
    """Drive the WSGI app directly; returns (status, headers, body dict|bytes)."""
    environ = {
        "REQUEST_METHOD": method,
        "PATH_INFO": path,
        "QUERY_STRING": query,
        "wsgi.input": io.BytesIO(b""),
    }
    for name, value in (headers or {}).items():
        environ["HTTP_" + name.upper().replace("-", "_")] = value
    captured = {}

    def start_response(status, response_headers):
        captured["status"] = int(status.split()[0])
        captured["headers"] = dict(response_headers)

    body = b"".join(app(environ, start_response))
    return captured["status"], captured["headers"], body


def wsgi_post(app, path, body, headers=None):
    """POST a byte body through the WSGI app directly."""
    environ = {
        "REQUEST_METHOD": "POST",
        "PATH_INFO": path,
        "QUERY_STRING": "",
        "CONTENT_LENGTH": str(len(body)),
        "wsgi.input": io.BytesIO(body),
    }
    for name, value in (headers or {}).items():
        environ["HTTP_" + name.upper().replace("-", "_")] = value
    captured = {}

    def start_response(status, response_headers):
        captured["status"] = int(status.split()[0])
        captured["headers"] = dict(response_headers)

    raw = b"".join(app(environ, start_response))
    return captured["status"], captured["headers"], raw


def as_json(body: bytes):
    return json.loads(body.decode("utf-8"))
