"""Tests for the fidelity report containers."""

import pytest

from repro.verify.report import CheckResult, FidelityReport, ReportError


def _result(claim="c", value=1.0, passed=True, skipped=False):
    return CheckResult(
        claim=claim,
        statistic=claim,
        value=value,
        lo=0.0,
        hi=2.0,
        passed=passed,
        provenance="Fig X",
        skipped=skipped,
    )


class TestCheckResult:
    def test_round_trip(self):
        original = _result()
        assert CheckResult.from_dict(original.to_dict()) == original

    def test_skipped_round_trip(self):
        original = _result(skipped=True)
        restored = CheckResult.from_dict(original.to_dict())
        assert restored == original
        assert restored.skipped

    def test_skipped_defaults_to_judged_in_old_payloads(self):
        payload = _result().to_dict()
        del payload["skipped"]  # a pre-skipped-era archived report
        assert not CheckResult.from_dict(payload).skipped

    def test_malformed_payload_rejected(self):
        with pytest.raises(ReportError):
            CheckResult.from_dict({"claim": "c"})


class TestFidelityReport:
    def test_ok_iff_all_passed(self):
        assert FidelityReport(results=[_result(), _result("d")]).ok
        report = FidelityReport(results=[_result(), _result("d", passed=False)])
        assert not report.ok
        assert [r.claim for r in report.failures()] == ["d"]

    def test_claims_deduplicate_in_order(self):
        report = FidelityReport(
            results=[_result("b"), _result("a"), _result("b")]
        )
        assert report.claims() == ["b", "a"]

    def test_result_lookup(self):
        report = FidelityReport(results=[_result("a"), _result("b")])
        assert report.result("b").claim == "b"
        with pytest.raises(ReportError):
            report.result("absent")

    def test_summary_counts(self):
        report = FidelityReport(results=[_result(), _result("d", passed=False)])
        assert report.summary() == {
            "checks": 2,
            "claims": 2,
            "failed": 1,
            "skipped": 0,
            "verdict": "FAILED",
        }

    def test_all_skipped_verdict(self):
        report = FidelityReport(
            results=[_result(skipped=True), _result("d", skipped=True)]
        )
        assert report.ok  # skipped checks never fail the gate
        assert report.summary()["verdict"] == "SKIPPED"
        assert report.summary()["skipped"] == 2

    def test_partially_skipped_stays_ok(self):
        report = FidelityReport(
            results=[_result(), _result("d", skipped=True)]
        )
        assert report.summary()["verdict"] == "OK"
        assert [r.claim for r in report.skipped()] == ["d"]

    def test_skipped_checks_publish_no_value_gauge(self):
        from repro.obs.metrics import MetricsRegistry

        metrics = MetricsRegistry()
        report = FidelityReport(
            results=[_result("a"), _result("b", skipped=True)]
        )
        report.record_metrics(metrics)
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["verify.skipped"] == 1
        assert "verify.value.a" in snapshot["gauges"]
        assert "verify.value.b" not in snapshot["gauges"]

    def test_json_file_round_trip(self, tmp_path):
        report = FidelityReport(
            results=[_result(), _result("d", passed=False)],
            meta={"seed": 0},
        )
        path = tmp_path / "report.json"
        report.write(path)
        restored = FidelityReport.load(path)
        assert restored.results == report.results
        assert restored.meta == {"seed": 0}
        assert not restored.ok

    def test_unreadable_file_raises(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ReportError):
            FidelityReport.load(path)
        with pytest.raises(ReportError):
            FidelityReport.load(tmp_path / "absent.json")

    def test_malformed_payload_rejected(self):
        with pytest.raises(ReportError):
            FidelityReport.from_dict({"meta": {}})
