"""Tests for the golden-baseline container and its discovery rules."""

from pathlib import Path

import pytest

from repro.verify.baseline import (
    BASELINE_ENV,
    Baseline,
    BaselineError,
    CampaignSpec,
    ClaimBand,
    default_baseline_path,
)

REPO_BASELINE = (
    Path(__file__).resolve().parents[2] / "baselines" / "paper_claims.json"
)


def _baseline(**claims):
    claims = claims or {"a": ClaimBand(lo=0.0, hi=1.0, provenance="Fig 1")}
    return Baseline(campaign=CampaignSpec(), claims=claims)


class TestClaimBand:
    def test_empty_band_rejected(self):
        with pytest.raises(BaselineError):
            ClaimBand(lo=2.0, hi=1.0)

    def test_round_trip_with_and_without_observed(self):
        with_obs = ClaimBand(lo=0.0, hi=1.0, provenance="p", observed=0.5)
        assert ClaimBand.from_dict(with_obs.to_dict()) == with_obs
        without = ClaimBand(lo=0.0, hi=1.0)
        payload = without.to_dict()
        assert "observed" not in payload
        assert ClaimBand.from_dict(payload) == without

    def test_malformed_payload_rejected(self):
        with pytest.raises(BaselineError):
            ClaimBand.from_dict({"lo": 0.0})


class TestCampaignSpec:
    def test_invalid_spec_rejected(self):
        with pytest.raises(BaselineError):
            CampaignSpec(n_bs=5)
        with pytest.raises(BaselineError):
            CampaignSpec(n_days=0)

    def test_round_trip(self):
        spec = CampaignSpec(n_bs=30, n_days=2, min_sessions=100)
        assert CampaignSpec.from_dict(spec.to_dict()) == spec


class TestBaseline:
    def test_needs_claims(self):
        with pytest.raises(BaselineError):
            Baseline(campaign=CampaignSpec(), claims={})

    def test_file_round_trip(self, tmp_path):
        baseline = _baseline(
            x=ClaimBand(lo=0.0, hi=1.0, provenance="Fig 4", observed=0.97),
            y=ClaimBand(lo=1.0, hi=2.0),
        )
        path = tmp_path / "baseline.json"
        baseline.save(path)
        restored = Baseline.load(path)
        assert restored == baseline

    def test_with_observed_updates_only_observations(self):
        baseline = _baseline(
            x=ClaimBand(lo=0.0, hi=1.0, provenance="Fig 4"),
            y=ClaimBand(lo=1.0, hi=2.0, observed=1.5),
        )
        updated = baseline.with_observed({"x": 0.42})
        assert updated.claims["x"].observed == 0.42
        assert updated.claims["x"].lo == 0.0
        assert updated.claims["x"].hi == 1.0
        assert updated.claims["x"].provenance == "Fig 4"
        # Unmeasured claims keep their previous observation untouched.
        assert updated.claims["y"] == baseline.claims["y"]

    def test_with_observed_rejects_unknown_claims(self):
        with pytest.raises(BaselineError):
            _baseline().with_observed({"nope": 1.0})

    def test_unreadable_file_raises(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("[")
        with pytest.raises(BaselineError):
            Baseline.load(path)
        with pytest.raises(BaselineError):
            Baseline.load(tmp_path / "absent.json")


class TestDefaultBaselinePath:
    def test_env_override_wins(self, tmp_path, monkeypatch):
        override = tmp_path / "elsewhere.json"
        monkeypatch.setenv(BASELINE_ENV, str(override))
        assert default_baseline_path() == override

    def test_walks_up_to_repo_baseline(self, tmp_path, monkeypatch):
        monkeypatch.delenv(BASELINE_ENV, raising=False)
        root = tmp_path / "repo"
        nested = root / "src" / "deep"
        nested.mkdir(parents=True)
        (root / "baselines").mkdir()
        target = root / "baselines" / "paper_claims.json"
        target.write_text("{}")
        assert default_baseline_path(nested).resolve() == target.resolve()

    def test_missing_baseline_raises(self, tmp_path, monkeypatch):
        monkeypatch.delenv(BASELINE_ENV, raising=False)
        with pytest.raises(BaselineError):
            default_baseline_path(tmp_path)


class TestGoldenBaseline:
    """The checked-in baseline itself must stay well-formed."""

    def test_loads_and_covers_enough_claims(self):
        baseline = Baseline.load(REPO_BASELINE)
        assert len(baseline.claims) >= 6
        for key, band in baseline.claims.items():
            assert band.provenance, f"claim {key} lacks paper provenance"
            assert band.lo < band.hi

    def test_observed_values_sit_inside_their_bands(self):
        baseline = Baseline.load(REPO_BASELINE)
        for key, band in baseline.claims.items():
            assert band.observed is not None, f"claim {key} never observed"
            assert band.lo <= band.observed <= band.hi, (
                f"claim {key}: recorded observation {band.observed} outside "
                f"[{band.lo}, {band.hi}]"
            )
