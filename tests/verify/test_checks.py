"""Tests for the statistic measurement functions and the band evaluator."""

import numpy as np
import pytest

from repro.verify.baseline import Baseline, CampaignSpec, ClaimBand
from repro.verify.checks import (
    CheckError,
    evaluate,
    measure_all,
    measure_arrivals,
    measure_circadian,
    measure_duration_models,
    measure_ranking,
    measure_volume_models,
)
from tests.conftest import CAMPAIGN_DAYS


class TestMeasurements:
    """Each measure_* family yields finite, plausibly ranged statistics."""

    def test_ranking(self, campaign):
        measured = measure_ranking(campaign)
        assert set(measured) == {"rank-exponential-r2", "top20-session-share"}
        assert 0.0 <= measured["rank-exponential-r2"] <= 1.0
        assert 0.5 <= measured["top20-session-share"] <= 1.0

    def test_volume_models(self, campaign, bank):
        measured = measure_volume_models(
            campaign, bank, np.random.default_rng(7)
        )
        assert measured["modeled-services"] == len(bank)
        assert 0.0 <= measured["volume-emd"] < 1.0
        assert 0.0 <= measured["volume-emd-generated"] < 0.5

    def test_duration_models(self, bank):
        measured = measure_duration_models(bank)
        assert measured["beta-min"] <= measured["beta-max"]
        assert measured["beta-recovery-max-abs-error"] >= 0.0
        assert 0.0 <= measured["beta-linearity-agreement"] <= 1.0
        assert 0.0 <= measured["powerlaw-r2-median"] <= 1.0

    def test_arrivals(self, campaign, network):
        measured = measure_arrivals(campaign, network, CAMPAIGN_DAYS)
        assert measured["arrival-peak-mu-max-rel-error"] >= 0.0
        assert measured["arrival-night-scale-max-rel-error"] >= 0.0
        assert measured["arrival-emd-max"] >= 0.0
        assert measured["pareto-shape-hill"] > 0.0

    def test_circadian(self, campaign):
        measured = measure_circadian(campaign)
        # The generator's day phase is far busier than the night phase.
        assert measured["circadian-day-night-ratio"] > 1.0

    def test_measure_all_covers_every_family(self, campaign, network, bank):
        measured = measure_all(
            campaign, network, bank, CAMPAIGN_DAYS, np.random.default_rng(7)
        )
        assert len(measured) == 15
        assert all(np.isfinite(v) for v in measured.values())

    def test_empty_table_raises(self):
        from repro.dataset.records import SessionTable

        with pytest.raises(CheckError):
            measure_circadian(SessionTable.empty())


def _baseline(**bands):
    return Baseline(
        campaign=CampaignSpec(),
        claims={
            key: ClaimBand(lo=lo, hi=hi, provenance="test")
            for key, (lo, hi) in bands.items()
        },
    )


class TestEvaluate:
    def test_all_inside_bands_passes(self):
        report = evaluate(
            {"a": 0.5, "b": 1.0}, _baseline(a=(0.0, 1.0), b=(1.0, 2.0))
        )
        assert report.ok
        assert len(report.results) == 2
        assert report.result("a").provenance == "test"

    def test_breach_fails_only_that_claim(self):
        report = evaluate(
            {"a": 0.5, "b": 5.0}, _baseline(a=(0.0, 1.0), b=(1.0, 2.0))
        )
        assert not report.ok
        assert [r.claim for r in report.failures()] == ["b"]
        assert report.result("a").passed

    def test_bounds_are_inclusive(self):
        report = evaluate({"a": 1.0}, _baseline(a=(0.0, 1.0)))
        assert report.ok

    def test_non_finite_measurement_fails(self):
        report = evaluate({"a": float("nan")}, _baseline(a=(0.0, 1.0)))
        assert not report.ok

    def test_unmeasured_claim_is_an_error(self):
        with pytest.raises(CheckError, match="never measured"):
            evaluate({"a": 0.5}, _baseline(a=(0.0, 1.0), b=(1.0, 2.0)))

    def test_unknown_statistic_is_an_error(self):
        with pytest.raises(CheckError, match="without a baseline band"):
            evaluate({"a": 0.5, "zz": 1.0}, _baseline(a=(0.0, 1.0)))
