"""The statistical fidelity gate itself (``pytest -m fidelity``).

These tests run the full gate — simulate the baseline campaign, fit the
models, measure every paper claim, judge against the golden tolerance bands
— and then prove the gate has teeth: intentionally perturbed artifacts must
breach their bands, and the verdict must be stable across root seeds.
"""

import dataclasses

import numpy as np
import pytest

from repro.pipeline.context import RunContext
from repro.verify import (
    Baseline,
    default_baseline_path,
    evaluate,
    measure_all,
    run_verification,
)

pytestmark = pytest.mark.fidelity

#: Root seeds of the seed-sensitivity sweep; the golden bands must hold on
#: every one of them, or the gate would be flaky.
SENSITIVITY_SEEDS = (0, 1, 2, 3, 4)


@pytest.fixture(scope="module")
def golden() -> Baseline:
    """The checked-in golden baseline."""
    return Baseline.load(default_baseline_path())


@pytest.fixture(scope="module")
def gate_run(golden):
    """One full gate run at seed 0 (report plus pipeline artifacts)."""
    return run_verification(RunContext(seed=0), baseline=golden)


class TestGatePasses:
    def test_seed_zero_passes_every_claim(self, gate_run):
        report, _run = gate_run
        assert report.ok, (
            "fidelity gate failed at seed 0:\n"
            + "\n".join(
                f"  {r.claim}: {r.value} outside [{r.lo}, {r.hi}]"
                for r in report.failures()
            )
        )

    def test_gate_covers_at_least_six_paper_claims(self, gate_run):
        report, _run = gate_run
        assert len(report.claims()) >= 6
        assert all(r.provenance for r in report.results)

    def test_verdict_surfaces_through_stage_event(self, gate_run):
        _report, run = gate_run
        payload = run.event("verify").payload
        assert payload is not None
        assert payload["verdict"] == "OK"
        assert payload["failed"] == 0
        assert "verdict=OK" in run.event("verify").describe()

    def test_report_meta_records_run_configuration(self, gate_run, golden):
        report, _run = gate_run
        assert report.meta["seed"] == 0
        assert report.meta["campaign"] == golden.campaign.to_dict()


class TestPerturbationsTripTheGate:
    """Intentionally corrupted artifacts must breach their bands."""

    def _artifacts(self, gate_run):
        _report, run = gate_run
        return (
            run.artifact("campaign"),
            run.artifact("network"),
            run.artifact("bank"),
        )

    def test_day_night_swap_breaches_circadian_claims(self, gate_run, golden):
        table, network, bank = self._artifacts(gate_run)
        from repro.dataset.records import SessionTable

        columns = {col: getattr(table, col) for col in SessionTable.COLUMNS}
        columns["start_minute"] = (table.start_minute + 720) % 1440
        shifted = SessionTable(**columns)
        measured = measure_all(
            shifted, network, bank, golden.campaign.n_days,
            np.random.default_rng(0),
        )
        report = evaluate(measured, golden)
        assert not report.ok
        assert not report.result("circadian-day-night-ratio").passed

    def test_doubled_betas_breach_duration_claims(self, gate_run, golden):
        table, network, bank = self._artifacts(gate_run)
        from repro.core.model_bank import ModelBank

        perturbed = ModelBank()
        for name in bank.services():
            model = bank.get(name)
            perturbed.add(
                dataclasses.replace(
                    model,
                    duration=dataclasses.replace(
                        model.duration, beta=model.duration.beta * 2.0
                    ),
                )
            )
        measured = measure_all(
            table, network, perturbed, golden.campaign.n_days,
            np.random.default_rng(0),
        )
        report = evaluate(measured, golden)
        assert not report.ok
        assert not report.result("beta-max").passed
        assert not report.result("beta-recovery-max-abs-error").passed

    def test_shifted_volume_models_breach_emd_claim(self, gate_run, golden):
        table, network, bank = self._artifacts(gate_run)
        from repro.core.model_bank import ModelBank
        from repro.core.service_model import FitDiagnostics
        from repro.dataset.aggregation import pooled_volume_pdf

        perturbed = ModelBank()
        for name in bank.services():
            model = bank.get(name)
            # Shift every model one decade up and re-derive its diagnostics
            # against the measured PDF, as a refit of a drifted model would.
            volume = dataclasses.replace(
                model.volume,
                main=dataclasses.replace(
                    model.volume.main, mu=model.volume.main.mu + 1.0
                ),
            )
            measured_pdf = pooled_volume_pdf(table.for_service(name))
            diagnostics = dataclasses.replace(
                model.diagnostics,
                volume_emd=volume.error_against(measured_pdf),
            )
            assert isinstance(diagnostics, FitDiagnostics)
            perturbed.add(
                dataclasses.replace(
                    model, volume=volume, diagnostics=diagnostics
                )
            )
        measured = measure_all(
            table, network, perturbed, golden.campaign.n_days,
            np.random.default_rng(0),
        )
        report = evaluate(measured, golden)
        assert not report.ok
        assert not report.result("volume-emd").passed


class TestSeedSensitivity:
    """The bands must absorb seed-to-seed noise: no flaky gate."""

    @pytest.fixture(scope="class")
    def sweep(self, golden):
        reports = {}
        for seed in SENSITIVITY_SEEDS:
            report, _run = run_verification(
                RunContext(seed=seed), baseline=golden
            )
            reports[seed] = report
        return reports

    def test_every_seed_passes(self, sweep):
        failures = {
            seed: [
                f"{r.claim}: {r.value} outside [{r.lo}, {r.hi}]"
                for r in report.failures()
            ]
            for seed, report in sweep.items()
            if not report.ok
        }
        assert not failures, f"gate is seed-sensitive: {failures}"

    def test_bands_leave_margin_around_the_seed_spread(self, sweep, golden):
        """The observed spread never pins a band edge exactly.

        If the min or max across seeds *equals* a band bound, the band was
        calibrated with zero slack and the next seed is a coin flip — treat
        that as a calibration bug, except for claims whose statistic is
        mathematically clamped at the bound (fractions at 1, errors at 0).
        """
        clamped = {
            "beta-linearity-agreement",  # fraction, legitimately exactly 1
        }
        for key, band in golden.claims.items():
            if key in clamped:
                continue
            values = [
                sweep[seed].result(key).value for seed in SENSITIVITY_SEEDS
            ]
            assert min(values) > band.lo or band.lo == 0.0, (
                f"{key}: seed minimum {min(values)} sits on the lower bound"
            )
            assert max(values) < band.hi, (
                f"{key}: seed maximum {max(values)} sits on the upper bound"
            )
