"""Tests for the metrics registry and its instruments."""

import pytest

from repro.obs.metrics import (
    MetricsError,
    MetricsRegistry,
    NullMetricsRegistry,
)


class TestCounter:
    def test_increments_accumulate(self):
        counter = MetricsRegistry().counter("cache.hit")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(MetricsError, match="cannot decrease"):
            MetricsRegistry().counter("cache.hit").inc(-1)

    def test_float_amounts_allowed(self):
        counter = MetricsRegistry().counter("executor.busy_s")
        counter.inc(0.25)
        counter.inc(0.75)
        assert counter.value == pytest.approx(1.0)


class TestGauge:
    def test_last_write_wins(self):
        gauge = MetricsRegistry().gauge("executor.utilization")
        gauge.set(0.4)
        gauge.set(0.9)
        assert gauge.value == pytest.approx(0.9)

    def test_unset_gauge_is_none(self):
        assert MetricsRegistry().gauge("x").value is None


class TestHistogram:
    def test_summary_statistics_exact(self):
        hist = MetricsRegistry().histogram("unit_wall_s")
        for value in (0.5, 1.5, 4.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == pytest.approx(6.0)
        assert hist.min == pytest.approx(0.5)
        assert hist.max == pytest.approx(4.0)
        assert hist.mean == pytest.approx(2.0)

    def test_empty_histogram_mean_is_none(self):
        assert MetricsRegistry().histogram("x").mean is None

    def test_power_of_two_bucketing(self):
        hist = MetricsRegistry().histogram("x")
        hist.observe(0.3)  # exponent -1
        hist.observe(0.4)  # exponent -1
        hist.observe(3.0)  # exponent 2
        assert sum(hist.buckets.values()) == 3
        assert len(hist.buckets) == 2


class TestRegistry:
    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(MetricsError, match="already registered"):
            registry.gauge("a")

    def test_invalid_name_rejected(self):
        with pytest.raises(MetricsError):
            MetricsRegistry().counter("")
        with pytest.raises(MetricsError):
            MetricsRegistry().counter(" padded ")

    def test_snapshot_shape_and_sorting(self):
        registry = MetricsRegistry()
        registry.counter("b.count").inc(2)
        registry.counter("a.count").inc(1)
        registry.gauge("util").set(0.5)
        registry.histogram("wall").observe(1.0)
        snap = registry.snapshot()
        assert list(snap) == ["counters", "gauges", "histograms"]
        assert list(snap["counters"]) == ["a.count", "b.count"]
        assert snap["gauges"] == {"util": 0.5}
        assert snap["histograms"]["wall"]["count"] == 1

    def test_snapshot_is_byte_stable(self):
        import json

        def build():
            registry = MetricsRegistry()
            registry.counter("z").inc(3)
            registry.gauge("a").set(1.5)
            return json.dumps(registry.snapshot(), sort_keys=True)

        assert build() == build()


class TestNullRegistry:
    def test_all_operations_absorbed(self):
        registry = NullMetricsRegistry()
        registry.counter("a").inc(5)
        registry.gauge("b").set(1.0)
        registry.histogram("c").observe(2.0)
        assert registry.counter("a").value == 0
        assert registry.histogram("c").count == 0

    def test_shared_instrument_no_allocation_per_name(self):
        registry = NullMetricsRegistry()
        assert registry.counter("a") is registry.counter("b")
        assert registry.counter("a") is registry.histogram("c")
