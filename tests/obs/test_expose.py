"""Prometheus exposition: rendering, parsing, the sidecar and its CLI."""

from __future__ import annotations

import io
import json
import math
import urllib.error
import urllib.request

import pytest

from repro.obs.expose import (
    CONTENT_TYPE,
    ExpositionError,
    MetricsSidecar,
    _main as expose_main,
    metric_name,
    parse_exposition,
    registry_exposition,
    render_exposition,
)
from repro.obs.metrics import MetricsRegistry


def populated_registry() -> MetricsRegistry:
    """A registry exercising every instrument kind and a label set."""
    registry = MetricsRegistry()
    registry.counter("cache.hits").inc(3)
    registry.counter(
        "serve.requests.by", {"route": "/v1/fidelity", "status": "200"}
    ).inc(2)
    registry.gauge("executor.utilization").set(0.75)
    histogram = registry.histogram("executor.unit_wall_s")
    for value in (0.25, 0.5, 3.0, 3.5):
        histogram.observe(value)
    return registry


class TestRendering:
    def test_round_trips_through_the_parser(self):
        families = parse_exposition(registry_exposition(populated_registry()))
        assert families[metric_name("cache.hits") + "_total"] == {
            "type": "counter",
            "samples": 1,
        }
        assert families["repro_serve_requests_by_total"]["type"] == "counter"
        assert families["repro_executor_utilization"]["type"] == "gauge"
        histogram = families["repro_executor_unit_wall_s"]
        assert histogram["type"] == "histogram"
        # buckets (incl. +Inf) plus _sum plus _count
        assert histogram["samples"] >= 4

    def test_counter_names_carry_the_total_suffix(self):
        text = registry_exposition(populated_registry())
        assert "repro_cache_hits_total 3" in text
        assert (
            'repro_serve_requests_by_total{route="/v1/fidelity",'
            'status="200"} 2' in text
        )

    def test_output_is_byte_stable_across_insertion_order(self):
        forward = populated_registry()
        backward = MetricsRegistry()
        histogram = backward.histogram("executor.unit_wall_s")
        for value in (0.25, 0.5, 3.0, 3.5):
            histogram.observe(value)
        backward.gauge("executor.utilization").set(0.75)
        backward.counter(
            "serve.requests.by", {"status": "200", "route": "/v1/fidelity"}
        ).inc(2)
        backward.counter("cache.hits").inc(3)
        assert registry_exposition(forward) == registry_exposition(backward)

    def test_unset_gauges_are_skipped(self):
        registry = MetricsRegistry()
        registry.gauge("never.written")
        registry.counter("seen").inc()
        text = registry_exposition(registry)
        assert "never_written" not in text
        assert parse_exposition(text)

    def test_empty_registry_renders_nothing(self):
        assert registry_exposition(MetricsRegistry()) == ""
        assert parse_exposition("") == {}

    def test_histogram_inf_bucket_equals_count(self):
        text = registry_exposition(populated_registry())
        inf_line = next(
            line
            for line in text.splitlines()
            if line.startswith("repro_executor_unit_wall_s_bucket")
            and 'le="+Inf"' in line
        )
        count_line = next(
            line
            for line in text.splitlines()
            if line.startswith("repro_executor_unit_wall_s_count")
        )
        assert inf_line.rsplit(" ", 1)[1] == count_line.rsplit(" ", 1)[1]


class TestHistogramEdgeMagnitudes:
    """frexp bucketing survives the pathological float magnitudes."""

    @pytest.mark.parametrize(
        "value",
        [0.0, -1.5, -math.inf, math.inf, math.nan],
        ids=["zero", "negative", "neg-inf", "pos-inf", "nan"],
    )
    def test_non_positive_and_non_finite_land_in_exponent_zero(self, value):
        registry = MetricsRegistry()
        registry.histogram("edge").observe(value)
        entry = registry.snapshot()["histograms"]["edge"]
        assert entry["buckets"] == [[0, 1]]
        # inf/nan contaminate the sum but the exposition still parses.
        assert parse_exposition(registry_exposition(registry))

    def test_subnormal_magnitude_keeps_its_tiny_bound(self):
        registry = MetricsRegistry()
        registry.histogram("edge").observe(5e-324)  # smallest subnormal
        ((exponent, count),) = registry.snapshot()["histograms"]["edge"][
            "buckets"
        ]
        assert count == 1
        assert math.ldexp(1.0, exponent) >= 5e-324
        text = registry_exposition(registry)
        assert parse_exposition(text)["repro_edge"]["type"] == "histogram"

    def test_huge_magnitudes_fold_into_the_inf_bucket(self):
        registry = MetricsRegistry()
        registry.histogram("edge").observe(1.7e308)  # frexp exponent 1024
        text = registry_exposition(registry)
        bucket_lines = [
            line
            for line in text.splitlines()
            if line.startswith("repro_edge_bucket")
        ]
        # 2^1024 overflows a float bound, so only +Inf remains.
        assert bucket_lines == ['repro_edge_bucket{le="+Inf"} 1']
        assert parse_exposition(text)

    def test_mixed_magnitudes_render_cumulative_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("edge")
        for value in (5e-324, 0.0, -2.0, 0.75, 1.5e3, 1.7e308, math.inf):
            histogram.observe(value)
        families = parse_exposition(registry_exposition(registry))
        assert families["repro_edge"]["type"] == "histogram"


class TestParserRejects:
    def test_sample_without_type_line(self):
        with pytest.raises(ExpositionError, match="no TYPE"):
            parse_exposition("repro_x_total 1\n")

    def test_duplicate_type_line(self):
        text = "# TYPE repro_x counter\n# TYPE repro_x counter\n"
        with pytest.raises(ExpositionError, match="duplicate TYPE"):
            parse_exposition(text)

    def test_duplicate_series(self):
        text = (
            "# TYPE repro_x counter\nrepro_x 1\nrepro_x 2\n"
        )
        with pytest.raises(ExpositionError, match="duplicate series"):
            parse_exposition(text)

    def test_malformed_label_pair(self):
        text = '# TYPE repro_x counter\nrepro_x{route=/v1} 1\n'
        with pytest.raises(ExpositionError, match="malformed"):
            parse_exposition(text)

    def test_unparsable_value(self):
        text = "# TYPE repro_x counter\nrepro_x many\n"
        with pytest.raises(ExpositionError, match="unparsable"):
            parse_exposition(text)

    def test_histogram_missing_inf_bucket(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 1\n'
            "repro_h_sum 0.5\n"
            "repro_h_count 1\n"
        )
        with pytest.raises(ExpositionError, match="\\+Inf"):
            parse_exposition(text)

    def test_histogram_non_cumulative_buckets(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 2\n'
            'repro_h_bucket{le="2"} 1\n'
            'repro_h_bucket{le="+Inf"} 2\n'
            "repro_h_sum 0.5\n"
            "repro_h_count 2\n"
        )
        with pytest.raises(ExpositionError, match="not cumulative"):
            parse_exposition(text)

    def test_histogram_count_disagrees_with_inf_bucket(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="+Inf"} 2\n'
            "repro_h_sum 0.5\n"
            "repro_h_count 3\n"
        )
        with pytest.raises(ExpositionError, match="disagrees"):
            parse_exposition(text)


class TestMetricsSidecar:
    def test_serves_the_live_exposition_over_http(self):
        registry = MetricsRegistry()
        registry.counter("work.units").inc(7)
        sidecar = MetricsSidecar(registry.snapshot, 0)
        try:
            base = f"http://127.0.0.1:{sidecar.port}"
            with urllib.request.urlopen(base + "/metrics", timeout=10) as rsp:
                assert rsp.status == 200
                assert rsp.headers["Content-Type"] == CONTENT_TYPE
                first = rsp.read().decode("utf-8")
            assert "repro_work_units_total 7" in first
            assert parse_exposition(first)

            registry.counter("work.units").inc(5)  # scrapes see live state
            with urllib.request.urlopen(base + "/metrics", timeout=10) as rsp:
                assert "repro_work_units_total 12" in rsp.read().decode()

            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(base + "/other", timeout=10)
            assert excinfo.value.code == 404
        finally:
            sidecar.close()

    def test_close_is_idempotent(self):
        sidecar = MetricsSidecar(MetricsRegistry().snapshot, 0)
        sidecar.close()
        sidecar.close()


class TestExposeCli:
    """``python -m repro.obs.expose`` honours the 0/1/2 exit contract."""

    def write_valid(self, tmp_path):
        path = tmp_path / "metrics.prom"
        path.write_text(registry_exposition(populated_registry()))
        return path

    def test_valid_file_exits_zero(self, tmp_path, capsys):
        assert expose_main([str(self.write_valid(tmp_path))]) == 0
        assert "valid exposition" in capsys.readouterr().out

    def test_quiet_suppresses_the_success_line(self, tmp_path, capsys):
        assert expose_main(["--quiet", str(self.write_valid(tmp_path))]) == 0
        assert capsys.readouterr().out == ""

    def test_stdin_dash_is_accepted(self, monkeypatch, capsys):
        monkeypatch.setattr(
            "sys.stdin", io.StringIO(registry_exposition(populated_registry()))
        )
        assert expose_main(["-"]) == 0
        assert "valid exposition" in capsys.readouterr().out

    def test_invalid_text_exits_one(self, tmp_path, capsys):
        path = tmp_path / "broken.prom"
        path.write_text("repro_x_total 1\n")
        assert expose_main([str(path)]) == 1
        assert "invalid exposition" in capsys.readouterr().err

    def test_missing_file_exits_one(self, tmp_path, capsys):
        assert expose_main([str(tmp_path / "absent.prom")]) == 1
        assert "invalid exposition" in capsys.readouterr().err

    def test_empty_exposition_exits_one(self, tmp_path, capsys):
        path = tmp_path / "empty.prom"
        path.write_text("")
        assert expose_main([str(path)]) == 1
        assert "no metric families" in capsys.readouterr().err

    def test_usage_errors_exit_two(self, capsys):
        assert expose_main([]) == 2
        assert expose_main(["--bogus-flag", "x"]) == 2
        assert expose_main(["a", "b"]) == 2
        capsys.readouterr()  # drain argparse noise
