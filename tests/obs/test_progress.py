"""Campaign progress: atomic ``progress.json``, heartbeats, follow mode."""

from __future__ import annotations

import json

import pytest

from repro.obs.progress import (
    PROGRESS_FILENAME,
    PROGRESS_SCHEMA,
    ProgressError,
    ProgressTracker,
    load_progress,
)
from repro.obs.report import follow_run
from repro.obs.schema import validate_events_file
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry

TRACE = "a" * 32


def finished_run(tmp_path, waves=3, total=4):
    """A real finished run with heartbeats; returns its last snapshot."""
    telemetry = Telemetry(directory=tmp_path, verbosity=0)
    tracker = ProgressTracker(telemetry, total_shards=total, trace_id=TRACE)
    last = None
    with telemetry.span("run:test", kind="run"):
        for wave in range(1, waves + 1):
            done = min(total, wave * 2)
            last = tracker.update(
                done, done * 100, wave=wave, peak_rss_mb=64.0
            )
    telemetry.finalize(command="test")
    return last


class TestProgressTracker:
    def test_snapshot_written_atomically_and_loadable(self, tmp_path):
        last = finished_run(tmp_path)
        assert last is not None
        loaded = load_progress(tmp_path)
        assert loaded == last
        assert loaded["schema"] == PROGRESS_SCHEMA
        assert loaded["trace_id"] == TRACE
        assert loaded["shards"] == {"done": 4, "total": 4}
        assert loaded["peak_rss_mb"] == 64.0
        # No torn temp sibling survives the atomic rewrite.
        assert list(tmp_path.glob(".tmp-*")) == []

    def test_eta_zero_once_complete_and_none_before_any_rate(self, tmp_path):
        telemetry = Telemetry(directory=tmp_path, verbosity=0)
        tracker = ProgressTracker(telemetry, total_shards=4, trace_id=TRACE)
        warmup = tracker.update(0, 0, wave=0)
        assert warmup["eta_s"] is None
        assert warmup["sessions_per_s"] is None
        done = tracker.update(4, 400, wave=1)
        assert done["eta_s"] == 0.0
        assert done["sessions_per_s"] is not None

    def test_heartbeats_land_in_the_validated_stream(self, tmp_path):
        finished_run(tmp_path, waves=3)
        counts = validate_events_file(tmp_path / "events.jsonl")
        assert counts["heartbeat"] == 3
        events = [
            json.loads(line)
            for line in (tmp_path / "events.jsonl").read_text().splitlines()
        ]
        beats = [e for e in events if e["type"] == "heartbeat"]
        assert [b["wave"] for b in beats] == [1, 2, 3]
        assert beats[-1]["done"] == 4

    def test_null_telemetry_makes_the_tracker_inert(self, tmp_path):
        tracker = ProgressTracker(
            NULL_TELEMETRY, total_shards=4, trace_id=TRACE
        )
        assert not tracker.enabled
        assert tracker.path is None
        assert tracker.update(2, 100, wave=1) is None
        assert not (tmp_path / PROGRESS_FILENAME).exists()

    def test_directoryless_telemetry_snapshots_without_writing(self, tmp_path):
        telemetry = Telemetry(directory=None, verbosity=0)
        tracker = ProgressTracker(telemetry, total_shards=2, trace_id=TRACE)
        assert tracker.path is None
        snapshot = tracker.update(1, 50, wave=1)
        assert snapshot is not None and snapshot["shards"]["done"] == 1
        assert not (tmp_path / PROGRESS_FILENAME).exists()


class TestLoadProgress:
    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ProgressError, match="cannot read"):
            load_progress(tmp_path)

    def test_non_object_payload_raises(self, tmp_path):
        (tmp_path / PROGRESS_FILENAME).write_text("[1, 2]\n")
        with pytest.raises(ProgressError, match="not a JSON object"):
            load_progress(tmp_path)


class TestFollowRun:
    def test_finished_run_renders_fully_and_returns(self, tmp_path):
        finished_run(tmp_path, waves=2)
        lines: list[str] = []
        outcome = follow_run(
            tmp_path, poll_s=0.01, timeout_s=30.0, emit=lines.append
        )
        assert outcome == "finished"
        waves = [line for line in lines if line.startswith("[follow] wave")]
        assert len(waves) == 2
        assert any(PROGRESS_FILENAME in line for line in lines)
        assert lines[-1] == "[follow] run finished (metrics snapshot observed)"

    def test_times_out_waiting_for_an_absent_stream(self, tmp_path):
        lines: list[str] = []
        outcome = follow_run(
            tmp_path, poll_s=0.01, timeout_s=0.05, emit=lines.append
        )
        assert outcome == "timeout"
        assert lines and "timeout" in lines[-1]

    def test_times_out_on_a_stream_that_never_finishes(self, tmp_path):
        (tmp_path / "events.jsonl").write_text(
            json.dumps(
                {
                    "type": "heartbeat", "done": 1, "total": 2,
                    "sessions": 10, "rate": None, "eta_s": None,
                    "wave": 1, "elapsed_s": 0.5,
                }
            )
            + "\n"
        )
        lines: list[str] = []
        outcome = follow_run(
            tmp_path, poll_s=0.01, timeout_s=0.2, emit=lines.append
        )
        assert outcome == "timeout"
        assert any(line.startswith("[follow] wave 1") for line in lines)
