"""Tests for the telemetry report renderer."""

import pytest

from repro.obs.report import ReportRenderError, render_manifest, render_run
from repro.obs.telemetry import Telemetry


def _finished_run_dir(tmp_path):
    """A telemetry directory of one small finished run."""
    telemetry = Telemetry(directory=tmp_path, verbosity=0)
    with telemetry.span("run:test", kind="run"):
        with telemetry.span("simulate", kind="stage"):
            telemetry.metrics.counter("cache.hit").inc(2)
            telemetry.metrics.gauge("executor.utilization").set(0.75)
            telemetry.metrics.histogram("executor.unit_wall_s").observe(0.5)
    telemetry.finalize(command="simulate", seed=3, status="ok")
    return tmp_path


class TestRenderRun:
    def test_report_covers_manifest_metrics_and_spans(self, tmp_path):
        text = "\n".join(render_run(_finished_run_dir(tmp_path)))
        assert "command:       simulate" in text
        assert "seed:          3" in text
        assert "cache.hit" in text
        assert "executor.utilization" in text
        assert "executor.unit_wall_s" in text
        assert "Slowest spans:" in text
        assert "run:test" in text

    def test_missing_manifest_raises_render_error(self, tmp_path):
        with pytest.raises(ReportRenderError):
            render_run(tmp_path / "nowhere")


class TestRenderManifest:
    def test_stage_rows_show_cache_provenance(self):
        manifest = {
            "command": "validate",
            "stages": [
                {"name": "simulate", "status": "cached", "seconds": 0.01,
                 "key": "deadbeefcafe", "cache": "hit", "payload": None},
                {"name": "validate", "status": "computed", "seconds": 1.5,
                 "key": None, "cache": None, "payload": {"ok": True}},
            ],
        }
        text = "\n".join(render_manifest(manifest))
        assert "hit deadbeef" in text
        assert "ok=True" in text

    def test_empty_manifest_renders_header_only(self):
        lines = render_manifest({"command": "x", "seed": 0})
        assert any("command:" in line for line in lines)
        assert not any("Stages:" in line for line in lines)
