"""Tests for the event-stream schema and its dependency-free validator."""

from pathlib import Path

import pytest

from repro.obs.schema import (
    SCHEMA_PATH,
    SchemaError,
    _main as schema_main,
    render_schema,
    validate_event,
    validate_events,
    validate_events_file,
)
from repro.obs.telemetry import Telemetry

REPO_ROOT = Path(__file__).resolve().parents[2]


def _finished_stream(tmp_path):
    """Produce a real finished run's events.jsonl and return its path."""
    telemetry = Telemetry(directory=tmp_path, verbosity=0)
    with telemetry.span("run:test", kind="run"):
        with telemetry.span("simulate", kind="stage"):
            telemetry.record_span("unit-0", "unit", 0.1, 0.1)
    telemetry.message("done")
    telemetry.finalize(command="test")
    return tmp_path / "events.jsonl"


class TestCheckedInSchema:
    def test_checked_in_file_is_in_sync_with_generator(self):
        path = REPO_ROOT / SCHEMA_PATH
        assert path.exists(), "run: python -m repro.obs.schema"
        assert path.read_text() == render_schema()


class TestValidator:
    def test_real_run_stream_validates(self, tmp_path):
        counts = validate_events_file(_finished_stream(tmp_path))
        assert counts["span"] == 3
        assert counts["metrics"] == 1
        assert counts["message"] == 1

    def test_unknown_event_type_rejected(self):
        with pytest.raises(SchemaError, match="unknown event type"):
            validate_event({"type": "bogus"})

    def test_missing_required_field_rejected(self):
        with pytest.raises(SchemaError, match="missing required field"):
            validate_event({"type": "message", "level": "info"})

    def test_unknown_extra_field_rejected(self):
        with pytest.raises(SchemaError, match="unknown fields"):
            validate_event(
                {"type": "message", "level": "info", "text": "x", "who": "me"}
            )

    def test_bad_enum_value_rejected(self):
        event = {
            "type": "span", "id": 0, "parent": None, "name": "x",
            "kind": "not-a-kind", "start_s": 0.0, "wall_s": 0.1,
            "cpu_s": 0.1, "status": "ok", "attrs": {},
        }
        with pytest.raises(SchemaError, match="kind"):
            validate_event(event)

    def test_stream_without_spans_rejected(self):
        metrics = {
            "type": "metrics", "counters": {}, "gauges": {}, "histograms": {},
        }
        with pytest.raises(SchemaError, match="no span events"):
            validate_events([metrics])

    def test_stream_must_end_with_one_metrics_snapshot(self, tmp_path):
        span = {
            "type": "span", "id": 0, "parent": None, "name": "x",
            "kind": "run", "start_s": 0.0, "wall_s": 0.1, "cpu_s": 0.1,
            "status": "ok", "attrs": {},
        }
        with pytest.raises(SchemaError, match="metrics snapshot"):
            validate_events([span])

    def test_corrupted_stream_file_rejected(self, tmp_path):
        path = _finished_stream(tmp_path)
        with path.open("a") as handle:
            handle.write('{"type": "span", "id": "not-an-int"}\n')
        with pytest.raises(SchemaError):
            validate_events_file(path)


class TestSchemaCli:
    """``python -m repro.obs.schema`` honours the 0/1/2 exit contract."""

    def test_valid_stream_exits_zero(self, tmp_path, capsys):
        path = _finished_stream(tmp_path)
        assert schema_main([str(path)]) == 0
        assert "valid" in capsys.readouterr().out

    def test_quiet_suppresses_the_success_line(self, tmp_path, capsys):
        path = _finished_stream(tmp_path)
        assert schema_main(["--quiet", str(path)]) == 0
        assert capsys.readouterr().out == ""

    def test_invalid_stream_exits_one(self, tmp_path, capsys):
        path = _finished_stream(tmp_path)
        with path.open("a") as handle:
            handle.write('{"type": "bogus"}\n')
        assert schema_main([str(path)]) == 1
        assert "invalid" in capsys.readouterr().err

    def test_missing_file_exits_one(self, tmp_path, capsys):
        assert schema_main([str(tmp_path / "absent.jsonl")]) == 1
        assert "invalid" in capsys.readouterr().err

    def test_usage_errors_exit_two(self, capsys):
        assert schema_main(["--bogus-flag"]) == 2
        assert schema_main(["a.jsonl", "b.jsonl"]) == 2
        capsys.readouterr()  # drain argparse noise

    def test_regenerate_writes_the_checked_in_document(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.chdir(tmp_path)
        assert schema_main(["--quiet"]) == 0
        written = tmp_path / SCHEMA_PATH
        assert written.read_text() == render_schema()
        assert capsys.readouterr().out == ""
