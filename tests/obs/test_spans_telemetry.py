"""Tests for the span hierarchy and the telemetry facade."""

import json

import pytest

from repro.obs.sinks import load_manifest, read_events
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    TelemetryError,
)


class TestSpanHierarchy:
    def test_nested_spans_record_parent_ids(self):
        telemetry = Telemetry()
        with telemetry.span("run:test", kind="run") as run:
            with telemetry.span("simulate", kind="stage") as stage:
                assert stage.parent_id == run.span_id
        records = telemetry.span_records()
        # Inner span closes first; ids are allocated outside-in.
        assert [r.name for r in records] == ["simulate", "run:test"]
        assert records[0].parent_id == records[1].span_id
        assert records[1].parent_id is None

    def test_span_ids_are_sequential_and_deterministic(self):
        telemetry = Telemetry()
        with telemetry.span("a"):
            pass
        with telemetry.span("b"):
            pass
        assert [r.span_id for r in telemetry.span_records()] == [0, 1]

    def test_exception_closes_span_with_error_status(self):
        telemetry = Telemetry()
        with pytest.raises(RuntimeError):
            with telemetry.span("doomed", kind="stage"):
                raise RuntimeError("boom")
        (record,) = telemetry.span_records()
        assert record.status == "error"
        assert telemetry.current_span_id() is None  # stack unwound

    def test_record_span_attaches_under_open_span(self):
        telemetry = Telemetry()
        with telemetry.span("map", kind="executor") as outer:
            record = telemetry.record_span("unit-0", "unit", 0.5, 0.4)
        assert record.parent_id == outer.span_id
        assert record.wall_s == pytest.approx(0.5)
        assert record.cpu_s == pytest.approx(0.4)

    def test_current_stage_finds_innermost_stage_span(self):
        telemetry = Telemetry()
        assert telemetry.current_stage() is None
        with telemetry.span("run:x", kind="run"):
            with telemetry.span("simulate", kind="stage"):
                with telemetry.span("map", kind="executor"):
                    assert telemetry.current_stage() == "simulate"

    def test_span_attrs_survive_into_record(self):
        telemetry = Telemetry()
        with telemetry.span("s", attrs={"a": 1}) as span:
            span.attrs["b"] = 2
        (record,) = telemetry.span_records()
        assert record.attrs == {"a": 1, "b": 2}


class TestSinksAndFinalize:
    def test_events_jsonl_written_and_manifest_built(self, tmp_path):
        telemetry = Telemetry(directory=tmp_path, verbosity=0)
        with telemetry.span("run:test", kind="run"):
            telemetry.metrics.counter("cache.hit").inc(3)
        manifest = telemetry.finalize(
            command="test", seed=7, argv=["test"], config={"seed": 7}
        )
        events = list(read_events(tmp_path / "events.jsonl"))
        assert events[0]["type"] == "span"
        assert events[-1]["type"] == "metrics"
        assert manifest["seed"] == 7
        assert manifest["metrics"]["counters"]["cache.hit"] == 3
        assert manifest["spans"]["by_kind"] == {"run": 1}
        assert load_manifest(tmp_path)["command"] == "test"

    def test_memory_only_run_writes_nothing(self, tmp_path):
        telemetry = Telemetry(verbosity=0)
        with telemetry.span("a"):
            pass
        manifest = telemetry.finalize(command="t")
        assert manifest["events_file"] is None
        assert list(tmp_path.iterdir()) == []

    def test_double_finalize_raises(self):
        telemetry = Telemetry(verbosity=0)
        telemetry.finalize()
        with pytest.raises(TelemetryError):
            telemetry.finalize()

    def test_config_digest_stable_for_equal_configs(self):
        first = Telemetry(verbosity=0).finalize(config={"seed": 1, "bs": 5})
        second = Telemetry(verbosity=0).finalize(config={"bs": 5, "seed": 1})
        assert first["config_digest"] == second["config_digest"]

    def test_profile_stage_writes_pstats(self, tmp_path):
        telemetry = Telemetry(directory=tmp_path, verbosity=0, profile=True)
        with telemetry.profile_stage("simulate"):
            sum(range(100))
        assert (tmp_path / "profile-simulate.pstats").exists()
        (record,) = telemetry.span_records("profile")
        assert record.attrs["stage"] == "simulate"

    def test_profile_disabled_by_default(self, tmp_path):
        telemetry = Telemetry(directory=tmp_path, verbosity=0)
        with telemetry.profile_stage("simulate"):
            pass
        assert not (tmp_path / "profile-simulate.pstats").exists()


class TestRendering:
    def test_verbosity_zero_prints_nothing(self, capsys):
        from repro.pipeline.stages import StageEvent

        telemetry = Telemetry(verbosity=0)
        telemetry.observe(StageEvent("simulate", "computed", 0.1))
        telemetry.message("hello")
        assert capsys.readouterr().out == ""

    def test_default_verbosity_prints_pipeline_lines(self, capsys):
        from repro.pipeline.stages import StageEvent

        telemetry = Telemetry()
        telemetry.observe(StageEvent("simulate", "computed", 0.1))
        assert "[pipeline] simulate: computed" in capsys.readouterr().out

    def test_log_json_prints_machine_readable_lines(self, capsys):
        from repro.pipeline.stages import StageEvent

        telemetry = Telemetry(log_json=True)
        telemetry.observe(
            StageEvent("simulate", "cached", 0.1, key="abc", cache_status="hit")
        )
        line = capsys.readouterr().out.strip()
        event = json.loads(line)
        assert event["type"] == "stage"
        assert event["cache"] == "hit"


class TestNullTelemetry:
    def test_null_telemetry_is_falsy(self):
        assert not NULL_TELEMETRY
        assert Telemetry(verbosity=0)  # real telemetry is truthy

    def test_null_span_absorbs_attribute_writes(self):
        with NULL_TELEMETRY.span("a", kind="stage") as span:
            span.attrs["key"] = "value"
            span.attrs.update(more=1)
        assert dict(span.attrs) == {}

    def test_null_operations_are_noops(self, capsys, tmp_path):
        telemetry = NullTelemetry()
        assert telemetry.record_span("u", "unit", 0.1, 0.1) is None
        telemetry.observe(object())
        telemetry.message("quiet")
        with telemetry.profile_stage("s"):
            pass
        assert telemetry.finalize() == {}
        assert telemetry.finalize() == {}  # never raises on re-finalize
        assert capsys.readouterr().out == ""
