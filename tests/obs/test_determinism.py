"""Telemetry must be out-of-band: enabling it never changes any output."""

import numpy as np
import pytest

from repro.core.arrivals import ArrivalModel
from repro.core.generator import TrafficGenerator
from repro.core.service_mix import ServiceMix
from repro.obs.telemetry import Telemetry
from repro.pipeline.executors import make_executor


@pytest.fixture(scope="module")
def tiny_generator(bank):
    """Low-rate generator keeping the determinism checks fast."""
    arrival = ArrivalModel(peak_mu=2.0, peak_sigma=0.5, night_scale=0.4)
    mix = ServiceMix.from_table1().restricted_to(bank.services())
    return TrafficGenerator({0: arrival, 2: arrival}, mix, bank)


def _tables_identical(a, b) -> bool:
    return all(
        getattr(a, col).dtype == getattr(b, col).dtype
        and np.array_equal(getattr(a, col), getattr(b, col))
        for col in a.COLUMNS
    )


class TestGeneratorDeterminism:
    def test_chunk_stream_identical_with_telemetry(self, tiny_generator, tmp_path):
        plain = list(tiny_generator.iter_campaign_chunks(1, 11))
        telemetry = Telemetry(directory=tmp_path, verbosity=0)
        with telemetry.span("run:test", kind="run"):
            observed = list(
                tiny_generator.iter_campaign_chunks(1, 11, telemetry=telemetry)
            )
        telemetry.finalize()
        assert len(plain) == len(observed)
        for a, b in zip(plain, observed):
            assert a.units == b.units
            assert _tables_identical(a.table, b.table)

    def test_instrumented_executor_identical_output(self, tiny_generator):
        telemetry = Telemetry(verbosity=0)
        with make_executor(1) as plain_ex:
            plain = tiny_generator.generate_campaign(1, 7, executor=plain_ex)
        with make_executor(1, telemetry=telemetry) as obs_ex:
            observed = tiny_generator.generate_campaign(1, 7, executor=obs_ex)
        assert _tables_identical(plain, observed)

    def test_spooled_chunks_share_cache_keys_with_telemetry(
        self, tiny_generator, tmp_path
    ):
        from repro.io.cache import ArtifactCache

        plain_cache = ArtifactCache(tmp_path / "plain")
        plain = tiny_generator.spool_campaign(1, 11, plain_cache)
        telemetry = Telemetry(directory=tmp_path / "tel", verbosity=0)
        obs_cache = ArtifactCache(tmp_path / "observed", telemetry=telemetry)
        observed = tiny_generator.spool_campaign(
            1, 11, obs_cache, telemetry=telemetry
        )
        telemetry.finalize()
        # Identical chunk keys: telemetry is invisible to content hashing.
        assert plain.chunk_keys == observed.chunk_keys
        assert plain.n_sessions == observed.n_sessions
        assert _tables_identical(plain.load(plain_cache), observed.load(obs_cache))


class TestPipelineDeterminism:
    def test_pipeline_cache_keys_identical_with_telemetry(self, tmp_path):
        from repro.io.cache import ArtifactCache
        from repro.pipeline.context import RunContext
        from repro.pipeline.stages import Pipeline
        from repro.pipeline.standard import network_stage, simulate_stage

        def run(cache_root, telemetry):
            ctx = RunContext(
                seed=9,
                cache=ArtifactCache(cache_root, telemetry=telemetry),
                telemetry=telemetry,
            )
            pipeline = Pipeline([network_stage(10), simulate_stage(1)])
            return pipeline.run(ctx).event("simulate")

        plain = run(tmp_path / "plain", None)
        telemetry = Telemetry(directory=tmp_path / "tel", verbosity=0)
        observed = run(tmp_path / "observed", telemetry)
        telemetry.finalize()
        assert plain.key == observed.key
        plain_artifact = next((tmp_path / "plain" / "campaign").iterdir())
        observed_artifact = next(
            (tmp_path / "observed" / "campaign").iterdir()
        )
        assert plain_artifact.name == observed_artifact.name
        assert plain_artifact.read_bytes() == observed_artifact.read_bytes()
