"""Label identity, snapshot canonical form, and cross-process merging."""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import (
    MetricsError,
    MetricsRegistry,
    label_identity,
    parse_identity,
)
from repro.obs.telemetry import Telemetry
from repro.pipeline.executors import ParallelExecutor, SerialExecutor

WORKER_SEEDS = [3, 1, 4, 1, 5, 9, 2, 6]


def worker_snapshot(seed: int) -> dict:
    """One worker's registry snapshot (module-level: must pickle)."""
    registry = MetricsRegistry()
    registry.counter("work.items").inc(seed)
    registry.counter("work.calls", {"shard": str(seed % 2)}).inc()
    histogram = registry.histogram("work.wall_s")
    for index in range(seed):
        histogram.observe(float(index) + 0.5)
    registry.gauge("work.peak_rss_mb").set(float(seed))
    return registry.snapshot()


def merged(snapshots) -> dict:
    registry = MetricsRegistry()
    for snapshot in snapshots:
        registry.merge_snapshot(snapshot)
    return registry.snapshot()


class TestLabelIdentity:
    def test_identity_round_trips_and_sorts_labels(self):
        identity = label_identity("a.b", {"route": "/v1/x", "method": "GET"})
        assert identity == 'a.b{method="GET",route="/v1/x"}'
        assert parse_identity(identity) == (
            "a.b", {"method": "GET", "route": "/v1/x"}
        )
        assert parse_identity("bare") == ("bare", None)

    def test_malformed_identity_rejected(self):
        with pytest.raises(MetricsError, match="malformed"):
            parse_identity("a{route=/v1}")

    def test_invalid_label_names_and_values_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricsError, match="invalid label name"):
            registry.counter("a", {"bad name": "x"})
        with pytest.raises(MetricsError, match="invalid label value"):
            registry.counter("a", {"route": 'say "hi"'})

    def test_bare_name_pins_the_kind_across_label_sets(self):
        registry = MetricsRegistry()
        registry.counter("serve.hits", {"route": "/a"})
        with pytest.raises(MetricsError, match="already registered"):
            registry.histogram("serve.hits", {"route": "/b"})
        with pytest.raises(MetricsError, match="already registered"):
            registry.gauge("serve.hits")

    def test_gauge_add_implements_the_inflight_idiom(self):
        gauge = MetricsRegistry().gauge("serve.inflight")
        gauge.add(1)
        gauge.add(1)
        gauge.add(-1)
        assert gauge.value == 1.0


class TestMergeSemantics:
    def test_counters_and_histograms_merge_order_independently(self):
        snapshots = [worker_snapshot(seed) for seed in WORKER_SEEDS]
        forward = merged(snapshots)
        backward = merged(reversed(snapshots))
        assert forward["counters"] == backward["counters"]
        assert forward["histograms"] == backward["histograms"]
        assert forward["counters"]["work.items"] == sum(WORKER_SEEDS)
        assert (
            forward["histograms"]["work.wall_s"]["count"] == sum(WORKER_SEEDS)
        )

    def test_gauges_take_the_last_write(self):
        snapshots = [worker_snapshot(seed) for seed in WORKER_SEEDS]
        assert merged(snapshots)["gauges"]["work.peak_rss_mb"] == float(
            WORKER_SEEDS[-1]
        )

    def test_merging_none_gauge_keeps_the_existing_value(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(2.5)
        registry.merge_snapshot({"gauges": {"g": None}})
        assert registry.snapshot()["gauges"]["g"] == 2.5

    def test_empty_histogram_entry_is_a_merge_no_op(self):
        registry = MetricsRegistry()
        registry.histogram("h").observe(1.0)
        before = registry.snapshot()
        registry.merge_snapshot(
            {"histograms": {"h": {"count": 0, "sum": 0.0, "buckets": []}}}
        )
        assert registry.snapshot() == before


class TestCrossProcessMerge:
    """Worker snapshots merge identically whatever process ran them."""

    def test_parallel_snapshots_match_serial_byte_for_byte(self):
        serial = SerialExecutor().map(worker_snapshot, WORKER_SEEDS)
        with ParallelExecutor(2) as executor:
            parallel = executor.map(worker_snapshot, WORKER_SEEDS)
        assert parallel == serial
        assert json.dumps(merged(parallel), sort_keys=True) == json.dumps(
            merged(serial), sort_keys=True
        )

    def test_instrumented_parallel_map_feeds_the_parent_registry(self):
        telemetry = Telemetry(verbosity=0)
        with ParallelExecutor(2, telemetry=telemetry) as executor:
            executor.map(worker_snapshot, WORKER_SEEDS)
        snapshot = telemetry.metrics.snapshot()
        assert snapshot["counters"]["executor.units"] == len(WORKER_SEEDS)
        assert (
            snapshot["histograms"]["executor.unit_wall_s"]["count"]
            == len(WORKER_SEEDS)
        )


class TestManifestSnapshotCanonicalForm:
    """The manifest's metric snapshot is canonical and round-trips."""

    def test_snapshot_survives_json_and_merge_round_trip(self):
        snapshots = [worker_snapshot(seed) for seed in WORKER_SEEDS]
        original = merged(snapshots)
        decoded = json.loads(json.dumps(original, sort_keys=True))
        rebuilt = MetricsRegistry()
        rebuilt.merge_snapshot(decoded)
        assert rebuilt.snapshot() == original

    def test_snapshot_keys_and_buckets_are_sorted(self):
        snapshot = merged(worker_snapshot(seed) for seed in WORKER_SEEDS)
        for section in ("counters", "gauges", "histograms"):
            keys = list(snapshot[section])
            assert keys == sorted(keys)
        buckets = snapshot["histograms"]["work.wall_s"]["buckets"]
        exponents = [exponent for exponent, _ in buckets]
        assert exponents == sorted(exponents)

    def test_finalized_manifest_carries_the_exact_snapshot(self, tmp_path):
        telemetry = Telemetry(directory=tmp_path, verbosity=0)
        telemetry.metrics.counter("work.items").inc(3)
        telemetry.metrics.histogram("work.wall_s").observe(0.25)
        with telemetry.span("run:test", kind="run"):
            pass
        expected = telemetry.metrics.snapshot()
        manifest = telemetry.finalize(command="test")
        assert manifest["metrics"] == expected
        written = json.loads((tmp_path / "manifest.json").read_text())
        assert written["metrics"] == expected
