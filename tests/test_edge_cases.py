"""Cross-cutting edge-case and invariant tests.

Covers paths the per-module suites leave thin: handover chains, calibration
corner cases, degenerate inputs, and randomized whole-table invariants.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.volume_model import VolumeModel, VolumeModelError, fit_volume_model
from repro.dataset.aggregation import minute_arrival_counts, service_shares
from repro.dataset.mobility import MobilityModel
from repro.dataset.network import Network, NetworkConfig
from repro.dataset.records import SERVICE_NAMES, SessionTable
from repro.dataset.simulator import SimulationConfig, simulate
from repro.usecases.slicing.demand import demand_matrix


# ----------------------------------------------------------------------
# Handover chains
# ----------------------------------------------------------------------
class TestHandoverChains:
    @pytest.fixture(scope="class")
    def network(self):
        return Network(NetworkConfig(n_bs=10), np.random.default_rng(0))

    def _simulate(self, network, **kwargs):
        mobility = MobilityModel(transit_fraction=0.9, transit_median_s=30.0)
        config = SimulationConfig(n_days=1, mobility=mobility, **kwargs)
        return simulate(network, config, np.random.default_rng(1))

    def test_continuations_add_sessions(self, network):
        with_chain = self._simulate(network, max_handover_chain=3)
        without = self._simulate(network, handover_continuation=False)
        assert len(with_chain) > len(without)

    def test_chain_depth_monotone(self, network):
        counts = [
            len(self._simulate(network, max_handover_chain=depth))
            for depth in (0, 1, 3)
        ]
        assert counts[0] <= counts[1] <= counts[2]

    def test_zero_chain_equals_no_continuation(self, network):
        zero_chain = self._simulate(network, max_handover_chain=0)
        disabled = self._simulate(network, handover_continuation=False)
        # Same RNG stream, same physics: identical tables.
        assert len(zero_chain) == len(disabled)


class TestHandoverEdges:
    """Controlled-input checks on the handover kernel itself."""

    def _serve(self, config, start_minute, volumes, durations, dwells):
        from repro.dataset.simulator import _serve_at_bs

        n = len(volumes)
        return _serve_at_bs(
            bs_id=0,
            day=0,
            start_minute=np.asarray(start_minute, dtype=int),
            service_idx=np.zeros(n, dtype=int),
            volumes=np.asarray(volumes, dtype=float),
            durations=np.asarray(durations, dtype=float),
            dwells=np.asarray(dwells, dtype=float),
            rng=np.random.default_rng(0),
            config=config,
            peers=np.array([1]),
            chain_depth=0,
        )

    def test_continuation_lands_at_peer(self):
        config = SimulationConfig(n_days=1)
        # One long, heavy session cut after 10 minutes: remainder continues.
        table = self._serve(config, [100], [500.0], [3600.0], [600.0])
        assert len(table) >= 2
        assert table.bs_id[0] == 0
        assert set(table.bs_id[1:]) == {1}
        assert bool(table.truncated[0])

    def test_zero_chain_cap_blocks_viable_continuation(self):
        config = SimulationConfig(n_days=1, max_handover_chain=0)
        table = self._serve(config, [100], [500.0], [3600.0], [600.0])
        assert len(table) == 1
        assert bool(table.truncated[0])

    def test_past_midnight_continuation_dropped(self):
        config = SimulationConfig(n_days=1)
        # Cut after a 10-minute dwell starting at 23:55: the continuation
        # would begin at minute 1445 of the day, so the probe never sees it.
        table = self._serve(config, [1435], [500.0], [3600.0], [600.0])
        assert len(table) == 1
        # Same session starting at midnight does continue.
        early = self._serve(config, [0], [500.0], [3600.0], [600.0])
        assert len(early) >= 2
        assert early.start_minute[1] == 10

    def test_observed_volume_clipped_to_floor(self):
        from repro.dataset.simulator import MIN_OBSERVED_VOLUME_MB

        config = SimulationConfig(n_days=1)
        # A near-empty session cut almost immediately: the probe still
        # records the 100-byte floor, and the sub-floor remainder dies.
        table = self._serve(config, [10], [1e-8], [7200.0], [5.0])
        assert len(table) == 1
        assert table.volume_mb[0] == MIN_OBSERVED_VOLUME_MB
        assert np.all(table.volume_mb >= MIN_OBSERVED_VOLUME_MB)
        assert np.all(table.duration_s >= 1.0)

    def test_untruncated_sessions_never_continue(self):
        config = SimulationConfig(n_days=1)
        # Dwell longer than the session: no truncation, no continuation.
        table = self._serve(config, [100], [5.0], [60.0], [600.0])
        assert len(table) == 1
        assert not bool(table.truncated[0])
        assert table.duration_s[0] == 60.0


# ----------------------------------------------------------------------
# Volume model corner cases
# ----------------------------------------------------------------------
class TestVolumeModelEdges:
    def test_invalid_quantile_calibration_rejected(self, campaign):
        from repro.dataset.aggregation import pooled_volume_pdf

        pdf = pooled_volume_pdf(campaign.for_service("Facebook"))
        with pytest.raises(VolumeModelError):
            fit_volume_model(pdf, calibration="quantile", calibration_quantile=0.3)

    def test_from_dict_defaults_peak_intervals(self):
        model = VolumeModel.from_dict(
            {
                "mu": 0.5,
                "sigma": 0.4,
                "peaks": [{"k": 0.1, "mu": 1.5, "sigma": 0.05}],
            }
        )
        assert model.peaks[0].u_lo == 1.5
        assert model.peaks[0].u_hi == 1.5

    def test_model_without_peaks_serializes(self):
        from repro.core.distributions import LogNormal10

        model = VolumeModel(main=LogNormal10(0.2, 0.3))
        restored = VolumeModel.from_dict(model.to_dict())
        assert restored.peaks == ()
        assert restored.total_peak_weight == 0.0

    def test_zero_refinement_matches_paper_procedure(self, campaign):
        from repro.dataset.aggregation import pooled_volume_pdf

        pdf = pooled_volume_pdf(campaign.for_service("Amazon"))
        model = fit_volume_model(pdf, n_refinements=0, calibration="none")
        # Still a valid normalized mixture.
        assert model.as_histogram().total_mass == pytest.approx(1.0, abs=1e-6)


# ----------------------------------------------------------------------
# Network edge sizes
# ----------------------------------------------------------------------
class TestNetworkEdges:
    def test_minimum_network_covers_all_deciles(self):
        network = Network(NetworkConfig(n_bs=10), np.random.default_rng(2))
        for decile in range(10):
            assert len(network.bs_ids_in_decile(decile)) == 1

    def test_non_multiple_of_ten_population(self):
        network = Network(NetworkConfig(n_bs=23), np.random.default_rng(3))
        assert len(network) == 23
        sizes = [len(network.bs_ids_in_decile(d)) for d in range(10)]
        assert sum(sizes) == 23
        assert max(sizes) - min(sizes) <= 3


# ----------------------------------------------------------------------
# Randomized whole-table invariants
# ----------------------------------------------------------------------
@st.composite
def session_tables(draw):
    n = draw(st.integers(min_value=1, max_value=300))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    return SessionTable(
        service_idx=rng.integers(0, len(SERVICE_NAMES), n),
        bs_id=rng.integers(0, 4, n),
        day=rng.integers(0, 2, n),
        start_minute=rng.integers(0, 1440, n),
        duration_s=rng.uniform(1.0, 5000.0, n),
        volume_mb=rng.uniform(1e-3, 100.0, n),
        truncated=rng.random(n) < 0.2,
    )


@given(table=session_tables())
@settings(max_examples=30, deadline=None)
def test_property_service_shares_form_distribution(table):
    """Session and traffic shares always sum to 1 over the catalog."""
    shares = service_shares(table)
    assert sum(s for s, _ in shares.values()) == pytest.approx(1.0)
    assert sum(t for _, t in shares.values()) == pytest.approx(1.0)
    assert all(s >= 0 and t >= 0 for s, t in shares.values())


@given(table=session_tables())
@settings(max_examples=30, deadline=None)
def test_property_demand_matrix_conserves_volume(table):
    """Demand spreading never creates volume; clipping only sheds it."""
    demand = demand_matrix(table, [0, 1, 2, 3], 2)
    total = float(table.volume_mb.sum())
    assert demand.sum() <= total * (1 + 1e-6)
    assert demand.sum() >= 0.3 * total  # clipping is bounded


@given(table=session_tables())
@settings(max_examples=30, deadline=None)
def test_property_minute_counts_account_for_every_session(table):
    """Per-minute arrival counts over all BSs sum to the table size."""
    counts = minute_arrival_counts(table, [0, 1, 2, 3], 2)
    assert counts.sum() == len(table)
