"""Table 2 + Fig 12 data source — capacity allocation for network slicing.

Reproduces: the percentage of time with no dropped traffic (and its std
across services/antennas) for the model-driven allocator vs. the two
literature benchmarks, over an area of 10 antennas with the 28 Table 1
SPs under a 95 % SLA.

Paper values: model 95.15 % (std 2.1), bm a 89.8 % (4.3), bm b 87.25 %
(4.2).  The expected *shape*: only the session-level model essentially
meets the SLA; the category benchmarks fall short and are far more
variable across services.
"""

import numpy as np

from repro.usecases.slicing import SlicingScenario, run_slicing_experiment
from repro.io.tables import format_table

#: Shorter horizon than the paper's full week, preserving every mechanism.
SCENARIO = SlicingScenario(n_antennas=10, n_days=3, n_model_days=6)


def test_table2_slicing_sla(benchmark, emit):
    outcome = benchmark.pedantic(
        run_slicing_experiment,
        args=(np.random.default_rng(2024),),
        kwargs={"scenario": SCENARIO},
        rounds=1,
        iterations=1,
    )

    paper = {"model": (95.15, 2.1), "bm_a": (89.8, 4.3), "bm_b": (87.25, 4.2)}
    rows = []
    for name in ("model", "bm_a", "bm_b"):
        result = outcome.results[name]
        rows.append(
            [
                name,
                100 * result.mean_satisfaction,
                paper[name][0],
                100 * result.std_satisfaction,
                paper[name][1],
            ]
        )
    emit(
        "table2_slicing",
        format_table(
            [
                "strategy",
                "no-drop % (meas)",
                "no-drop % (paper)",
                "std (meas)",
                "std (paper)",
            ],
            rows,
        ),
    )

    results = outcome.results
    # Shape: the model wins, bm a >= bm b, and the model is the only
    # strategy close to the 95 % SLA.
    assert (
        results["model"].mean_satisfaction
        > results["bm_a"].mean_satisfaction
        >= results["bm_b"].mean_satisfaction - 0.005
    )
    assert results["model"].mean_satisfaction > 0.92
    # The model's satisfaction is far more uniform across services.
    assert results["model"].std_satisfaction < 0.5 * results["bm_a"].std_satisfaction
