"""Ablation — DU locality in session placement.

The paper's orchestrator (Section 6.2.1) packs purely for energy; real
vRAN deployments also care how much of each Distributed Unit's processing
lands on a single server (fronthaul fan-out).  Three policies compared on
identical traffic:

* energy-only first-fit (the paper's heuristic);
* load-weighted DU-affinity first-fit — prefers the PS already hosting
  most of the session's DU: same energy, markedly higher concentration;
* affinity + 60 % utilization cap — head-room costs energy and does NOT
  help concentration (more active PSs just give each DU more places to
  smear over); the preference, not the slack, is what buys locality.
"""

import numpy as np

from repro.core.service_mix import ServiceMix
from repro.dataset.records import SERVICE_NAMES
from repro.io.tables import format_table
from repro.usecases.vran.simulator import VranScenario, run_orchestration
from repro.usecases.vran.sources import (
    MeasurementSource,
    generate_skeleton,
)
from repro.usecases.vran.topology import VranTopology

SCENARIO = VranScenario(
    topology=VranTopology(n_es=10, n_ru_per_es=2),
    horizon_s=1200.0,
    warmup_s=400.0,
)


def test_ablation_du_affinity(benchmark, bench_campaign, emit):
    measurement = MeasurementSource.from_table(
        bench_campaign, list(SERVICE_NAMES)
    )
    covered = [SERVICE_NAMES[i] for i in measurement.service_indices]
    mix = ServiceMix.from_measurements(bench_campaign).restricted_to(covered)
    rng = np.random.default_rng(44)
    skeleton = generate_skeleton(
        SCENARIO.topology, mix, rng, SCENARIO.horizon_s,
        SCENARIO.start_minute_of_day,
    )
    volumes, durations = measurement.decorate(skeleton, rng)

    plain = benchmark.pedantic(
        run_orchestration,
        args=(skeleton, volumes, durations, SCENARIO),
        rounds=1,
        iterations=1,
    )
    affine = run_orchestration(
        skeleton, volumes, durations, SCENARIO, du_affinity=True
    )
    slack = run_orchestration(
        skeleton, volumes, durations, SCENARIO,
        du_affinity=True, utilization_cap=0.6,
    )

    warm = slice(int(SCENARIO.warmup_s), None)
    rows = [
        [
            "energy-only",
            float(plain.n_ps[warm].mean()),
            float(plain.power_w[warm].mean()),
            float(plain.mean_dus_per_ps[warm].mean()),
            float(plain.du_concentration[warm].mean()),
        ],
        [
            "DU-affinity",
            float(affine.n_ps[warm].mean()),
            float(affine.power_w[warm].mean()),
            float(affine.mean_dus_per_ps[warm].mean()),
            float(affine.du_concentration[warm].mean()),
        ],
        [
            "DU-affinity + 60% cap",
            float(slack.n_ps[warm].mean()),
            float(slack.power_w[warm].mean()),
            float(slack.mean_dus_per_ps[warm].mean()),
            float(slack.du_concentration[warm].mean()),
        ],
    ]
    emit(
        "ablation_du_affinity",
        format_table(
            ["policy", "mean active PSs", "mean power W", "DUs per PS", "DU concentration"],
            rows,
        ),
    )

    plain_power = plain.power_w[warm].mean()
    affine_power = affine.power_w[warm].mean()
    slack_power = slack.power_w[warm].mean()
    # The load-weighted preference is energy-free...
    assert affine_power <= 1.05 * plain_power
    # ...and buys a solid concentration gain.
    assert (
        affine.du_concentration[warm].mean()
        > 1.2 * plain.du_concentration[warm].mean()
    )
    # Head-room costs energy without improving concentration further.
    assert plain_power < slack_power < 2.0 * plain_power
    assert (
        slack.du_concentration[warm].mean()
        < affine.du_concentration[warm].mean()
    )
