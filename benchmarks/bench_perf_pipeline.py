"""Performance benchmarks of the heavy pipeline stages.

Not a paper artefact: these measure the library's own throughput — the
simulator (sessions generated per second), the aggregation fast paths and
the model-driven generator — so regressions in the hot loops are caught.
"""

import os
import time

import numpy as np

from repro.core.generator import TrafficGenerator
from repro.core.service_mix import ServiceMix
from repro.dataset.aggregation import (
    aggregate_per_bs_day,
    pooled_duration_volume,
    pooled_volume_pdf,
)
from repro.dataset.network import Network, NetworkConfig
from repro.dataset.simulator import SimulationConfig, simulate
from repro.pipeline import make_executor
from repro.usecases.slicing.demand import demand_matrix
from repro.usecases.slicing.simulator import fit_antenna_arrival_models

#: Worker count of the parallel benchmark variants.
PARALLEL_JOBS = 4


def test_perf_simulator(benchmark):
    network = Network(NetworkConfig(n_bs=10), np.random.default_rng(0))
    config = SimulationConfig(n_days=1)

    def run():
        return simulate(network, config, np.random.default_rng(1))

    table = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(table) > 50_000  # meaningful workload


def test_perf_simulator_parallel(benchmark, emit):
    """The same campaign fanned out over a process pool.

    Always checks bit-identity against the serial run; the speedup assertion
    only fires on machines with enough cores to host the workers.
    """
    network = Network(NetworkConfig(n_bs=10), np.random.default_rng(0))
    config = SimulationConfig(n_days=4)

    start = time.perf_counter()
    serial = simulate(network, config, 1)
    serial_s = time.perf_counter() - start

    with make_executor(PARALLEL_JOBS) as executor:
        executor.map(len, [()])  # warm the pool outside the timed region

        def run():
            return simulate(network, config, 1, executor=executor)

        parallel = benchmark.pedantic(run, rounds=1, iterations=1)
    parallel_s = benchmark.stats.stats.mean

    assert len(parallel) == len(serial)
    assert np.array_equal(parallel.volume_mb, serial.volume_mb)
    assert np.array_equal(parallel.bs_id, serial.bs_id)

    speedup = serial_s / parallel_s
    emit(
        "perf_pipeline_parallel",
        f"simulate 10 BS x 4 days: serial {serial_s:.2f}s, "
        f"--jobs {PARALLEL_JOBS} {parallel_s:.2f}s "
        f"(speedup {speedup:.2f}x on {os.cpu_count()} CPUs)",
    )
    if (os.cpu_count() or 1) >= PARALLEL_JOBS:
        assert speedup > 1.5


def test_perf_pooled_aggregation(benchmark, bench_campaign):
    sub = bench_campaign.for_service("Facebook")

    def run():
        return pooled_volume_pdf(sub), pooled_duration_volume(sub)

    pdf, _ = benchmark.pedantic(run, rounds=5, iterations=1)
    assert pdf.total_mass > 0.99


def test_perf_per_bs_day_aggregation(benchmark, bench_campaign):
    sub = bench_campaign.for_bs_ids(range(8))
    stats = benchmark.pedantic(
        aggregate_per_bs_day, args=(sub,), rounds=1, iterations=1
    )
    assert len(stats) > 50


def test_perf_model_generator(benchmark, bench_campaign, bench_bank):
    arrival_models = fit_antenna_arrival_models(bench_campaign, [39], 7)
    mix = ServiceMix.from_measurements(bench_campaign).restricted_to(
        bench_bank.services()
    )
    generator = TrafficGenerator(arrival_models, mix, bench_bank)

    def run():
        return generator.generate_campaign(1, np.random.default_rng(2))

    table = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(table) > 10_000


def test_perf_demand_matrix(benchmark, bench_campaign):
    table = benchmark.pedantic(
        demand_matrix,
        args=(bench_campaign, list(range(10)), 7),
        rounds=2,
        iterations=1,
    )
    assert table.shape[0] == 10
