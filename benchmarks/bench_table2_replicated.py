"""Table 2 with error bars — replicated slicing experiment.

The paper reports one run; this bench reruns the slicing evaluation over
independent seeds and reports mean ± std of the headline metric per
strategy, confirming the Table 2 ordering is not a seed artefact.
"""

import numpy as np

from repro.analysis.replication import replicate
from repro.io.tables import format_table
from repro.usecases.slicing import SlicingScenario, run_slicing_experiment

SCENARIO = SlicingScenario(n_antennas=10, n_days=1, n_model_days=3)
N_REPLICAS = 3


def test_table2_replicated(benchmark, emit):
    def experiment(rng: np.random.Generator) -> dict[str, float]:
        outcome = run_slicing_experiment(rng, SCENARIO)
        return {
            name: 100 * result.mean_satisfaction
            for name, result in outcome.results.items()
        }

    summary = benchmark.pedantic(
        replicate,
        args=(experiment, N_REPLICAS),
        kwargs={"seed": 555},
        rounds=1,
        iterations=1,
    )

    emit(
        "table2_replicated",
        format_table(
            ["strategy", "no-drop % (mean)", "std", "min", "max"],
            summary.rows(),
        )
        + f"\n\n{N_REPLICAS} independent replicas "
        "(paper: model 95.15 / bm a 89.8 / bm b 87.25, single run)",
    )

    # The ordering of Table 2 must hold on the replica means, with the
    # model clearly separated from the benchmarks beyond one sigma.
    model = summary["model"]
    bm_a = summary["bm_a"]
    bm_b = summary["bm_b"]
    assert model.mean > bm_a.mean >= bm_b.mean - 0.5
    assert model.mean - model.std > max(bm_a.mean, bm_b.mean) - 3.0
