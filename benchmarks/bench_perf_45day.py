"""Scale validation — a paper-duration (45-day) campaign in bounded memory.

Uses the streaming aggregation path to run the paper's full measurement
horizon on a scaled BS population, verifying:

* the run completes on laptop memory (no raw-session materialization);
* 45-day statistics refine — not shift — the short-campaign fits, as the
  paper's day-type invariance implies.
"""

import os
import time

import numpy as np

from repro.dataset.network import Network, NetworkConfig
from repro.dataset.simulator import SimulationConfig
from repro.dataset.streaming import simulate_aggregated
from repro.io.tables import format_table
from repro.pipeline import make_executor


def test_perf_45_day_streaming_campaign(benchmark, emit):
    network = Network(NetworkConfig(n_bs=10), np.random.default_rng(12))
    config = SimulationConfig(n_days=45)

    accumulator = benchmark.pedantic(
        simulate_aggregated,
        args=(network, config, np.random.default_rng(13)),
        rounds=1,
        iterations=1,
    )
    assert accumulator.n_sessions > 3_000_000

    bank = accumulator.fit_bank(min_sessions=2000)
    rows = []
    for service in ("Facebook", "Instagram", "Netflix", "Twitch", "Deezer"):
        model = bank.get(service)
        measured = accumulator.volume_pdf(service)
        rows.append(
            [
                service,
                int(accumulator.service_shares()[service][0] * accumulator.n_sessions),
                measured.mean_mb(),
                model.volume.as_histogram().mean_mb(),
                model.duration.beta,
                model.duration.r2,
            ]
        )
    emit(
        "perf_45day",
        f"45-day streaming campaign: {accumulator.n_sessions} sessions, "
        f"10 BSs, truncated share "
        f"{100 * accumulator.truncated_fraction:.1f} %\n"
        + format_table(
            ["service", "sessions", "mean MB (meas)", "mean MB (model)",
             "beta", "R^2"],
            rows,
        ),
    )

    fits = {row[0]: row for row in rows}
    # The paper-duration statistics recover the same behaviours.
    assert fits["Netflix"][4] > 1.2
    assert fits["Facebook"][4] < 1.0
    for row in rows:
        assert abs(row[3] / row[2] - 1) < 0.05   # mean-calibrated fits
        assert row[5] > 0.9                      # huge-sample regressions


def test_perf_45_day_parallel_speedup(emit):
    """Serial vs ``--jobs 4`` wall clock at the paper-duration scale.

    The 450 (day, BS) work units are embarrassingly parallel, so four
    workers should cut the campaign at least in half on a 4-core machine;
    on smaller machines the numbers are still emitted but not asserted.
    Output equality is asserted unconditionally — parallelism must never
    change a single accumulator cell.
    """
    jobs = 4
    network = Network(NetworkConfig(n_bs=10), np.random.default_rng(12))
    config = SimulationConfig(n_days=45)

    start = time.perf_counter()
    serial = simulate_aggregated(network, config, 13)
    serial_s = time.perf_counter() - start

    with make_executor(jobs) as executor:
        executor.map(len, [()])  # warm the pool outside the timed region
        start = time.perf_counter()
        parallel = simulate_aggregated(network, config, 13, executor=executor)
        parallel_s = time.perf_counter() - start

    assert parallel.n_sessions == serial.n_sessions
    assert np.array_equal(parallel._traffic_mb, serial._traffic_mb)

    speedup = serial_s / parallel_s
    emit(
        "perf_45day_parallel",
        f"45-day streaming campaign ({serial.n_sessions} sessions): "
        f"serial {serial_s:.1f}s, --jobs {jobs} {parallel_s:.1f}s "
        f"(speedup {speedup:.2f}x on {os.cpu_count()} CPUs)",
    )
    if (os.cpu_count() or 1) >= jobs:
        assert speedup >= 2.0
