"""Fig 10 — power-law exponents of the fitted v(d) per service.

Reproduces: the per-service exponents beta with their R^2 scores.  Paper
shapes: beta spans roughly 0.1–1.8; video streaming services are the
super-linear ones (throughput grows with session duration), non-video
services are sub-linear; R^2 values are typically 0.7–0.9.
"""

from repro.core.duration_model import fit_power_law
from repro.dataset.aggregation import pooled_duration_volume
from repro.dataset.profiles import PROFILES
from repro.dataset.records import SERVICE_NAMES
from repro.io.tables import format_table

MIN_SESSIONS = 2000

VIDEO_STREAMING = ("Netflix", "Twitch", "FB Live", "Youtube", "Dailymotion")
NON_VIDEO = ("Facebook", "Amazon", "Waze", "Google Maps", "Twitter", "Gmail")


def test_fig10_power_law_exponents(benchmark, bench_campaign, emit):
    netflix_curve = pooled_duration_volume(bench_campaign.for_service("Netflix"))
    benchmark.pedantic(
        fit_power_law, args=(netflix_curve,), rounds=5, iterations=1
    )

    rows = []
    fitted = {}
    for name in SERVICE_NAMES:
        sub = bench_campaign.for_service(name)
        if len(sub) < MIN_SESSIONS:
            continue
        model = fit_power_law(pooled_duration_volume(sub))
        fitted[name] = model
        rows.append(
            [
                name,
                model.beta,
                model.r2,
                PROFILES[name].beta,
                "super" if model.is_super_linear else "sub",
            ]
        )
    rows.sort(key=lambda r: -r[1])
    emit(
        "fig10_powerlaw",
        format_table(
            ["service", "beta (fit)", "R^2", "beta (ground truth)", "linearity"],
            rows,
        ),
    )

    betas = [row[1] for row in rows]
    # Exponents span a wide range, within the paper's [0.1, 1.8] envelope.
    assert min(betas) > 0.0
    assert max(betas) < 2.0
    assert max(betas) - min(betas) > 0.8
    # Video streaming dominates the super-linear regime.
    for name in VIDEO_STREAMING:
        if name in fitted:
            assert fitted[name].beta > 1.0, name
    for name in NON_VIDEO:
        if name in fitted:
            assert fitted[name].beta < 1.0, name
    # Fit quality in the paper's reported band (or better).
    assert all(row[2] > 0.5 for row in rows)
