"""Fig 13c — vRAN power consumption over time.

Reproduces: the temporal evolution of the CU cloud-site power draw under
real (measurement-driven) traffic, our session-level model, and bm c (the
per-category-normalized literature benchmark).  Paper shape: the model's
curve tracks the real one closely; bm c drifts far above it.
"""

import numpy as np

from repro.usecases.vran import VranScenario, VranTopology, run_vran_experiment
from repro.io.tables import format_table

SCENARIO = VranScenario(
    topology=VranTopology(n_es=6, n_ru_per_es=5),
    horizon_s=1800.0,
    warmup_s=600.0,
)


def test_fig13c_power_timeseries(benchmark, bench_campaign, emit):
    outcome = benchmark.pedantic(
        run_vran_experiment,
        args=(bench_campaign, np.random.default_rng(66)),
        kwargs={"scenario": SCENARIO, "strategies": ("model", "bm_c")},
        rounds=1,
        iterations=1,
    )

    traces = outcome.traces
    window = 60  # 1-minute averages for the text series
    rows = []
    n = len(traces["measurement"])
    for start in range(0, n - window + 1, window * 2):
        sl = slice(start, start + window)
        rows.append(
            [
                start,
                float(traces["measurement"].power_w[sl].mean()),
                float(traces["model"].power_w[sl].mean()),
                float(traces["bm_c"].power_w[sl].mean()),
            ]
        )
    emit(
        "fig13c_power_timeseries",
        format_table(
            ["t (s)", "real W", "model W", "bm c W"], rows
        ),
    )

    warm = slice(int(SCENARIO.warmup_s), None)
    real = traces["measurement"].power_w[warm].mean()
    model = traces["model"].power_w[warm].mean()
    bm_c = traces["bm_c"].power_w[warm].mean()
    # Shape: the model tracks reality; bm c does not.
    assert abs(model - real) / real < 0.15
    assert abs(bm_c - real) / real > 2 * abs(model - real) / real
