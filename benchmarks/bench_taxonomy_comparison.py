"""Fig 1 taxonomy — what session-level models add over BS-level models.

The paper's introduction positions session-level modeling against the
coarser BS-level family.  This bench makes the comparison concrete on the
same campaign:

* on *aggregate* per-minute BS traffic, both granularities are accurate —
  session-level models reproduce the aggregates they never directly
  fitted (a consistency check);
* per-service structure only exists at session level: a BS-level model
  cannot even pose the slicing question, and uniformly splitting its
  aggregate across services misses the real per-service demand by large
  factors.
"""

import numpy as np

from repro.core.bs_level import (
    aggregate_accuracy,
    bs_minute_traffic,
    fit_bs_level_model,
)
from repro.core.generator import TrafficGenerator
from repro.core.service_mix import ServiceMix
from repro.dataset.records import SERVICE_INDEX, SERVICE_NAMES
from repro.io.tables import format_table
from repro.usecases.slicing.demand import demand_matrix
from repro.usecases.slicing.simulator import fit_antenna_arrival_models

from benchmarks.conftest import BENCH_N_DAYS

BS_ID = 39  # a busy antenna
N_SYN_DAYS = 4


def test_taxonomy_bs_level_vs_session_level(
    benchmark, bench_campaign, bench_bank, emit
):
    measured = bs_minute_traffic(bench_campaign, BS_ID, BENCH_N_DAYS)

    # BS-level model: fit + sample the aggregate directly.
    bs_model = benchmark.pedantic(
        fit_bs_level_model, args=(measured,), rounds=3, iterations=1
    )
    bs_synth = bs_model.sample_campaign(N_SYN_DAYS, np.random.default_rng(1))

    # Session-level models: generate sessions, derive the aggregate.
    arrivals = fit_antenna_arrival_models(
        bench_campaign, [BS_ID], BENCH_N_DAYS
    )
    mix = ServiceMix.from_measurements(bench_campaign).restricted_to(
        bench_bank.services()
    )
    generator = TrafficGenerator(arrivals, mix, bench_bank)
    session_table = generator.generate_campaign(
        N_SYN_DAYS, np.random.default_rng(2)
    )
    session_synth = bs_minute_traffic(session_table, BS_ID, N_SYN_DAYS)

    bs_err = aggregate_accuracy(measured, bs_synth)
    session_err = aggregate_accuracy(measured, session_synth)

    # Per-service demand: only the session-level model has it; emulate the
    # best a BS-level model could do (uniform split of its aggregate).
    real_demand = demand_matrix(
        bench_campaign, [BS_ID], BENCH_N_DAYS
    )[0]
    per_service_real = real_demand.mean(axis=1)
    synth_demand = demand_matrix(session_table, [BS_ID], N_SYN_DAYS)[0]
    per_service_session = synth_demand.mean(axis=1)
    uniform_split = np.full(
        len(SERVICE_NAMES), bs_synth.mean() / len(SERVICE_NAMES)
    )

    def per_service_ape(estimate):
        top = [
            SERVICE_INDEX[name]
            for name in ("Facebook", "Instagram", "Netflix", "SnapChat")
        ]
        real = per_service_real[top]
        return float(
            np.mean(100 * np.abs(estimate[top] - real) / real)
        )

    rows = [
        [
            "BS-level model",
            100 * bs_err["mean"],
            100 * bs_err["day_night_ratio"],
            per_service_ape(uniform_split),
        ],
        [
            "session-level models",
            100 * session_err["mean"],
            100 * session_err["day_night_ratio"],
            per_service_ape(per_service_session),
        ],
    ]
    emit(
        "taxonomy_comparison",
        format_table(
            [
                "granularity",
                "aggregate mean err %",
                "day/night ratio err %",
                "per-service demand APE %",
            ],
            rows,
        ),
    )

    # Both reproduce the aggregate...
    assert bs_err["mean"] < 0.25
    assert session_err["mean"] < 0.25
    # ...but per-service structure only survives at session level.
    assert per_service_ape(per_service_session) < 30.0
    assert per_service_ape(uniform_split) > 60.0
