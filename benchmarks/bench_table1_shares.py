"""Table 1 — session and traffic share per service, with CVs.

Reproduces: the percent contribution of each of the 28 tabulated services
to the total number of sessions and to the total traffic, plus the
coefficient of variation of those shares across the network.  Paper shapes:
Facebook/Instagram/SnapChat dominate sessions (top-3 ~75 %); traffic is
redistributed towards streaming-heavy services (Netflix 2.4 % of sessions
but ~11 % of traffic); session-share CVs are small and stable.
"""

from repro.dataset.aggregation import service_shares, share_variability
from repro.dataset.services import TABLE1_SERVICES, get_service
from repro.io.tables import format_table


def test_table1_service_shares(benchmark, bench_campaign, emit):
    shares = benchmark.pedantic(
        service_shares, args=(bench_campaign,), rounds=3, iterations=1
    )

    rows = []
    for name in TABLE1_SERVICES:
        info = get_service(name)
        session_share, traffic_share = shares[name]
        session_cv, traffic_cv = share_variability(bench_campaign, name)
        rows.append(
            [
                name,
                100 * session_share,
                info.session_share_pct,
                100 * traffic_share,
                info.traffic_share_pct,
                session_cv,
                traffic_cv,
            ]
        )
    emit(
        "table1_shares",
        format_table(
            [
                "service",
                "sessions % (meas)",
                "sessions % (paper)",
                "traffic % (meas)",
                "traffic % (paper)",
                "session CV",
                "traffic CV",
            ],
            rows,
        ),
    )

    by_name = {row[0]: row for row in rows}
    # Session shares track Table 1 closely for the head services.
    for name in ("Facebook", "Instagram", "SnapChat", "Youtube", "Netflix"):
        measured, paper = by_name[name][1], by_name[name][2]
        assert abs(measured - paper) < 0.15 * paper + 0.5, name
    # Traffic redistribution: Netflix's traffic share far exceeds its
    # session share; Youtube's collapses.
    assert by_name["Netflix"][3] > 3 * by_name["Netflix"][1]
    assert by_name["Youtube"][3] < 0.5 * by_name["Youtube"][1]
    # Session-share CVs are small for the head services (paper: ~1 %).
    assert by_name["Facebook"][5] < 0.1
