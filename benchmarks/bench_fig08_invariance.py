"""Fig 8 — invariance of session-level statistics across space/time/RAT.

Reproduces: the boxplots of EMD (volume PDFs) and SED (duration–volume
pairs) for (i) different services ("Apps"), and for the same service across
(ii) working days vs weekends, (iii) regions, (iv) cities, and (v) 4G vs 5G
RATs, plus the per-RAT inter-app spreads.  The paper's core finding: the
same-service distances are negligible compared to the inter-service ones.
"""

import numpy as np

from benchmarks.conftest import BENCH_N_DAYS
from repro.analysis.comparisons import invariance_report
from repro.analysis.metrics import BoxplotStats
from repro.dataset.simulator import SimulationConfig
from repro.io.tables import format_table

SERVICES = (
    "Facebook",
    "Instagram",
    "SnapChat",
    "Youtube",
    "Netflix",
    "Google Maps",
    "Twitter",
    "Waze",
    "Deezer",
    "Twitch",
)


def test_fig08_invariance_boxplots(benchmark, bench_campaign, bench_network, emit):
    weekend = SimulationConfig(n_days=BENCH_N_DAYS).weekend_days()
    report = benchmark.pedantic(
        invariance_report,
        args=(bench_campaign, bench_network, list(SERVICES), weekend),
        rounds=1,
        iterations=1,
    )

    def summary_rows(samples_by_tag):
        rows = []
        for tag, samples in samples_by_tag.items():
            if samples.size == 0:
                continue
            stats = BoxplotStats.from_samples(samples)
            rows.append([tag, samples.size, *stats.as_row()])
        return rows

    header = ["tag", "n", "p5", "q1", "median", "q3", "p95"]
    emit(
        "fig08_invariance",
        "EMD of volume PDFs (Fig 8a/8b):\n"
        + format_table(header, summary_rows(report.emd_samples))
        + "\n\nSED of duration-volume pairs (Fig 8c/8d):\n"
        + format_table(header, summary_rows(report.sed_samples)),
    )

    apps = np.median(report.emd_samples["Apps"])
    for tag in ("Days", "Regions", "Cities", "RATs"):
        same_service = report.emd_samples[tag]
        if same_service.size:
            # Same-service differences negligible vs inter-service ones.
            assert np.median(same_service) < 0.35 * apps, tag

    # Inter-app diversity is stable across RATs (Fig 8b).
    for tag in ("Apps (4G)", "Apps (5G)"):
        if report.emd_samples[tag].size:
            assert np.median(report.emd_samples[tag]) > 0.5 * apps
