"""Fig 3 — per-minute session arrival-rate PDFs per BS load decile.

Reproduces: the bi-modal measured PDFs for increasingly loaded BS classes
and the fitted daytime Gaussian (sigma ~ mu/10) + nighttime Pareto
(shape 1.765) of Section 5.1.  The series reported per decile are the
fitted parameters and the measured day/night rate statistics; the paper's
anchors are mu = 1.21 sessions/min for the first decile and 71 for the
last.
"""


from benchmarks.conftest import BENCH_N_DAYS
from repro.core.arrivals import arrival_fit_error, fit_arrival_model_from_days
from repro.dataset.aggregation import minute_arrival_counts
from repro.dataset.circadian import peak_minute_mask
from repro.io.tables import format_table


def _fit_decile(campaign, network, decile, n_days):
    bs_ids = network.bs_ids_in_decile(decile)
    counts = minute_arrival_counts(campaign, bs_ids, n_days)
    matrix = counts.reshape(len(bs_ids) * n_days, 1440)
    return matrix, fit_arrival_model_from_days(matrix)


def test_fig03_arrival_rate_fits(benchmark, bench_campaign, bench_network, emit):
    matrix, _ = _fit_decile(bench_campaign, bench_network, 9, BENCH_N_DAYS)
    benchmark.pedantic(
        fit_arrival_model_from_days, args=(matrix,), rounds=3, iterations=1
    )

    mask = peak_minute_mask()
    rows = []
    for decile in range(10):
        matrix, model = _fit_decile(
            bench_campaign, bench_network, decile, BENCH_N_DAYS
        )
        day = matrix[:, mask].ravel()
        night = matrix[:, ~mask].ravel()
        rows.append(
            [
                decile + 1,
                float(day.mean()),
                model.peak_mu,
                model.peak_sigma,
                model.night_scale,
                model.night_shape,
                float(night.mean()),
                arrival_fit_error(matrix.ravel(), model),
            ]
        )
    emit(
        "fig03_arrivals",
        format_table(
            [
                "decile",
                "day rate (meas)",
                "fit mu",
                "fit sigma",
                "fit Pareto scale",
                "Pareto shape",
                "night rate (meas)",
                "fit EMD (sess/min)",
            ],
            rows,
        ),
    )

    # Shape assertions: the paper's anchors and the sigma ~ mu/10 rule.
    first, last = rows[0], rows[-1]
    assert 0.8 < first[2] < 2.0       # ~1.21 sessions/min
    assert 50.0 < last[2] < 95.0      # ~71 sessions/min
    for row in rows:
        assert abs(row[3] - row[2] / 10.0) < 1e-9
    # Bi-modality: daytime rates far above nighttime rates in every class
    # (integer rounding inflates the smallest night rates, hence 2.5x).
    for row in rows:
        assert row[1] > 2.5 * row[6]
    # Goodness of fit: the bi-modal model's EMD stays a small fraction of
    # each class's daytime rate.
    for row in rows:
        assert row[7] < 0.15 * row[2] + 0.3
