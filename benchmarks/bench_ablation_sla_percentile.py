"""Ablation — the SLA percentile: satisfaction vs reserved capacity.

Section 6.1 allocates each slice the 95th percentile of its modelled
demand.  This bench sweeps that operating point: lower percentiles save
reserved capacity but miss the SLA; higher ones waste capacity for
diminishing satisfaction — the efficiency argument of Fig 12 ("dimensioning
the slices based on traffic peaks may be very detrimental") made
quantitative.
"""

import numpy as np

from repro.core.model_bank import ModelBank
from repro.core.service_mix import ServiceMix
from repro.dataset.network import Network, NetworkConfig
from repro.dataset.services import TABLE1_SERVICES
from repro.dataset.simulator import SimulationConfig, simulate
from repro.io.tables import format_table
from repro.usecases.slicing.allocation import allocate_with_models
from repro.usecases.slicing.demand import campaign_peak_mask, demand_matrix
from repro.usecases.slicing.simulator import (
    evaluate_capacity,
    fit_antenna_arrival_models,
)

PERCENTILES = (80.0, 90.0, 95.0, 99.0, 99.9)
N_ANTENNAS = 10
N_DAYS = 2


def test_ablation_sla_percentile(benchmark, emit):
    rng = np.random.default_rng(71)
    network = Network(NetworkConfig(n_bs=N_ANTENNAS), rng)
    campaign = simulate(network, SimulationConfig(n_days=N_DAYS), rng)
    bs_ids = list(range(N_ANTENNAS))
    real_demand = demand_matrix(campaign, bs_ids, N_DAYS)
    peak = campaign_peak_mask(N_DAYS)

    arrival_models = fit_antenna_arrival_models(campaign, bs_ids, N_DAYS)
    bank = ModelBank.fit_from_table(
        campaign, services=list(TABLE1_SERVICES), min_sessions=300
    )
    mix = ServiceMix.from_measurements(campaign).restricted_to(bank.services())

    def sweep():
        rows = []
        for percentile in PERCENTILES:
            capacity = allocate_with_models(
                arrival_models, mix, bank, np.random.default_rng(5),
                n_sim_days=4, percentile=percentile,
            )
            satisfaction = evaluate_capacity(real_demand, capacity, peak)
            rows.append(
                [
                    percentile,
                    100 * float(satisfaction.mean()),
                    float(capacity.sum()),
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    base = rows[2][2]  # capacity reserved at the paper's 95th percentile
    table_rows = [
        [p, sat, cap, 100 * cap / base] for p, sat, cap in rows
    ]
    emit(
        "ablation_sla_percentile",
        format_table(
            [
                "allocation percentile",
                "time with no drops %",
                "reserved MB/min (total)",
                "capacity vs p95 %",
            ],
            table_rows,
        ),
    )

    satisfactions = [row[1] for row in rows]
    capacities = [row[2] for row in rows]
    # Monotone trade-off.
    assert satisfactions == sorted(satisfactions)
    assert capacities == sorted(capacities)
    # The paper's p95 sits at the knee: p99.9 buys < 10 pp satisfaction
    # for a large capacity premium.
    p95_sat, p999_sat = satisfactions[2], satisfactions[4]
    p95_cap, p999_cap = capacities[2], capacities[4]
    assert p999_sat - p95_sat < 10.0
    assert p999_cap > 1.15 * p95_cap
