"""Section 5.4 — model quality across every fitted service.

Reproduces: the quality summary the paper reports for its released models:
volume-PDF EMD an order of magnitude below the inter-service distances, and
duration-fit R^2 typically in the 0.7–0.9 band (occasionally as low as 0.5
on noisy curves).
"""

import numpy as np

from repro.analysis.emd import emd_matrix
from repro.analysis.metrics import r_squared
from repro.analysis.normalization import zero_mean
from repro.core.model_bank import ModelBank
from repro.dataset.aggregation import pooled_duration_volume, pooled_volume_pdf
from repro.io.tables import format_table


def test_model_quality_all_services(benchmark, bench_campaign, emit):
    bank = benchmark.pedantic(
        ModelBank.fit_from_table,
        args=(bench_campaign,),
        kwargs={"min_sessions": 2000},
        rounds=1,
        iterations=1,
    )

    rows = []
    pdfs = []
    for name in bank.services():
        sub = bench_campaign.for_service(name)
        measured = pooled_volume_pdf(sub)
        pdfs.append(zero_mean(measured))
        model = bank.get(name)
        durations, volumes, _ = pooled_duration_volume(sub).observed()
        ok = volumes > 0
        predicted = model.duration.predict_volume_mb(durations[ok])
        rows.append(
            [
                name,
                model.volume.error_against(measured),
                len(model.volume.peaks),
                model.duration.beta,
                r_squared(np.log10(volumes[ok]), np.log10(predicted)),
            ]
        )

    inter_service = emd_matrix(pdfs)
    reference = float(
        inter_service[np.triu_indices(len(pdfs), 1)].mean()
    )
    model_emds = [row[1] for row in rows]
    emit(
        "model_quality",
        format_table(
            ["service", "EMD", "peaks", "beta", "v(d) R^2"], rows
        )
        + f"\n\nmean model EMD = {np.mean(model_emds):.4f} decades"
        f"\nmean inter-service EMD = {reference:.4f} decades"
        f"\nratio = {np.mean(model_emds) / reference:.3f}"
        " (paper: model error an order of magnitude below Fig 8a distances)",
    )

    # Shape assertions.
    assert np.mean(model_emds) < 0.25 * reference
    assert all(row[2] <= 3 for row in rows)        # <= 3 peaks per model
    r2s = [row[4] for row in rows]
    assert np.median(r2s) > 0.7                    # typical 0.7-0.9
    assert min(r2s) > 0.4                          # "as low as 0.5"
