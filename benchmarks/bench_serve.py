"""Load benchmark of the statistics service under concurrent clients.

Builds one deterministic synthetic campaign aggregate, ingests it into an
:class:`~repro.serve.store.AggregateStore` under many campaign names (a
nationwide store holds one entry per regional campaign), starts the real
threaded WSGI stack (:func:`repro.serve.http.make_server`) on an
ephemeral port, and drives it with concurrent keep-alive-free HTTP
clients over the endpoint mix a dashboard would issue — campaign
listings, per-service shares, volume/duration PDFs, fidelity verdicts and
``/metrics`` scrapes.

Reported per mode into ``BENCH_serve.json``:

* sustained requests/s across all client threads;
* p50 / p99 request latency, overall and per route;
* error count (any non-200 response fails the benchmark);
* a final ``/metrics`` scrape validated by the dependency-free
  Prometheus parser (:func:`repro.obs.expose.parse_exposition`), so the
  run also proves the exposition endpoint stays well-formed under load.

Two sizes::

    python benchmarks/bench_serve.py            # nationwide store
    python benchmarks/bench_serve.py --smoke    # CI-sized

Latencies include the loopback TCP round trip and one connection
handshake per request (clients do not reuse connections), which is the
honest per-request cost of the stdlib threaded server.
"""

import argparse
import json
import threading
import time
import urllib.request

import numpy as np

from repro.campaign.sketches import CampaignAggregate
from repro.core.arrivals import ArrivalModel
from repro.core.generator import TrafficGenerator
from repro.core.model_bank import ModelBank
from repro.core.service_mix import ServiceMix
from repro.dataset.network import Network, NetworkConfig
from repro.dataset.simulator import SimulationConfig, simulate
from repro.obs.expose import parse_exposition
from repro.pipeline.context import mint_trace_id
from repro.serve import AggregateStore, ServeApp, make_server
from repro.verify import Baseline, default_baseline_path

#: Root seed of the synthetic campaign every ingested entry derives from.
SEED = 0

#: Full mode: store size (campaign entries), client threads, requests
#: per thread.  Smoke mode is CI-sized with the same endpoint mix.
FULL_CAMPAIGNS, FULL_CLIENTS, FULL_REQUESTS = 64, 8, 250
SMOKE_CAMPAIGNS, SMOKE_CLIENTS, SMOKE_REQUESTS = 8, 4, 40

#: HLL precision of the synthetic aggregate (small keeps ingest quick;
#: the served document sizes are what load the request path).
PRECISION = 12

#: Campaign footprint of the synthetic aggregate.
N_BS, DAYS = 12, 1


def build_aggregate() -> CampaignAggregate:
    """One deterministic campaign aggregate (same recipe as the tests)."""
    network = Network(NetworkConfig(n_bs=10), np.random.default_rng(101))
    campaign = simulate(
        network, SimulationConfig(n_days=2), np.random.default_rng(202)
    )
    bank = ModelBank.fit_from_table(campaign, min_sessions=500)
    mix = ServiceMix.from_measurements(campaign).restricted_to(
        bank.services()
    )
    arrival = ArrivalModel(peak_mu=2.0, peak_sigma=0.5, night_scale=0.4)
    generator = TrafficGenerator(
        {bs: arrival for bs in range(N_BS)}, mix, bank
    )
    table = generator.generate_campaign(DAYS, SEED)
    return CampaignAggregate.from_table(
        table, n_units=N_BS * DAYS, precision=PRECISION
    )


def populate(store: AggregateStore, n_campaigns: int) -> list[str]:
    """Ingest the aggregate under ``n_campaigns`` regional names."""
    payload = build_aggregate().to_dict()
    payload["provenance"] = {"trace_id": mint_trace_id(SEED)}
    names = [f"region-{index:03d}" for index in range(n_campaigns)]
    for name in names:
        store.ingest_aggregate(name, payload)
    return names


def request_plan(names: list[str], n_requests: int) -> list[tuple[str, str]]:
    """The (route, url-path) sequence one client thread issues.

    A fixed rotation over the endpoint mix, sweeping campaign names so
    successive requests hit different store rows; every thread runs the
    same plan, so the workload is reproducible run to run.
    """
    routed = [
        ("/v1/campaigns", "/v1/campaigns?limit=25"),
        ("/v1/services/shares", "/v1/services/shares?campaign={name}"),
        ("/v1/pdf/volume", "/v1/pdf/volume?campaign={name}"),
        ("/v1/pdf/duration", "/v1/pdf/duration?campaign={name}"),
        ("/v1/fidelity", "/v1/fidelity?campaign={name}"),
        ("/metrics", "/metrics"),
    ]
    plan = []
    for index in range(n_requests):
        route, template = routed[index % len(routed)]
        name = names[index % len(names)]
        plan.append((route, template.format(name=name)))
    return plan


def client(
    base: str,
    plan: list[tuple[str, str]],
    latencies: dict[str, list[float]],
    errors: list[str],
    lock: threading.Lock,
) -> None:
    """One client thread: issue the plan, record per-route latencies."""
    local: dict[str, list[float]] = {}
    local_errors: list[str] = []
    for route, path in plan:
        start = time.perf_counter()
        try:
            with urllib.request.urlopen(base + path, timeout=30) as response:
                response.read()
                status = response.status
        except Exception as exc:  # noqa: BLE001 - any failure is a verdict
            local_errors.append(f"{path}: {exc}")
            continue
        elapsed = time.perf_counter() - start
        if status != 200:
            local_errors.append(f"{path}: HTTP {status}")
            continue
        local.setdefault(route, []).append(elapsed)
    with lock:
        for route, values in local.items():
            latencies.setdefault(route, []).extend(values)
        errors.extend(local_errors)


def percentiles(values: list[float]) -> dict:
    """p50/p99 of a latency sample, in milliseconds."""
    array = np.asarray(values, dtype=float) * 1e3
    return {
        "count": int(array.size),
        "p50_ms": round(float(np.percentile(array, 50)), 3),
        "p99_ms": round(float(np.percentile(array, 99)), 3),
    }


def run(smoke: bool) -> dict:
    """Execute the load phase and assemble the report payload."""
    n_campaigns, n_clients, n_requests = (
        (SMOKE_CAMPAIGNS, SMOKE_CLIENTS, SMOKE_REQUESTS)
        if smoke
        else (FULL_CAMPAIGNS, FULL_CLIENTS, FULL_REQUESTS)
    )
    store = AggregateStore(
        ":memory:", baseline=Baseline.load(default_baseline_path())
    )
    ingest_start = time.perf_counter()
    names = populate(store, n_campaigns)
    ingest_s = time.perf_counter() - ingest_start

    app = ServeApp(store, readonly=True)
    server = make_server("127.0.0.1", 0, app)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{server.server_port}"

    plan = request_plan(names, n_requests)
    latencies: dict[str, list[float]] = {}
    errors: list[str] = []
    lock = threading.Lock()
    workers = [
        threading.Thread(
            target=client, args=(base, plan, latencies, errors, lock)
        )
        for _ in range(n_clients)
    ]
    load_start = time.perf_counter()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    load_s = time.perf_counter() - load_start

    exposition = urllib.request.urlopen(base + "/metrics", timeout=30).read()
    families = parse_exposition(exposition.decode("utf-8"))
    trace = urllib.request.urlopen(
        base + f"/v1/services/shares?campaign={names[0]}", timeout=30
    ).headers.get("X-Repro-Trace")

    server.shutdown()
    server.server_close()
    store.close()

    completed = sum(len(values) for values in latencies.values())
    all_values = [v for values in latencies.values() for v in values]
    return {
        "benchmark": "serve-load",
        "mode": "smoke" if smoke else "full",
        "config": {
            "seed": SEED,
            "campaigns": n_campaigns,
            "clients": n_clients,
            "requests_per_client": n_requests,
            "hll_precision": PRECISION,
        },
        "ingest": {
            "campaigns": n_campaigns,
            "seconds": round(ingest_s, 3),
        },
        "load": {
            "requests": completed,
            "errors": len(errors),
            "error_samples": errors[:5],
            "seconds": round(load_s, 3),
            "requests_per_s": round(completed / load_s) if load_s else 0,
            "overall": percentiles(all_values) if all_values else None,
            "routes": {
                route: percentiles(values)
                for route, values in sorted(latencies.items())
            },
        },
        "exposition": {
            "families": len(families),
            "valid": True,
            "trace_header": trace,
        },
        "notes": (
            "threaded stdlib WSGI stack on loopback; clients open a fresh "
            "connection per request (no keep-alive), so latencies include "
            "the TCP handshake; every response is fully read and any "
            "non-200 counts as an error; the closing /metrics scrape is "
            "validated by repro.obs.expose.parse_exposition"
        ),
    }


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized load instead of the nationwide store",
    )
    parser.add_argument(
        "--output",
        default="BENCH_serve.json",
        help="report path (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    report = run(args.smoke)
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    load = report["load"]
    print(
        f"{load['requests']} requests in {load['seconds']}s -> "
        f"{load['requests_per_s']}/s, "
        f"p50 {load['overall']['p50_ms']}ms, "
        f"p99 {load['overall']['p99_ms']}ms, "
        f"errors {load['errors']}"
    )
    print(
        f"exposition: {report['exposition']['families']} families, "
        f"trace {report['exposition']['trace_header']}"
    )
    print(f"report: {args.output}")

    import sys

    failed = False
    if load["errors"]:
        print(f"FAIL: {load['errors']} request error(s)", file=sys.stderr)
        failed = True
    if not load["requests_per_s"]:
        print("FAIL: zero sustained throughput", file=sys.stderr)
        failed = True
    if not report["exposition"]["families"]:
        print("FAIL: /metrics exposed no families", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
