"""Ablation — impact of user mobility on the fitted models.

Section 7 lists "analyze the impact of user mobility on our models" as
future work; Section 4.2 already shows that transient, mobility-truncated
sessions populate the low-volume head of every PDF.  This bench sweeps the
fraction of in-transit users and reports how the fitted session-level
parameters respond — quantifying how strongly a deployment's mobility mix
shapes the released tuples.
"""

import numpy as np

from repro.core.volume_model import fit_volume_model
from repro.core.duration_model import fit_power_law
from repro.dataset.aggregation import pooled_duration_volume, pooled_volume_pdf
from repro.dataset.mobility import MobilityModel
from repro.dataset.network import Network, NetworkConfig
from repro.dataset.simulator import SimulationConfig, simulate
from repro.io.tables import format_table

TRANSIT_FRACTIONS = (0.0, 0.12, 0.35, 0.6)
SERVICE = "Netflix"


def _campaign(transit_fraction):
    rng = np.random.default_rng(31)
    network = Network(NetworkConfig(n_bs=20), np.random.default_rng(32))
    config = SimulationConfig(
        n_days=1,
        mobility=MobilityModel(transit_fraction=transit_fraction),
    )
    return simulate(network, config, rng)


def test_ablation_mobility_impact(benchmark, emit):
    campaigns = {f: _campaign(f) for f in TRANSIT_FRACTIONS}
    benchmark.pedantic(
        _campaign, args=(0.12,), rounds=1, iterations=1
    )

    rows = []
    for fraction, campaign in campaigns.items():
        sub = campaign.for_service(SERVICE)
        pdf = pooled_volume_pdf(sub)
        volume = fit_volume_model(pdf)
        duration = fit_power_law(pooled_duration_volume(sub))
        rows.append(
            [
                fraction,
                float(campaign.truncated.mean()),
                pdf.mean_mb(),
                volume.main.mu,
                volume.main.sigma,
                duration.beta,
            ]
        )
    emit(
        "ablation_mobility",
        f"{SERVICE} model parameters vs in-transit user fraction:\n"
        + format_table(
            [
                "transit frac",
                "truncated share",
                "mean MB",
                "main mu",
                "main sigma",
                "beta",
            ],
            rows,
        ),
    )

    truncated = [row[1] for row in rows]
    means = [row[2] for row in rows]
    # More mobility -> more truncated sessions -> less served volume per
    # session at the BS.
    assert truncated == sorted(truncated)
    assert means[-1] < means[0]
    # The power law survives mobility (the paper's measured relation
    # includes transients), staying super-linear for Netflix.
    assert all(row[5] > 1.0 for row in rows)
