"""Ablation — candidate fit families for the duration–volume relation.

Section 5.3: "Upon experimenting with polynomial, exponential, and power
laws we find that the latter yield the best quality of fitting across all
services, while limiting the model complexity."  This bench reruns that
comparison on every well-sampled service.
"""

import numpy as np

from repro.core.duration_model import FitFamily, fit_family
from repro.dataset.aggregation import pooled_duration_volume
from repro.dataset.records import SERVICE_NAMES
from repro.io.tables import format_table

MIN_SESSIONS = 5000


def test_ablation_duration_fit_families(benchmark, bench_campaign, emit):
    curves = {}
    for name in SERVICE_NAMES:
        sub = bench_campaign.for_service(name)
        if len(sub) >= MIN_SESSIONS:
            curves[name] = pooled_duration_volume(sub)

    benchmark.pedantic(
        fit_family,
        args=(curves["Netflix"], FitFamily.POWER),
        rounds=3,
        iterations=1,
    )

    rows = []
    wins = {family: 0 for family in FitFamily}
    for name, curve in curves.items():
        fits = {family: fit_family(curve, family) for family in FitFamily}
        best = max(fits.values(), key=lambda f: f.r2)
        wins[best.family] += 1
        rows.append(
            [
                name,
                fits[FitFamily.POWER].r2,
                fits[FitFamily.EXPONENTIAL].r2,
                fits[FitFamily.POLYNOMIAL].r2,
                best.family.value,
            ]
        )
    emit(
        "ablation_duration_families",
        format_table(
            ["service", "power R^2", "exponential R^2", "polynomial R^2", "best"],
            rows,
        )
        + "\n\nwins: "
        + ", ".join(f"{family.value}={n}" for family, n in wins.items()),
    )

    # The power law wins on (nearly) all services; the exponential family
    # in particular is structurally wrong for v(d).
    power_r2 = np.array([row[1] for row in rows])
    exp_r2 = np.array([row[2] for row in rows])
    assert np.all(power_r2 > exp_r2)
    assert wins[FitFamily.POWER] + wins[FitFamily.POLYNOMIAL] == len(rows)
    # And even where the (3-parameter) polynomial edges ahead numerically,
    # the 2-parameter power law stays within a hair of it.
    poly_r2 = np.array([row[3] for row in rows])
    assert np.all(power_r2 > poly_r2 - 0.05)
