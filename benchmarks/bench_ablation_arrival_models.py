"""Ablation — why the arrival model must be bi-modal.

Compares the Section 5.1 Gaussian+Pareto mixture against two simpler
alternatives on measured per-minute arrival counts:

* a single Gaussian over all minutes (ignoring the circadian dichotomy);
* a Poisson process with the all-day mean rate.

The quality metric is the EMD between the measured count distribution and
each model's, plus each model's error on the daytime and nighttime means.
"""

import numpy as np

from benchmarks.conftest import BENCH_N_DAYS
from repro.core.arrivals import fit_arrival_model_from_days
from repro.dataset.aggregation import minute_arrival_counts
from repro.dataset.circadian import peak_minute_mask
from repro.io.tables import format_table


def _count_pmf(samples, support):
    counts = np.bincount(samples.astype(int), minlength=support)[:support]
    return counts / counts.sum()


def _emd_1d(p, q):
    return float(np.abs(np.cumsum(p - q)).sum())


def test_ablation_arrival_model_families(benchmark, bench_campaign, bench_network, emit):
    decile = 7
    bs_ids = bench_network.bs_ids_in_decile(decile)
    counts = minute_arrival_counts(bench_campaign, bs_ids, BENCH_N_DAYS)
    matrix = counts.reshape(len(bs_ids) * BENCH_N_DAYS, 1440)
    model = benchmark.pedantic(
        fit_arrival_model_from_days, args=(matrix,), rounds=3, iterations=1
    )

    rng = np.random.default_rng(9)
    mask = np.tile(peak_minute_mask(), matrix.shape[0])
    measured = matrix.ravel()
    support = int(measured.max()) + 10

    # Candidate models generate the same number of minutes.
    bimodal = model.sample_minute_counts(rng, mask)
    single = np.clip(
        np.rint(rng.normal(measured.mean(), measured.std(), measured.size)),
        0,
        None,
    ).astype(int)
    poisson = rng.poisson(measured.mean(), measured.size)

    measured_pmf = _count_pmf(measured, support)
    rows = []
    for name, samples in (
        ("bi-modal (paper)", bimodal),
        ("single Gaussian", single),
        ("Poisson", poisson),
    ):
        pmf = _count_pmf(samples, support)
        day_err = abs(samples[mask].mean() - measured[mask].mean())
        night_err = abs(samples[~mask].mean() - measured[~mask].mean())
        rows.append(
            [name, _emd_1d(measured_pmf, pmf), day_err, night_err]
        )
    emit(
        "ablation_arrival_models",
        f"arrival-count distribution fits, BS decile {decile + 1}:\n"
        + format_table(
            ["model", "EMD (counts)", "day mean err", "night mean err"], rows
        ),
    )

    # The bi-modal model wins on the full count distribution and on both
    # phase means.
    emds = {row[0]: row[1] for row in rows}
    assert emds["bi-modal (paper)"] < emds["single Gaussian"]
    assert emds["bi-modal (paper)"] < emds["Poisson"]
    phase_errors = {row[0]: row[2] + row[3] for row in rows}
    assert phase_errors["bi-modal (paper)"] == min(phase_errors.values())
