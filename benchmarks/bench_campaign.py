"""Scale benchmark of the sharded campaign-aggregation driver.

Runs :func:`~repro.campaign.run_campaign` across a BS-count scale series
at a fixed shard size, records sessions/s and fork-isolated peak RSS per
point into ``BENCH_campaign.json``, and verifies the driver's two load
bearing contracts along the way:

* **bounded memory** — peak RSS must stay flat as the campaign grows,
  because every layer is bounded by the shard/chunk budget, never by
  campaign size: workers stream sessions through a reused arena and keep
  only sketches, and the parent folds shard aggregates as waves complete
  instead of retaining them;
* **byte-identity** — serial, parallel and checkpoint-resumed runs must
  produce the same :meth:`CampaignAggregate.digest`.

Two sizes::

    python benchmarks/bench_campaign.py            # up to 10k BS x 7 days
    python benchmarks/bench_campaign.py --smoke    # CI-sized

Methodology notes, also embedded in the JSON:

* Each scale point runs in a **forked child** that builds its own
  generator before aggregating, because ``ru_maxrss`` is a monotone
  high-water mark: phases measured in one process mask each other, and a
  child forked from a parent that already ran a larger campaign would
  inherit an inflated baseline.
* The full mode scales arrival intensities down by ``FULL_RATE_SCALE``
  so the 10k-BS x 7-day headline stays minutes of single-core work; the
  RSS verdict is unaffected (per-shard workload is what bounds memory,
  and it is held constant across the series), and throughput per session
  is rate-independent.
* The extrapolation block scales the measured headline throughput to the
  paper's real footprint (282k BSs x 45 days) at both the benchmarked
  and paper-scale arrival rates.
"""

import argparse
import json
import multiprocessing
import resource
import sys
import tempfile
import time

import numpy as np

from repro.campaign import run_campaign
from repro.campaign.driver import DEFAULT_SHARD_BS, DEFAULT_SHARD_CHUNK_SESSIONS
from repro.campaign.sketches import DEFAULT_HLL_PRECISION
from repro.core.arrivals import ArrivalModel
from repro.core.generator import TrafficGenerator
from repro.core.model_bank import ModelBank
from repro.core.service_mix import ServiceMix
from repro.dataset.network import Network, NetworkConfig, decile_peak_rate
from repro.dataset.simulator import SimulationConfig, simulate
from repro.io.cache import ArtifactCache
from repro.pipeline.executors import ParallelExecutor

#: Root seed shared by every run; digests are compared across runs.
SEED = 0

#: Full mode: BS-count scale series (1 day each) and the acceptance-scale
#: headline campaign.  Arrival intensities are scaled down so the series
#: is minutes of single-core work; per-shard workload — what actually
#: bounds memory — is identical at every point.
FULL_SERIES_BS = [1250, 2500, 5000, 10000]
FULL_HEADLINE = (10_000, 7)
FULL_RATE_SCALE = 0.1

#: Smoke mode: CI-sized series at unscaled paper-decile arrival rates.
SMOKE_SERIES_BS = [20, 40, 80]
SMOKE_HEADLINE = (80, 2)
SMOKE_RATE_SCALE = 1.0

#: Peak RSS at the largest scale point (and the headline) must stay
#: within this factor of the smallest point's: memory is bounded by the
#: shard/chunk budget, so growing the campaign 8x must not move it.
RSS_FLAT_TOLERANCE = 1.25

#: The paper's real measurement footprint, for the extrapolation block.
PAPER_BS, PAPER_DAYS = 282_000, 45


def peak_rss_mb() -> float:
    """Process high-water resident set size in MiB (monotone)."""
    ru_maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    scale = 1024.0 if sys.platform == "darwin" else 1.0
    return ru_maxrss * scale / 1024.0


def isolated_phase(fn, *args) -> tuple[dict, float]:
    """Run ``fn(*args)`` in a forked child; return (result, child RSS MiB).

    ``ru_maxrss`` never goes down, so phases measured in one process mask
    each other; a fresh fork gives each phase its own high-water mark on
    top of whatever the parent had resident at fork time.
    """
    context = multiprocessing.get_context("fork")
    queue = context.SimpleQueue()

    def target() -> None:
        result = fn(*args)
        queue.put((result, peak_rss_mb()))

    process = context.Process(target=target)
    process.start()
    result, rss = queue.get()
    process.join()
    if process.exitcode != 0:
        raise RuntimeError(f"phase child exited with {process.exitcode}")
    return result, rss


def build_generator(n_bs: int, rate_scale: float) -> TrafficGenerator:
    """A generator with models fitted on a small simulated campaign.

    Arrival intensities sweep the paper's BS deciles (scaled by
    ``rate_scale``) so the workload mixes quiet and busy cells, as a real
    deployment snapshot would.
    """
    network = Network(NetworkConfig(n_bs=20), np.random.default_rng(101))
    campaign = simulate(
        network, SimulationConfig(n_days=2), np.random.default_rng(202)
    )
    bank = ModelBank.fit_from_table(campaign, min_sessions=500)
    mix = ServiceMix.from_measurements(campaign).restricted_to(
        bank.services()
    )
    arrivals = {}
    for bs_id in range(n_bs):
        peak = decile_peak_rate(1 + (bs_id % 9)) * rate_scale
        arrivals[bs_id] = ArrivalModel(peak, peak / 10.0, peak / 8.0)
    return TrafficGenerator(arrivals, mix, bank)


def campaign_point(n_bs: int, n_days: int, rate_scale: float) -> dict:
    """One scale point: build the generator, run the sharded campaign.

    Runs inside a forked child (see :func:`isolated_phase`), so the
    child's peak RSS covers model fitting plus the whole driver — worker
    synthesis, sketch folding, parent merge — for this point alone.
    """
    generator = build_generator(n_bs, rate_scale)
    start = time.perf_counter()
    result = run_campaign(generator, n_days, SEED)
    elapsed = time.perf_counter() - start
    aggregate = result.aggregate
    return {
        "n_bs": n_bs,
        "n_days": n_days,
        "shards": result.n_shards,
        "sessions": aggregate.n_sessions,
        "units": aggregate.n_units,
        "seconds": round(elapsed, 3),
        "sessions_per_s": round(aggregate.n_sessions / elapsed),
        "distinct_estimate": round(aggregate.distinct_sessions()),
        "digest": result.digest(),
    }


def check_identity(n_bs: int, n_days: int, rate_scale: float) -> dict:
    """Serial == parallel == resumed digest verdicts at one scale point."""
    generator = build_generator(n_bs, rate_scale)
    serial = run_campaign(generator, n_days, SEED).digest()
    with ParallelExecutor(jobs=2) as executor:
        parallel = run_campaign(
            generator, n_days, SEED, executor=executor
        ).digest()
    with tempfile.TemporaryDirectory() as tmpdir:
        cache = ArtifactCache(tmpdir)
        first = run_campaign(generator, n_days, SEED, cache=cache)
        second = run_campaign(generator, n_days, SEED, cache=cache)
    return {
        "n_bs": n_bs,
        "n_days": n_days,
        "serial_digest": serial,
        "serial_equals_parallel": parallel == serial,
        "resumed_equals_serial": (
            second.digest() == serial
            and first.computed_shards == first.n_shards
            and second.resumed_shards == second.n_shards
        ),
    }


def extrapolate(headline: dict, shard_bs: int, rate_scale: float) -> dict:
    """Scale the measured headline to the paper's 282k-BS, 45-day run."""
    units = PAPER_BS * PAPER_DAYS
    shards = -(-PAPER_BS // shard_bs) * PAPER_DAYS
    sessions_per_unit = headline["sessions"] / headline["units"]
    per_s = headline["sessions_per_s"]
    benched = units * sessions_per_unit
    paper_rate = benched / rate_scale  # undo the benchmark's rate scaling
    return {
        "footprint": {"n_bs": PAPER_BS, "n_days": PAPER_DAYS},
        "units": units,
        "shards": shards,
        "checkpoint_files": shards,
        "sessions_at_benchmark_rates": round(benched),
        "sessions_at_paper_rates": round(paper_rate),
        "serial_hours_at_benchmark_rates": round(benched / per_s / 3600, 1),
        "serial_hours_at_paper_rates": round(paper_rate / per_s / 3600, 1),
        "peak_rss_mb": headline["peak_rss_mb"],
        "note": (
            "linear extrapolation from the measured headline: wall clock "
            "scales with session count at the measured sessions/s "
            "(parallel workers divide it), peak RSS does not scale at "
            "all — it is bounded by the shard/chunk budget"
        ),
    }


def run(smoke: bool) -> dict:
    """Execute every benchmark phase and assemble the report payload."""
    if smoke:
        series_bs, headline, rate_scale = (
            SMOKE_SERIES_BS, SMOKE_HEADLINE, SMOKE_RATE_SCALE
        )
    else:
        series_bs, headline, rate_scale = (
            FULL_SERIES_BS, FULL_HEADLINE, FULL_RATE_SCALE
        )

    series = []
    for n_bs in series_bs:
        point, rss = isolated_phase(campaign_point, n_bs, 1, rate_scale)
        point["peak_rss_mb"] = round(rss, 1)
        series.append(point)
        print(
            f"  {n_bs:>6} BS x 1d: {point['sessions']:>12,} sessions, "
            f"{point['sessions_per_s']:>10,}/s, RSS {point['peak_rss_mb']} MiB"
        )

    head_point, head_rss = isolated_phase(
        campaign_point, headline[0], headline[1], rate_scale
    )
    head_point["peak_rss_mb"] = round(head_rss, 1)
    print(
        f"  {headline[0]:>6} BS x {headline[1]}d: "
        f"{head_point['sessions']:>12,} sessions, "
        f"{head_point['sessions_per_s']:>10,}/s, "
        f"RSS {head_point['peak_rss_mb']} MiB  (headline)"
    )

    identity = check_identity(series_bs[0], 1, rate_scale)

    rss_values = [p["peak_rss_mb"] for p in series]
    rss_floor = min(rss_values)
    worst = max(*rss_values, head_point["peak_rss_mb"])
    rss = {
        "series_mb": rss_values,
        "headline_mb": head_point["peak_rss_mb"],
        "floor_mb": rss_floor,
        "worst_mb": worst,
        "growth_ratio": round(worst / rss_floor, 3),
        "tolerance": RSS_FLAT_TOLERANCE,
        "bounded": worst <= RSS_FLAT_TOLERANCE * rss_floor,
    }

    return {
        "benchmark": "campaign-aggregation",
        "mode": "smoke" if smoke else "full",
        "config": {
            "seed": SEED,
            "shard_bs": DEFAULT_SHARD_BS,
            "chunk_sessions": DEFAULT_SHARD_CHUNK_SESSIONS,
            "hll_precision": DEFAULT_HLL_PRECISION,
            "rate_scale": rate_scale,
        },
        "scale_series": series,
        "headline": head_point,
        "rss": rss,
        "identity": identity,
        "extrapolation": extrapolate(head_point, DEFAULT_SHARD_BS, rate_scale),
        "notes": (
            "each scale point runs in a forked child (ru_maxrss is "
            "monotone) that builds its own generator; the series holds "
            "per-BS arrival rates and shard size constant while the BS "
            "count grows 8x, so flat RSS demonstrates shard-bounded "
            "memory; identical root seed throughout, digests compared "
            "across serial/parallel/resumed runs"
        ),
    }


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized workload instead of the full 10k BS x 7 days",
    )
    parser.add_argument(
        "--output",
        default="BENCH_campaign.json",
        help="report path (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    report = run(args.smoke)
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    rss, identity = report["rss"], report["identity"]
    extrapolation = report["extrapolation"]
    print(
        f"peak RSS: series {rss['series_mb']} MiB, headline "
        f"{rss['headline_mb']} MiB -> growth {rss['growth_ratio']}x "
        f"(tolerance {rss['tolerance']}x)"
    )
    print(
        f"identity at {identity['n_bs']} BS: "
        f"parallel={identity['serial_equals_parallel']} "
        f"resumed={identity['resumed_equals_serial']}"
    )
    print(
        f"extrapolated {PAPER_BS:,} BS x {PAPER_DAYS}d: "
        f"{extrapolation['sessions_at_paper_rates']:,} sessions, "
        f"{extrapolation['serial_hours_at_paper_rates']}h serial, "
        f"{extrapolation['shards']:,} checkpoints, "
        f"RSS {extrapolation['peak_rss_mb']} MiB"
    )
    print(f"report: {args.output}")

    failed = False
    if not rss["bounded"]:
        print(
            f"FAIL: peak RSS grew {rss['growth_ratio']}x across the scale "
            f"series (tolerance {rss['tolerance']}x) — memory is not "
            "shard-bounded",
            file=sys.stderr,
        )
        failed = True
    if not identity["serial_equals_parallel"]:
        print("FAIL: parallel digest differs from serial", file=sys.stderr)
        failed = True
    if not identity["resumed_equals_serial"]:
        print("FAIL: resumed digest differs from serial", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
