"""Fig 9 — the three modeling steps of the volume mixture, on Netflix.

Reproduces: (a) the main log-normal component and the positive residual,
(b) the identified residual intervals, (c) the final Eq (5) mixture and its
reconstruction quality.  The paper's narrative landmarks for Netflix — a
characteristic peak near 40 MB — must be recovered by the automatic
procedure.
"""


from repro.analysis.histogram import BIN_WIDTH
from repro.core.volume_model import decompose_volume_pdf
from repro.dataset.aggregation import pooled_volume_pdf
from repro.io.tables import format_table


def test_fig09_netflix_decomposition(benchmark, bench_campaign, emit):
    measured = pooled_volume_pdf(bench_campaign.for_service("Netflix"))
    trace = benchmark.pedantic(
        decompose_volume_pdf, args=(measured,), rounds=3, iterations=1
    )

    peak_rows = [
        [n + 1, 10**p.mu, p.sigma, p.weight, 10**p.u_lo, 10**p.u_hi]
        for n, p in enumerate(trace.peaks)
    ]
    residual_mass = float(trace.residual.sum() * BIN_WIDTH)
    emit(
        "fig09_decomposition",
        f"main component: mu = {trace.main.mu:.3f}  sigma = {trace.main.sigma:.3f}"
        f"  (median {10**trace.main.mu:.2f} MB)\n"
        f"residual probability mass = {residual_mass:.3f}\n\n"
        "retained residual peaks (Fig 9b/9c):\n"
        + format_table(
            ["peak", "mode MB", "sigma", "weight k", "interval lo", "interval hi"],
            peak_rows,
        )
        + f"\n\nmodel EMD vs measurement = {trace.model.error_against(measured):.4f} decades",
    )

    # The 40 MB Netflix peak is found automatically.
    assert any(abs(10**p.mu - 40.0) < 8.0 for p in trace.peaks)
    # At most 3 peaks are retained (Section 5.4).
    assert len(trace.peaks) <= 3
    # The model reconstructs the measurement far better than the main
    # component alone.
    from repro.analysis.emd import emd
    from repro.analysis.histogram import LogHistogram

    main_only = LogHistogram.from_log_density(trace.main.pdf_log10).normalized()
    assert trace.model.error_against(measured) <= emd(main_only, measured)
