"""Fig 12 — Facebook slice: demand vs allocated capacity over time.

Reproduces: the per-minute traffic demand of the Facebook network slice at
one BS against the capacity the model-driven allocator reserved for it.
Paper shape: the allocation sits well below the demand *peaks* (robustness
against outliers — dimensioning on peaks would waste resources) while
covering the demand at least 95 % of the peak-hour time.
"""

import numpy as np

from repro.usecases.slicing import SlicingScenario, run_slicing_experiment
from repro.io.tables import format_table

SCENARIO = SlicingScenario(n_antennas=10, n_days=2, n_model_days=4)


def test_fig12_facebook_slice_timeseries(benchmark, emit):
    outcome = benchmark.pedantic(
        run_slicing_experiment,
        args=(np.random.default_rng(77),),
        kwargs={"scenario": SCENARIO},
        rounds=1,
        iterations=1,
    )

    antenna = 9  # the busiest antenna of the area
    demand, capacity = outcome.timeseries("model", "Facebook", antenna)
    peak = outcome.peak_mask
    peak_demand = demand[peak]

    # Hourly series (the Fig 12 curve, coarsened for text output).
    hours = demand[: len(demand) // 60 * 60].reshape(-1, 60).mean(axis=1)
    rows = [
        [h, float(v), float(capacity)] for h, v in enumerate(hours) if h % 4 == 0
    ]
    coverage = float((peak_demand <= capacity + 1e-9).mean())
    emit(
        "fig12_slice_timeseries",
        format_table(["hour", "demand MB/min (avg)", "allocated MB/min"], rows)
        + f"\n\npeak-hour coverage = {100 * coverage:.2f} %"
        f"\nallocated capacity = {capacity:.1f} MB/min"
        f"\nmax peak-hour demand = {peak_demand.max():.1f} MB/min"
        f"\nmedian peak-hour demand = {np.median(peak_demand):.1f} MB/min",
    )

    # Shape: capacity covers ~95 % of peak minutes yet sits below the
    # demand maxima (no peak-dimensioning).
    assert coverage > 0.85
    assert capacity < peak_demand.max()
    assert capacity > np.median(peak_demand)
