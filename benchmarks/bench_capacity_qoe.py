"""Extension experiment — downlink QoE under processor sharing.

A third use case beyond the paper's two (marked as an extension in
DESIGN.md): a congested cell shares its downlink among elastic flows, and
the per-flow *slowdown* depends only on the arrival process and the
volume distribution.  The comparison isolates the volume-model fidelity:

* the session-level models track the measured QoE closely;
* bm a (raw literature volumes) overloads the cell and inflates slowdown;
* bm c matches the *mean* load by construction but misses the heavy tail,
  underestimating the p95 sojourn.
"""

import numpy as np

from repro.usecases.capacity import CapacityScenario, run_capacity_experiment
from repro.io.tables import format_table

SCENARIO = CapacityScenario(capacity_mbps=200.0, decile=9, horizon_s=1800.0)


def test_capacity_qoe(benchmark, bench_campaign, emit):
    outcome = benchmark.pedantic(
        run_capacity_experiment,
        args=(bench_campaign, np.random.default_rng(88)),
        kwargs={"scenario": SCENARIO},
        rounds=1,
        iterations=1,
    )

    emit(
        "capacity_qoe",
        format_table(
            [
                "strategy",
                "mean slowdown",
                "p95 sojourn s",
                "completion %",
                "offered util %",
            ],
            outcome.summary_rows(),
        ),
    )

    measured = outcome.results["measurement"]
    model = outcome.results["model"]
    bm_a = outcome.results["bm_a"]
    bm_c = outcome.results["bm_c"]

    # The session-level models track the measured QoE.
    assert abs(model.mean_slowdown() / measured.mean_slowdown() - 1) < 0.25
    assert abs(model.p95_sojourn_s() / measured.p95_sojourn_s() - 1) < 0.5
    # The raw literature volumes push the cell towards saturation.
    assert bm_a.mean_slowdown() > 1.5 * measured.mean_slowdown()
    # Mean-normalized categories still miss the tail of the sojourns.
    assert abs(bm_c.p95_sojourn_s() / measured.p95_sojourn_s() - 1) > 0.1
