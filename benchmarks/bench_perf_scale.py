"""Scale validation — the pipeline at a nationwide-fraction campaign.

Runs the full loop (simulate → aggregate → fit → quality check) on a
campaign an order of magnitude above the test fixtures (200 BSs, i.e.
all-decile coverage with 20 BSs per class).  Guards two properties:

* throughput: the vectorized substrate stays in the millions-of-sessions
  per-minute regime;
* stability: the fitted parameters match the small-campaign fits — the
  statistics are per-BS, so scale must change precision, not values.
"""

import os
import time

import numpy as np

from repro.core.duration_model import fit_power_law
from repro.core.volume_model import fit_volume_model
from repro.dataset.aggregation import pooled_duration_volume, pooled_volume_pdf
from repro.dataset.network import Network, NetworkConfig
from repro.dataset.simulator import SimulationConfig, simulate
from repro.io.tables import format_table
from repro.pipeline import make_executor


def test_perf_large_campaign(benchmark, emit):
    network = Network(NetworkConfig(n_bs=200), np.random.default_rng(7))
    config = SimulationConfig(n_days=1)

    table = benchmark.pedantic(
        simulate,
        args=(network, config, np.random.default_rng(8)),
        rounds=1,
        iterations=1,
    )
    assert len(table) > 2_000_000

    rows = []
    for service in ("Facebook", "Netflix", "Twitch"):
        sub = table.for_service(service)
        volume = fit_volume_model(pooled_volume_pdf(sub))
        duration = fit_power_law(pooled_duration_volume(sub))
        rows.append(
            [
                service,
                len(sub),
                volume.main.mu,
                volume.main.sigma,
                duration.beta,
                duration.r2,
            ]
        )
    emit(
        "perf_scale",
        f"campaign: {len(table)} sessions at 200 BSs\n"
        + format_table(
            ["service", "sessions", "mu", "sigma", "beta", "R^2"], rows
        ),
    )

    fits = {row[0]: row for row in rows}
    # Large-scale fits recover the ground-truth behaviours (per-BS
    # statistics are scale-free).
    assert fits["Netflix"][4] > 1.2      # super-linear
    assert fits["Facebook"][4] < 1.0     # sub-linear
    assert fits["Twitch"][4] > 1.4
    for row in rows:
        assert row[5] > 0.85             # tight fits at this sample size


def test_perf_large_campaign_parallel(emit):
    """The 200-BS campaign across worker processes, checked bit-identical."""
    jobs = 4
    network = Network(NetworkConfig(n_bs=200), np.random.default_rng(7))
    config = SimulationConfig(n_days=1)

    start = time.perf_counter()
    serial = simulate(network, config, 8)
    serial_s = time.perf_counter() - start

    with make_executor(jobs) as executor:
        executor.map(len, [()])  # warm the pool outside the timed region
        start = time.perf_counter()
        parallel = simulate(network, config, 8, executor=executor)
        parallel_s = time.perf_counter() - start

    assert len(parallel) == len(serial)
    assert np.array_equal(parallel.volume_mb, serial.volume_mb)
    assert np.array_equal(parallel.service_idx, serial.service_idx)

    speedup = serial_s / parallel_s
    emit(
        "perf_scale_parallel",
        f"200-BS campaign ({len(serial)} sessions): serial {serial_s:.1f}s, "
        f"--jobs {jobs} {parallel_s:.1f}s "
        f"(speedup {speedup:.2f}x on {os.cpu_count()} CPUs)",
    )
    if (os.cpu_count() or 1) >= jobs:
        assert speedup > 1.5
