"""Insight (d) at the model level — one bank serves both RATs.

Fig 8 shows RAT invariance on the raw statistics; the release-relevant
question is whether *fitted models* differ.  This bench fits one model
bank on the 4G BSs only and another on the 5G BSs only, then runs the
drift comparator between them: if the paper's insight (d) holds, no
service drifts — a single released bank covers the whole RAN.
"""

from repro.core.drift import compare_banks
from repro.core.model_bank import ModelBank
from repro.dataset.network import RAT
from repro.io.tables import format_table

MIN_SESSIONS = 2000


def test_rat_invariance_of_fitted_models(
    benchmark, bench_campaign, bench_network, emit
):
    lte = bench_campaign.for_bs_ids(bench_network.bs_ids_with_rat(RAT.LTE))
    nr = bench_campaign.for_bs_ids(bench_network.bs_ids_with_rat(RAT.NR))

    bank_lte = benchmark.pedantic(
        ModelBank.fit_from_table,
        args=(lte,),
        kwargs={"min_sessions": MIN_SESSIONS},
        rounds=1,
        iterations=1,
    )
    bank_nr = ModelBank.fit_from_table(nr, min_sessions=MIN_SESSIONS)
    report = compare_banks(bank_lte, bank_nr)

    rows = [
        [d.service, d.volume_emd, d.mean_ratio, d.beta_delta,
         "DRIFT" if d.is_significant() else "stable"]
        for d in report.drifts
    ]
    emit(
        "rat_invariance_models",
        f"models fitted on 4G BSs ({len(lte)} sessions) vs "
        f"5G BSs ({len(nr)} sessions):\n"
        + format_table(
            ["service", "volume EMD", "mean ratio", "beta delta", "verdict"],
            rows,
        )
        + f"\n\nservices drifting: {len(report.significant())} / "
        f"{len(report.drifts)}"
        " (paper insight d: a single model per service suffices)",
    )

    assert len(report.drifts) >= 8          # both banks cover the head
    # RAT invariance: (essentially) no service needs a per-RAT model.
    assert len(report.significant()) <= max(1, len(report.drifts) // 10)
