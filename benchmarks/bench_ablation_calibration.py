"""Ablation — tail-calibration modes of the volume-model fit.

The three-step fit of Section 5.2 least-squares the main log-normal against
the full PDF; on left-skewed measured PDFs that systematically mis-sizes
the right tail, which carries most of the traffic load.  This repo adds an
optional final calibration of the main sigma (DESIGN.md / EXPERIMENTS.md
"known deviations"); the bench quantifies each mode:

* ``none``   — the paper's literal procedure;
* ``mean``   — closed-form match of the model's mean session volume
  (the default: exact load fidelity, what the use cases need);
* ``quantile`` — bisection on the measured 95th percentile.
"""

import numpy as np

from repro.core.volume_model import fit_volume_model
from repro.dataset.aggregation import pooled_volume_pdf
from repro.io.tables import format_table

SERVICES = ("Facebook", "Instagram", "Netflix", "Twitch", "Deezer", "Amazon")
MODES = ("none", "mean", "quantile")


def test_ablation_calibration_modes(benchmark, bench_campaign, emit):
    pdfs = {
        name: pooled_volume_pdf(bench_campaign.for_service(name))
        for name in SERVICES
    }
    benchmark.pedantic(
        fit_volume_model,
        args=(pdfs["Netflix"],),
        kwargs={"calibration": "mean"},
        rounds=3,
        iterations=1,
    )

    rows = []
    mean_abs_err = {mode: [] for mode in MODES}
    emd_by_mode = {mode: [] for mode in MODES}
    for name, measured in pdfs.items():
        cells = [name]
        for mode in MODES:
            model = fit_volume_model(measured, calibration=mode)
            hist = model.as_histogram()
            err = abs(hist.mean_mb() / measured.mean_mb() - 1.0)
            mean_abs_err[mode].append(err)
            emd_by_mode[mode].append(model.error_against(measured))
            cells.extend([100 * err, model.error_against(measured)])
        rows.append(cells)

    emit(
        "ablation_calibration",
        format_table(
            [
                "service",
                "none: mean err %", "EMD",
                "mean: mean err %", "EMD",
                "quantile: mean err %", "EMD",
            ],
            rows,
        )
        + "\n\nmean |load error|: "
        + ", ".join(
            f"{mode}={100 * np.mean(mean_abs_err[mode]):.1f} %"
            for mode in MODES
        ),
    )

    # Mean calibration makes the load error essentially vanish...
    assert np.mean(mean_abs_err["mean"]) < 0.02
    # ...and improves on the uncalibrated fit by a wide margin...
    assert np.mean(mean_abs_err["mean"]) < 0.25 * np.mean(mean_abs_err["none"])
    # ...at no meaningful EMD cost (shape fidelity preserved).
    assert np.mean(emd_by_mode["mean"]) < 1.5 * np.mean(emd_by_mode["none"])
