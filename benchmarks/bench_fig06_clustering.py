"""Fig 6 — EMD similarity matrix, hierarchical clustering, silhouette.

Reproduces: (a) the similarity matrix of zero-mean-normalized service PDFs
with its coarse cluster structure — streaming vs. short-message services —
and (b) the silhouette score across cut levels, which peaks at a handful of
clusters and then stays low: finer-grained service taxonomies do not exist
(Section 4.3).
"""

import numpy as np

from repro.analysis.clustering import (
    CentroidHierarchicalClustering,
    silhouette_profile,
)
from repro.analysis.emd import emd_matrix
from repro.analysis.normalization import zero_mean
from repro.dataset.aggregation import pooled_volume_pdf
from repro.dataset.services import BehaviourClass, get_service
from repro.io.tables import format_table

MIN_SESSIONS = 2000


def _normalized_pdfs(campaign):
    names, pdfs = [], []
    from repro.dataset.records import SERVICE_NAMES

    for name in SERVICE_NAMES:
        sub = campaign.for_service(name)
        if len(sub) >= MIN_SESSIONS:
            names.append(name)
            pdfs.append(zero_mean(pooled_volume_pdf(sub)))
    return names, pdfs


def _text_heatmap(names, matrix, labels) -> str:
    """Render the EMD matrix as a character heatmap, cluster-ordered."""
    order = sorted(range(len(names)), key=lambda i: (labels[i], names[i]))
    glyphs = "#@*+-. "  # near -> far
    top = matrix.max() or 1.0
    lines = []
    for i in order:
        cells = "".join(
            glyphs[min(int(matrix[i, j] / top * (len(glyphs) - 1)),
                       len(glyphs) - 1)]
            for j in order
        )
        lines.append(f"{names[i]:>16s} |{cells}|")
    return "\n".join(lines)


def test_fig06_clustering_and_silhouette(benchmark, bench_campaign, emit):
    names, pdfs = _normalized_pdfs(bench_campaign)
    clustering = CentroidHierarchicalClustering(pdfs)
    benchmark.pedantic(clustering.fit, rounds=1, iterations=1)

    labels = clustering.labels(3)
    matrix = emd_matrix(pdfs)
    profile = silhouette_profile(pdfs, max_clusters=min(10, len(pdfs) - 1))

    cluster_rows = []
    for label in sorted(set(labels)):
        members = [names[i] for i in range(len(names)) if labels[i] == label]
        cluster_rows.append([label, len(members), ", ".join(members)])
    silhouette_rows = [[k, score] for k, score in profile]

    emit(
        "fig06_clustering",
        format_table(["cluster", "size", "members"], cluster_rows)
        + "\n\nSilhouette score per cut level (Fig 6b):\n"
        + format_table(["clusters", "silhouette"], silhouette_rows)
        + f"\n\nmean inter-service EMD = {matrix[np.triu_indices(len(names), 1)].mean():.3f} decades"
        + "\n\nSimilarity matrix (Fig 6a; darker glyph = more similar):\n"
        + _text_heatmap(names, matrix, labels),
    )

    # Shape assertion: the 2-way cut separates streaming from messaging.
    two_way = clustering.labels(2)
    streaming_labels = {
        two_way[i]
        for i, name in enumerate(names)
        if get_service(name).behaviour is BehaviourClass.STREAMING
    }
    messaging_labels = {
        two_way[i]
        for i, name in enumerate(names)
        if get_service(name).behaviour is BehaviourClass.MESSAGING
    }
    assert len(streaming_labels & messaging_labels) == 0

    # Silhouette declines towards fine-grained cuts (no deeper taxonomy).
    scores = dict(profile)
    coarse = max(scores[k] for k in scores if k <= 3)
    fine = np.mean([scores[k] for k in scores if k >= 6])
    assert coarse > fine
