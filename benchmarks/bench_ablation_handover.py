"""Ablation — the handover artefact in the measured statistics.

Section 3.2: "handovers from and to other BSs are recorded in the
measurement dataset as newly established or concluded transport-layer
sessions".  This bench quantifies what that probe artefact does to the
statistics the models are fitted on, by simulating the same network with
continuations enabled and disabled:

* continuations add arrivals at every BS (the fitted arrival mu rises);
* the re-injected remainders of cut sessions add partial sessions,
  raising the truncated share and thickening the PDF's low-volume head.
"""

import numpy as np

from repro.core.arrivals import fit_decile_arrival_models
from repro.core.volume_model import fit_volume_model
from repro.dataset.aggregation import pooled_volume_pdf
from repro.dataset.network import Network, NetworkConfig
from repro.dataset.simulator import SimulationConfig, simulate
from repro.io.tables import format_table

N_DAYS = 1


def test_ablation_handover_artefact(benchmark, emit):
    network = Network(NetworkConfig(n_bs=20), np.random.default_rng(41))

    def run(continuation: bool):
        return simulate(
            network,
            SimulationConfig(
                n_days=N_DAYS, handover_continuation=continuation
            ),
            np.random.default_rng(42),
        )

    with_ho = benchmark.pedantic(run, args=(True,), rounds=1, iterations=1)
    without = run(False)

    rows = []
    for label, table in (("with handovers", with_ho), ("without", without)):
        arrivals = fit_decile_arrival_models(table, network, N_DAYS)
        netflix = pooled_volume_pdf(table.for_service("Netflix"))
        model = fit_volume_model(netflix)
        rows.append(
            [
                label,
                len(table),
                float(table.truncated.mean()),
                arrivals[9].peak_mu,
                netflix.mean_mb(),
                model.main.sigma,
            ]
        )
    emit(
        "ablation_handover",
        format_table(
            [
                "probe semantics",
                "sessions",
                "truncated share",
                "decile-10 mu",
                "Netflix mean MB",
                "Netflix fit sigma",
            ],
            rows,
        ),
    )

    with_row, without_row = rows
    # Continuations add sessions and arrivals at every BS...
    assert with_row[1] > without_row[1]
    assert with_row[3] > without_row[3]
    # ...and raise the share of partial (truncated) sessions.
    assert with_row[2] > without_row[2]
    # The volume-PDF spread widens with the extra partial sessions.
    assert with_row[5] >= without_row[5] - 0.02
