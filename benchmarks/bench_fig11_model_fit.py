"""Fig 11 — fitted models vs measurement data for a choice of services.

Reproduces: the side-by-side comparison of the modelled volume PDF
``F~_s(x)`` and power-law ``v~_s(d)`` against the measured statistics for
the eight services shown in the paper (Twitch, Twitter, Google Maps,
Amazon, Facebook Live, Facebook, Snapchat, Google Meet).
"""

from repro.analysis.emd import emd
from repro.analysis.metrics import r_squared
from repro.dataset.aggregation import pooled_duration_volume, pooled_volume_pdf
from repro.io.tables import format_table

import numpy as np

FIG11_SERVICES = (
    "Twitch",
    "Twitter",
    "Google Maps",
    "Amazon",
    "FB Live",
    "Facebook",
    "SnapChat",
    "Google Meet",
)


def test_fig11_model_vs_measurement(benchmark, bench_campaign, bench_bank, emit):
    def evaluate():
        rows = []
        for name in FIG11_SERVICES:
            if name not in bench_bank:
                continue
            model = bench_bank.get(name)
            sub = bench_campaign.for_service(name)
            measured_pdf = pooled_volume_pdf(sub)
            model_pdf = model.volume.as_histogram()
            durations, volumes, _ = pooled_duration_volume(sub).observed()
            ok = volumes > 0
            predicted = model.duration.predict_volume_mb(durations[ok])
            curve_r2 = r_squared(np.log10(volumes[ok]), np.log10(predicted))
            rows.append(
                [
                    name,
                    emd(model_pdf, measured_pdf),
                    measured_pdf.mean_mb(),
                    model_pdf.mean_mb(),
                    model.duration.beta,
                    curve_r2,
                ]
            )
        return rows

    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    emit(
        "fig11_model_fit",
        format_table(
            [
                "service",
                "EMD model/meas",
                "mean MB (meas)",
                "mean MB (model)",
                "beta",
                "v(d) R^2",
            ],
            rows,
        ),
    )

    for row in rows:
        name, model_emd, meas_mean, model_mean, _, curve_r2 = row
        # Volume model error far below inter-service shape distances.
        assert model_emd < 0.12, name
        # Mean-load fidelity (mean-calibrated models).
        assert model_mean == float(np.clip(model_mean, 0.5 * meas_mean, 2.0 * meas_mean)), name
        # Duration model explains the measured curve.
        assert curve_r2 > 0.6, name
