"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper from a common
synthetic measurement campaign; results are printed and archived under
``benchmarks/output/`` so that the paper-vs-measured comparison in
EXPERIMENTS.md can be refreshed by re-running the suite.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.core.model_bank import ModelBank
from repro.dataset.network import Network, NetworkConfig
from repro.dataset.simulator import SimulationConfig, simulate

#: Scale of the benchmark campaign.  All statistics in the paper are per-BS
#: distributions, so 40 BSs x 2 days reproduce every shape; day indices 5-6
#: fall on the weekend so the day-type comparisons are exercised.
BENCH_N_BS = 40
BENCH_N_DAYS = 7

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def bench_network() -> Network:
    """The benchmark BS population."""
    return Network(NetworkConfig(n_bs=BENCH_N_BS), np.random.default_rng(101))


@pytest.fixture(scope="session")
def bench_campaign(bench_network):
    """A seven-day campaign (5 working days + weekend) over 40 BSs."""
    return simulate(
        bench_network,
        SimulationConfig(n_days=BENCH_N_DAYS),
        np.random.default_rng(202),
    )


@pytest.fixture(scope="session")
def bench_bank(bench_campaign) -> ModelBank:
    """Session-level models fitted on the benchmark campaign."""
    return ModelBank.fit_from_table(bench_campaign, min_sessions=500)


@pytest.fixture(scope="session")
def emit():
    """Print a reproduction artefact and archive it under output/."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print(f"\n=== {name} ===")
        print(text)
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit
