"""Fig 4 — services ranked by session fraction + exponential law.

Reproduces: the negative-exponential ranking of services by the fraction of
sessions they generate (paper: R^2 = 0.97), the scattered normalized
traffic dots, and the headline concentration (top-20 services produce over
78 % of all sessions).
"""

from repro.analysis.ranking import (
    fit_exponential_law,
    rank_services,
    top_k_session_fraction,
)
from repro.io.tables import format_table


def test_fig04_service_ranking(benchmark, bench_campaign, emit):
    ranking = benchmark.pedantic(
        rank_services, args=(bench_campaign,), rounds=3, iterations=1
    )
    law = fit_exponential_law(ranking)
    top20 = top_k_session_fraction(ranking, 20)

    rows = [
        [
            r.rank,
            r.service,
            100 * r.session_fraction,
            100 * r.traffic_fraction,
            100 * float(law.predict([r.rank])[0]),
        ]
        for r in ranking
    ]
    footer = (
        f"\nexponential law: share(rank) = {law.amplitude:.3f} * "
        f"exp(-{law.decay:.3f} * rank),  R^2 = {law.r2:.3f}"
        f"\ntop-20 session fraction = {100 * top20:.1f} %  (paper: > 78 %)"
    )
    emit(
        "fig04_ranking",
        format_table(
            ["rank", "service", "sessions %", "traffic %", "exp-law %"], rows
        )
        + footer,
    )

    # Shape assertions from the paper.
    assert law.r2 > 0.85
    assert top20 > 0.78
    # Traffic is more skewed than sessions: the top service's traffic share
    # and session share differ from lower-ranked ones non-monotonically
    # ("the load dots are fairly scattered"): at least one service has a
    # higher traffic rank than session rank by 3+ positions.
    by_traffic = sorted(ranking, key=lambda r: r.traffic_fraction, reverse=True)
    traffic_rank = {r.service: i + 1 for i, r in enumerate(by_traffic)}
    assert any(abs(traffic_rank[r.service] - r.rank) >= 3 for r in ranking)
