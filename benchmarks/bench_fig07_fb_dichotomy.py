"""Fig 7 — Facebook Live vs Facebook: the dichotomy is the service, not
the user base.

Reproduces: two applications with a largely common user population showing
completely different session-level statistics — Facebook Live behaves like
the streaming services of Figs 5a-5c (heavy sessions, super-linear v(d)),
Facebook like the message-exchange services of Figs 5d-5f.
"""

from repro.analysis.emd import emd
from repro.analysis.normalization import zero_mean
from repro.core.duration_model import fit_power_law
from repro.dataset.aggregation import pooled_duration_volume, pooled_volume_pdf
from repro.io.tables import format_table


def test_fig07_facebook_live_vs_facebook(benchmark, bench_campaign, emit):
    live = bench_campaign.for_service("FB Live")
    facebook = bench_campaign.for_service("Facebook")

    live_pdf = benchmark.pedantic(
        pooled_volume_pdf, args=(live,), rounds=3, iterations=1
    )
    fb_pdf = pooled_volume_pdf(facebook)
    live_beta = fit_power_law(pooled_duration_volume(live)).beta
    fb_beta = fit_power_law(pooled_duration_volume(facebook)).beta

    rows = [
        ["FB Live", len(live), live_pdf.mode_mb(), live_pdf.mean_mb(),
         live_pdf.std_log10(), live_beta],
        ["Facebook", len(facebook), fb_pdf.mode_mb(), fb_pdf.mean_mb(),
         fb_pdf.std_log10(), fb_beta],
    ]
    shape_distance = emd(zero_mean(live_pdf), zero_mean(fb_pdf))
    emit(
        "fig07_fb_dichotomy",
        format_table(
            ["service", "sessions", "mode MB", "mean MB", "std log10", "beta"],
            rows,
        )
        + f"\nzero-mean EMD(FB Live, Facebook) = {shape_distance:.3f} decades",
    )

    # FB Live is a streaming shape, Facebook a message-exchange shape.
    # (Table 1 puts their mean loads close together — the dichotomy the
    # paper highlights is in the PDF shape and the v(d) exponent.)
    assert live_pdf.std_log10() > 1.2 * fb_pdf.std_log10()
    assert live_beta > 1.0 > fb_beta
    assert shape_distance > 0.1
