"""Ablation — per-antenna vs network-wide arrival models in slicing.

Insight (a) of the paper says one *modelling strategy* fits all BSs, but
the fitted parameters (the Gaussian mean, the Pareto scale) are per-BS.
This ablation quantifies what the slicing use case loses if the operator
fits a single network-average arrival model instead of one per antenna:
lightly loaded antennas get over-provisioned, heavily loaded ones starve.
"""

import numpy as np

from repro.core.arrivals import fit_arrival_model_from_days
from repro.core.model_bank import ModelBank
from repro.core.service_mix import ServiceMix
from repro.dataset.aggregation import minute_arrival_counts
from repro.dataset.network import Network, NetworkConfig
from repro.dataset.simulator import SimulationConfig, simulate
from repro.dataset.services import TABLE1_SERVICES
from repro.io.tables import format_table
from repro.usecases.slicing.allocation import allocate_with_models
from repro.usecases.slicing.demand import campaign_peak_mask, demand_matrix
from repro.usecases.slicing.simulator import (
    evaluate_capacity,
    fit_antenna_arrival_models,
)

N_ANTENNAS = 10
N_DAYS = 2
N_MODEL_DAYS = 4


def test_ablation_arrival_model_granularity(benchmark, emit):
    rng = np.random.default_rng(17)
    network = Network(NetworkConfig(n_bs=N_ANTENNAS), rng)
    campaign = simulate(network, SimulationConfig(n_days=N_DAYS), rng)
    bs_ids = list(range(N_ANTENNAS))
    real_demand = demand_matrix(campaign, bs_ids, N_DAYS)
    peak = campaign_peak_mask(N_DAYS)

    bank = ModelBank.fit_from_table(
        campaign, services=list(TABLE1_SERVICES), min_sessions=300
    )
    mix = ServiceMix.from_measurements(campaign).restricted_to(bank.services())

    # Per-antenna arrival models (the paper's setting).
    per_antenna = fit_antenna_arrival_models(campaign, bs_ids, N_DAYS)
    # One network-average model reused at every antenna.
    counts = minute_arrival_counts(campaign, bs_ids, N_DAYS)
    shared = fit_arrival_model_from_days(
        counts.reshape(N_ANTENNAS * N_DAYS, 1440)
    )
    network_wide = {bs: shared for bs in bs_ids}

    def run(arrival_models):
        capacity = allocate_with_models(
            arrival_models, mix, bank, np.random.default_rng(5),
            n_sim_days=N_MODEL_DAYS,
        )
        return evaluate_capacity(real_demand, capacity, peak)

    per_antenna_sat = benchmark.pedantic(
        run, args=(per_antenna,), rounds=1, iterations=1
    )
    shared_sat = run(network_wide)

    rows = []
    for bs in bs_ids:
        rows.append(
            [
                bs,
                network.station(bs).decile + 1,
                100 * float(per_antenna_sat[bs].mean()),
                100 * float(shared_sat[bs].mean()),
            ]
        )
    emit(
        "ablation_arrival_granularity",
        format_table(
            ["antenna", "decile", "per-antenna model %", "network-wide model %"],
            rows,
        )
        + f"\n\noverall: per-antenna {100 * per_antenna_sat.mean():.2f} %  "
        f"network-wide {100 * shared_sat.mean():.2f} %",
    )

    # The busiest antenna starves under the shared model...
    busiest = bs_ids[-1]
    assert shared_sat[busiest].mean() < per_antenna_sat[busiest].mean() - 0.1
    # ...which per-antenna fitting avoids.
    assert per_antenna_sat.mean() > shared_sat.mean()
