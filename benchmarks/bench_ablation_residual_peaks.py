"""Ablation — number of residual peaks and derivative threshold.

Design choices probed (Section 5.2 / DESIGN.md):

* the cap of 3 residual peaks per model ("the rare additional peaks have
  negligible weight"): sweeping 0..5 peaks must show diminishing returns in
  EMD after the third;
* footnote 3's robustness claim: extraction should be stable across a wide
  range of derivative thresholds.
"""


from repro.core.volume_model import decompose_volume_pdf, fit_volume_model
from repro.dataset.aggregation import pooled_volume_pdf
from repro.io.tables import format_table

SERVICES = ("Netflix", "Deezer", "Twitch", "Facebook")


def test_ablation_residual_peak_count(benchmark, bench_campaign, emit):
    pdfs = {
        name: pooled_volume_pdf(bench_campaign.for_service(name))
        for name in SERVICES
    }
    benchmark.pedantic(
        fit_volume_model, args=(pdfs["Netflix"],), rounds=3, iterations=1
    )

    rows = []
    for name, measured in pdfs.items():
        emds = []
        for max_peaks in range(6):
            model = fit_volume_model(measured, max_peaks=max_peaks)
            emds.append(model.error_against(measured))
        rows.append([name, *emds])
    emit(
        "ablation_residual_peaks",
        "EMD vs number of allowed residual peaks:\n"
        + format_table(
            ["service", "0 peaks", "1", "2", "3", "4", "5"], rows
        ),
    )

    for row in rows:
        name, emds = row[0], row[1:]
        # Peaks help: the best peak-bearing model beats the plain
        # log-normal.
        assert min(emds[1:]) <= emds[0] + 1e-9, name
        # Diminishing returns: going beyond 3 peaks buys almost nothing.
        assert emds[5] > emds[3] - 0.15 * emds[3], name


def test_ablation_derivative_threshold(benchmark, bench_campaign, emit):
    measured = pooled_volume_pdf(bench_campaign.for_service("Deezer"))
    benchmark.pedantic(
        decompose_volume_pdf, args=(measured,), rounds=3, iterations=1
    )
    rows = []
    for threshold in (0.1, 0.3, 0.5, 1.0, 1.5, 3.0):
        trace = decompose_volume_pdf(measured, derivative_threshold=threshold)
        modes = sorted(round(10**p.mu, 1) for p in trace.peaks)
        rows.append(
            [
                threshold,
                len(trace.peaks),
                trace.model.error_against(measured),
                ", ".join(str(m) for m in modes),
            ]
        )
    emit(
        "ablation_derivative_threshold",
        "Deezer peak extraction vs derivative threshold (footnote 3):\n"
        + format_table(["threshold", "peaks", "EMD", "modes MB"], rows),
    )

    # Robustness: over the central threshold range the two Deezer song
    # modes (3.5 / 7.6 MB, Section 4.2) are consistently recovered.
    central = [row for row in rows if 0.3 <= row[0] <= 1.5]
    for row in central:
        assert any(abs(float(m) - 3.5) < 0.8 for m in row[3].split(", ")), row
    emds = [row[2] for row in central]
    assert max(emds) < 1.5 * min(emds)
