"""Throughput benchmark of the batched, arena-backed synthesis engine.

Times the pre-PR per-unit generation loop
(:func:`~repro.core.generator.generate_campaign_reference`) against the
batched engine on the same workload and seed, records the results —
sessions per second, speedups, per-phase peak RSS — into
``BENCH_generator.json``, and verifies the engine's determinism contracts
along the way (serial == parallel, chunked == unchunked, byte for byte).

Two sizes::

    python benchmarks/bench_perf_generator.py            # 200 BS x 7 days
    python benchmarks/bench_perf_generator.py --smoke    # CI-sized

Methodology notes, also embedded in the JSON:

* The ``arena`` phase consumes :meth:`TrafficGenerator.iter_campaign_chunks`
  chunk by chunk through one preallocated reused
  :class:`~repro.dataset.records.SessionArena` — the engine's intended mode
  at campaign scale, and the path :meth:`TrafficGenerator.spool_campaign`
  feeds the artifact cache from.  Throughput is best-of-N over full passes
  (the shared VM's timing noise reaches tens of percent; the minimum is
  the defensible estimate of the code's cost), with the median reported
  alongside.  The phase is gated against the pre-refactor recording: at
  least ``SPEEDUP_TARGET``x its sessions/s at equal-or-lower peak RSS.
* Peak RSS is measured per phase in a forked child process, because
  ``ru_maxrss`` is a monotone high-water mark — a parent-process snapshot
  after several phases can only report the largest of them.  Children are
  forked before any campaign-sized allocation happens in the parent, so
  each phase's figure reflects that phase alone on top of the fitted
  models.
* The materialized timing builds the full in-memory table, like the
  reference loop does; at tens of millions of sessions both pay the
  page-fault cost of gigabyte-scale fresh allocations.
* The telemetry phase times the same streamed workload with a full
  :class:`~repro.obs.telemetry.Telemetry` attached (chunk spans, metrics,
  JSONL sink) and reports the overhead against the uninstrumented path —
  the minima of many interleaved short arms, since shared-machine noise
  only ever adds time.  Each arm repeats the workload until the plain
  pass takes at least ``TELEMETRY_MIN_PLAIN_S``, so the <3% relative
  budget is measured on a meaningfully sized denominator; the verdict is
  the relative comparison alone, with no absolute-noise epsilon that
  could mask a real breach.
"""

import argparse
import json
import math
import multiprocessing
import resource
import sys
import tempfile
import time

import numpy as np

from repro.core.arrivals import ArrivalModel
from repro.core.generator import (
    DEFAULT_CHUNK_SESSIONS,
    TrafficGenerator,
    generate_campaign_reference,
)
from repro.core.model_bank import ModelBank
from repro.core.service_mix import ServiceMix
from repro.dataset.network import Network, NetworkConfig, decile_peak_rate
from repro.dataset.records import SessionArena
from repro.dataset.simulator import SimulationConfig, simulate

#: Full workload — the acceptance scale of the batched engine.
FULL_BS, FULL_DAYS = 200, 7

#: Smoke workload — small enough for a CI job, same code paths.  This is
#: also the workload of the committed ``BENCH_generator.json`` and of the
#: pre-refactor recording the arena phase is gated against.
SMOKE_BS, SMOKE_DAYS = 40, 1

#: Days of the identity checks (full BS population, but one day: each
#: check needs several complete runs).
IDENTITY_DAYS = 1

#: Root seed shared by every timed run.
SEED = 0

#: Pre-refactor ``batched_streamed`` recording (same smoke workload, same
#: seed, this machine) from BENCH_generator.json before the arena-backed
#: engine landed: the denominator of the arena phase's speedup gate and
#: the ceiling of its peak-RSS gate.
PRE_REFACTOR_STREAMED_PER_S = 13_464_239
PRE_REFACTOR_PEAK_RSS_MB = 140.8

#: The arena phase must stream at least this multiple of the
#: pre-refactor recording.
SPEEDUP_TARGET = 3.0

#: Best-of trial counts for the arena throughput phase — per forked
#: child; the phase runs in two children spaced across the benchmark, so
#: a multi-second slow window of the shared VM cannot depress every
#: trial.  The smoke pass is tens of milliseconds, so many trials are
#: cheap and squeeze noise out of the minimum; the full pass is seconds
#: per trial.
ARENA_TRIALS_SMOKE, ARENA_TRIALS_FULL = 24, 2

#: Telemetry overhead budget (relative, no absolute slack) and the
#: minimum plain-arm duration the workload is repeated up to, so the
#: relative comparison has a meaningful denominator.
TELEMETRY_OVERHEAD_PCT = 3.0
TELEMETRY_MIN_PLAIN_S = 0.3

#: Interleaved plain/instrumented trials for the telemetry phase.  Many
#: short arms spread both minima across ~10s of wall clock, so a slow
#: window of the shared VM cannot bias one arm alone.
TELEMETRY_TRIALS = 15


def peak_rss_mb() -> float:
    """Process high-water resident set size in MiB (monotone)."""
    ru_maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    scale = 1024.0 if sys.platform == "darwin" else 1.0
    return ru_maxrss * scale / 1024.0


def isolated_phase(fn, *args) -> tuple[dict, float]:
    """Run ``fn(*args)`` in a forked child; return (result, child RSS MiB).

    ``ru_maxrss`` never goes down, so phases measured in one process mask
    each other; a fresh fork gives each phase its own high-water mark on
    top of whatever the parent had resident at fork time.
    """
    context = multiprocessing.get_context("fork")
    queue = context.SimpleQueue()

    def target() -> None:
        result = fn(*args)
        queue.put((result, peak_rss_mb()))

    process = context.Process(target=target)
    process.start()
    result, rss = queue.get()
    process.join()
    if process.exitcode != 0:
        raise RuntimeError(f"phase child exited with {process.exitcode}")
    return result, rss


def build_generator(n_bs: int) -> TrafficGenerator:
    """A generator with models fitted on a small simulated campaign.

    Arrival intensities sweep the paper's BS deciles so the workload mixes
    quiet and busy cells, as a real deployment snapshot would.
    """
    network = Network(NetworkConfig(n_bs=20), np.random.default_rng(101))
    campaign = simulate(
        network, SimulationConfig(n_days=2), np.random.default_rng(202)
    )
    bank = ModelBank.fit_from_table(campaign, min_sessions=500)
    mix = ServiceMix.from_measurements(campaign).restricted_to(
        bank.services()
    )
    arrivals = {}
    for bs_id in range(n_bs):
        peak = decile_peak_rate(1 + (bs_id % 9))
        arrivals[bs_id] = ArrivalModel(peak, peak / 10.0, peak / 8.0)
    return TrafficGenerator(arrivals, mix, bank)


def tables_identical(a, b) -> bool:
    """Byte-level equality of two session tables (dtypes included)."""
    for column in type(a).COLUMNS:
        left, right = getattr(a, column), getattr(b, column)
        if left.dtype != right.dtype or not np.array_equal(left, right):
            return False
    return True


def check_determinism(generator: TrafficGenerator) -> dict:
    """Serial==parallel and chunked==unchunked byte-identity verdicts."""
    serial = generator.generate_campaign(IDENTITY_DAYS, SEED)
    parallel = generator.generate_campaign(IDENTITY_DAYS, SEED, jobs=2)
    chunked = generator.generate_campaign(
        IDENTITY_DAYS, SEED, chunk_sessions=10_000
    )
    return {
        "serial_equals_parallel": tables_identical(serial, parallel),
        "chunked_equals_unchunked": tables_identical(serial, chunked),
    }


def time_reference(generator: TrafficGenerator, n_days: int) -> dict:
    """Throughput of the pre-PR per-unit Python loop."""
    start = time.perf_counter()
    table = generate_campaign_reference(
        generator, n_days, np.random.default_rng(SEED)
    )
    elapsed = time.perf_counter() - start
    return {
        "sessions": len(table),
        "seconds": round(elapsed, 3),
        "sessions_per_s": round(len(table) / elapsed),
    }


def time_arena_streamed(
    generator: TrafficGenerator, n_days: int, trials: int
) -> dict:
    """Best-of-N throughput of the arena-backed streamed engine.

    Every trial is a full campaign pass through one preallocated, reused
    :class:`SessionArena`; chunk tables are zero-copy views into it.
    """
    arena = SessionArena(capacity=int(DEFAULT_CHUNK_SESSIONS * 1.1))
    times, sessions, peak_rows = [], 0, 0
    for _ in range(trials):
        start = time.perf_counter()
        sessions = 0
        for chunk in generator.iter_campaign_chunks(
            n_days, SEED, chunk_sessions=DEFAULT_CHUNK_SESSIONS, arena=arena
        ):
            sessions += len(chunk.table)
            peak_rows = max(peak_rows, len(chunk.table))
        times.append(time.perf_counter() - start)
    return {
        "sessions": sessions,
        "trial_seconds": times,
        "chunk_sessions": DEFAULT_CHUNK_SESSIONS,
        "arena_mb": round(arena.nbytes / (1 << 20), 1),
        "arena_capacity_rows": arena.capacity,
        "arena_peak_fill": round(peak_rows / arena.capacity, 3),
    }


def summarize_arena_trials(phases: list[dict]) -> dict:
    """Merge the spaced arena-phase children into one timing summary."""
    times = [t for phase in phases for t in phase["trial_seconds"]]
    sessions = phases[0]["sessions"]
    best = min(times)
    median = float(np.median(times))
    return {
        "sessions": sessions,
        "seconds": round(best, 3),
        "sessions_per_s": round(sessions / best),
        "median_sessions_per_s": round(sessions / median),
        "trials": len(times),
        "chunk_sessions": phases[0]["chunk_sessions"],
        "arena_mb": phases[0]["arena_mb"],
        "arena_capacity_rows": phases[0]["arena_capacity_rows"],
        "arena_peak_fill": max(p["arena_peak_fill"] for p in phases),
    }


def time_materialized(generator: TrafficGenerator, n_days: int) -> dict:
    """Throughput of the batched engine building the full table."""
    start = time.perf_counter()
    table = generator.generate_campaign(n_days, SEED)
    elapsed = time.perf_counter() - start
    return {
        "sessions": len(table),
        "seconds": round(elapsed, 3),
        "sessions_per_s": round(len(table) / elapsed),
    }


def time_telemetry_overhead(generator: TrafficGenerator, n_days: int) -> dict:
    """Streamed-path cost of a fully attached telemetry, min vs min.

    The workload is repeated until one plain arm takes at least
    :data:`TELEMETRY_MIN_PLAIN_S`, so the relative overhead is measured
    against a denominator that dwarfs timer resolution.  Arms run
    interleaved over many short trials and the verdict compares the two
    *minima*: scheduler/steal noise on a shared machine only ever adds
    time, so each arm's minimum is the defensible estimate of its true
    cost, and interleaving spreads both minima over the same seconds of
    wall clock.  Unlike the old absolute-epsilon slack, nothing can
    declare a real relative breach "within budget".  The instrumented arm
    carries the whole subsystem: chunk spans, throughput counters and the
    ``events.jsonl`` sink on real disk.
    """
    from repro.obs.telemetry import Telemetry

    def streamed_pass(telemetry) -> None:
        for chunk in generator.iter_campaign_chunks(
            n_days, SEED, chunk_sessions=DEFAULT_CHUNK_SESSIONS,
            telemetry=telemetry,
        ):
            len(chunk.table)

    calibration_start = time.perf_counter()
    streamed_pass(None)
    single_pass = time.perf_counter() - calibration_start
    repetitions = max(
        1, math.ceil(TELEMETRY_MIN_PLAIN_S / max(single_pass, 1e-9))
    )

    def timed_arm(telemetry) -> float:
        start = time.perf_counter()
        for _ in range(repetitions):
            streamed_pass(telemetry)
        return time.perf_counter() - start

    plain_times, instrumented_times = [], []
    with tempfile.TemporaryDirectory() as tmpdir:
        telemetry = Telemetry(directory=tmpdir, verbosity=0)
        for trial in range(TELEMETRY_TRIALS):
            # Alternate arm order so a machine that speeds up or slows
            # down over the phase cannot systematically favor one arm.
            if trial % 2 == 0:
                plain_times.append(timed_arm(None))
                instrumented_times.append(timed_arm(telemetry))
            else:
                instrumented_times.append(timed_arm(telemetry))
                plain_times.append(timed_arm(None))
        manifest = telemetry.finalize(command="bench-telemetry", seed=SEED)
    plain = min(plain_times)
    instrumented = min(instrumented_times)
    overhead_pct = 100.0 * (instrumented - plain) / plain
    return {
        "plain_seconds": round(plain, 4),
        "instrumented_seconds": round(instrumented, 4),
        "overhead_seconds": round(instrumented - plain, 4),
        "overhead_pct": round(overhead_pct, 2),
        "budget_pct": TELEMETRY_OVERHEAD_PCT,
        "repetitions_per_arm": repetitions,
        "trials": TELEMETRY_TRIALS,
        "within_budget": overhead_pct <= TELEMETRY_OVERHEAD_PCT,
        "spans_recorded": manifest["spans"]["total"],
        "sessions_counted": manifest["metrics"]["counters"].get(
            "generator.sessions", 0
        ),
    }


def run(smoke: bool) -> dict:
    """Execute every benchmark phase and assemble the report payload."""
    n_bs, n_days = (SMOKE_BS, SMOKE_DAYS) if smoke else (FULL_BS, FULL_DAYS)
    trials = ARENA_TRIALS_SMOKE if smoke else ARENA_TRIALS_FULL
    generator = build_generator(n_bs)
    generator.generate_bs_day(0, 0, np.random.default_rng(0))  # warm imports

    # RSS-measured phases fork first, before the parent materializes any
    # campaign-sized table: each child's ru_maxrss then covers its own
    # phase on top of the fitted models alone.  The arena phase runs in
    # two children separated by the other phases (tens of seconds), so a
    # slow window of the shared VM cannot depress every throughput trial.
    rss_at_fork = peak_rss_mb()
    arena_first, rss_first = isolated_phase(
        time_arena_streamed, generator, n_days, trials
    )
    materialized, materialized_rss = isolated_phase(
        time_materialized, generator, n_days
    )

    identity = check_determinism(generator)
    telemetry = time_telemetry_overhead(generator, n_days)
    reference = time_reference(generator, n_days)

    # Throughput-only second sample: this child forks from a parent that
    # has since materialized full tables, so its inherited RSS baseline
    # is inflated — the arena phase's RSS figure is the first (clean)
    # child's alone.
    arena_second, _ = isolated_phase(
        time_arena_streamed, generator, n_days, trials
    )
    streamed = summarize_arena_trials([arena_first, arena_second])
    streamed_rss = rss_first

    speedup = streamed["sessions_per_s"] / PRE_REFACTOR_STREAMED_PER_S
    arena = {
        "peak_rss_mb": round(streamed_rss, 1),
        "peak_rss_mb_at_fork": round(rss_at_fork, 1),
        "pre_refactor": {
            "sessions_per_s": PRE_REFACTOR_STREAMED_PER_S,
            "peak_rss_mb": PRE_REFACTOR_PEAK_RSS_MB,
        },
        "speedup_vs_pre_refactor": round(speedup, 2),
        "speedup_target": SPEEDUP_TARGET,
        "meets_speedup_target": speedup >= SPEEDUP_TARGET,
        "rss_within_pre_refactor": streamed_rss <= PRE_REFACTOR_PEAK_RSS_MB,
    }

    report = {
        "benchmark": "generator-throughput",
        "mode": "smoke" if smoke else "full",
        "workload": {"n_bs": n_bs, "n_days": n_days, "seed": SEED},
        "determinism": identity,
        "reference_loop": reference,
        "batched_streamed": streamed,
        "batched_materialized": {
            **materialized,
            "peak_rss_mb": round(materialized_rss, 1),
        },
        "arena": arena,
        "telemetry": telemetry,
        "speedup_streamed": round(
            streamed["sessions_per_s"] / reference["sessions_per_s"], 2
        ),
        "speedup_materialized": round(
            materialized["sessions_per_s"] / reference["sessions_per_s"], 2
        ),
        "peak_rss_mb_final": round(peak_rss_mb(), 1),
        "notes": (
            "streamed = iter_campaign_chunks through one preallocated "
            "reused SessionArena, best-of-N full passes (min defends "
            "against shared-VM noise; median reported alongside); "
            "materialized = full in-memory table, like the reference "
            "per-unit loop; phase peak RSS measured in forked children "
            "because ru_maxrss is monotone; identical root seed throughout"
        ),
    }
    return report


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized workload instead of the full 200 BS x 7 days",
    )
    parser.add_argument(
        "--output",
        default="BENCH_generator.json",
        help="report path (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    report = run(args.smoke)
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    arena = report["arena"]
    streamed = report["batched_streamed"]
    telemetry = report["telemetry"]
    print(f"workload: {report['workload']}")
    print(f"reference loop:      {report['reference_loop']['sessions_per_s']:>12,} sessions/s")
    print(
        f"arena streamed:      {streamed['sessions_per_s']:>12,} sessions/s "
        f"(best of {streamed['trials']}, median "
        f"{streamed['median_sessions_per_s']:,}; "
        f"{arena['speedup_vs_pre_refactor']}x pre-refactor, "
        f"RSS {arena['peak_rss_mb']} MiB)"
    )
    print(
        f"batched materialized:{report['batched_materialized']['sessions_per_s']:>12,} sessions/s "
        f"({report['speedup_materialized']}x reference, "
        f"RSS {report['batched_materialized']['peak_rss_mb']} MiB)"
    )
    print(
        f"telemetry overhead:  {telemetry['overhead_pct']:>11}% "
        f"(budget {telemetry['budget_pct']}%, "
        f"{telemetry['repetitions_per_arm']} reps/arm, "
        f"{telemetry['spans_recorded']} spans)"
    )
    print(f"determinism: {report['determinism']}")
    print(f"report: {args.output}")

    failed = False
    if not all(report["determinism"].values()):
        print("FAIL: determinism contract violated", file=sys.stderr)
        failed = True
    if not telemetry["within_budget"]:
        print(
            f"FAIL: telemetry overhead {telemetry['overhead_pct']}% "
            f"exceeds the {telemetry['budget_pct']}% budget",
            file=sys.stderr,
        )
        failed = True
    if not arena["meets_speedup_target"]:
        print(
            f"FAIL: arena streaming at {arena['speedup_vs_pre_refactor']}x "
            f"pre-refactor, target {arena['speedup_target']}x",
            file=sys.stderr,
        )
        failed = True
    if not arena["rss_within_pre_refactor"]:
        print(
            f"FAIL: arena phase peak RSS {arena['peak_rss_mb']} MiB exceeds "
            f"the pre-refactor {PRE_REFACTOR_PEAK_RSS_MB} MiB",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
