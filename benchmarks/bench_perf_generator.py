"""Throughput benchmark of the batched synthesis engine.

Times the pre-PR per-unit generation loop
(:func:`~repro.core.generator.generate_campaign_reference`) against the
batched engine on the same workload and seed, records the results —
sessions per second, speedups, peak RSS — into ``BENCH_generator.json``,
and verifies the engine's determinism contracts along the way (serial ==
parallel, chunked == unchunked, byte for byte).

Two sizes::

    python benchmarks/bench_perf_generator.py            # 200 BS x 7 days
    python benchmarks/bench_perf_generator.py --smoke    # CI-sized

Methodology notes, also embedded in the JSON:

* The streamed timing consumes :meth:`TrafficGenerator.iter_campaign_chunks`
  chunk by chunk — the engine's intended mode at campaign scale, and the
  path :meth:`TrafficGenerator.spool_campaign` feeds the artifact cache
  from.  Chunk buffers are recycled by the allocator, so throughput stays
  flat as the campaign grows.
* The materialized timing builds the full in-memory table, like the
  reference loop does; at tens of millions of sessions both it and the
  reference pay the page-fault cost of gigabyte-scale fresh allocations.
* Peak RSS is snapshotted after the streamed phase and again at exit: the
  streamed phase's high-water mark stays near the model-fitting footprint
  while the materialized phases scale with campaign size.
* The telemetry phase times the same streamed workload with a full
  :class:`~repro.obs.telemetry.Telemetry` attached (chunk spans, metrics,
  JSONL sink) and reports the overhead against the uninstrumented path —
  best-of-3 each way, runs interleaved to cancel machine drift.  The
  budget is <3% relative overhead (an absolute epsilon absorbs timer
  noise on very fast smoke workloads); breaching it fails the benchmark.
"""

import argparse
import json
import resource
import sys
import tempfile
import time

import numpy as np

from repro.core.arrivals import ArrivalModel
from repro.core.generator import (
    DEFAULT_CHUNK_SESSIONS,
    TrafficGenerator,
    generate_campaign_reference,
)
from repro.core.model_bank import ModelBank
from repro.core.service_mix import ServiceMix
from repro.dataset.network import Network, NetworkConfig, decile_peak_rate
from repro.dataset.simulator import SimulationConfig, simulate

#: Full workload — the acceptance scale of the batched engine.
FULL_BS, FULL_DAYS = 200, 7

#: Smoke workload — small enough for a CI job, same code paths.
SMOKE_BS, SMOKE_DAYS = 40, 1

#: Days of the identity checks (full BS population, but one day: each
#: check needs several complete runs).
IDENTITY_DAYS = 1

#: Root seed shared by every timed run.
SEED = 0

#: Telemetry overhead budget: relative bound plus an absolute epsilon
#: absorbing scheduler/timer noise on smoke-sized workloads.
TELEMETRY_OVERHEAD_PCT = 3.0
TELEMETRY_OVERHEAD_EPS_S = 0.05

#: Timing repetitions per telemetry-overhead arm (best-of).
TELEMETRY_TRIALS = 3


def peak_rss_mb() -> float:
    """Process high-water resident set size in MiB (monotone)."""
    ru_maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    scale = 1024.0 if sys.platform == "darwin" else 1.0
    return ru_maxrss * scale / 1024.0


def build_generator(n_bs: int) -> TrafficGenerator:
    """A generator with models fitted on a small simulated campaign.

    Arrival intensities sweep the paper's BS deciles so the workload mixes
    quiet and busy cells, as a real deployment snapshot would.
    """
    network = Network(NetworkConfig(n_bs=20), np.random.default_rng(101))
    campaign = simulate(
        network, SimulationConfig(n_days=2), np.random.default_rng(202)
    )
    bank = ModelBank.fit_from_table(campaign, min_sessions=500)
    mix = ServiceMix.from_measurements(campaign).restricted_to(
        bank.services()
    )
    arrivals = {}
    for bs_id in range(n_bs):
        peak = decile_peak_rate(1 + (bs_id % 9))
        arrivals[bs_id] = ArrivalModel(peak, peak / 10.0, peak / 8.0)
    return TrafficGenerator(arrivals, mix, bank)


def tables_identical(a, b) -> bool:
    """Byte-level equality of two session tables (dtypes included)."""
    for column in type(a).COLUMNS:
        left, right = getattr(a, column), getattr(b, column)
        if left.dtype != right.dtype or not np.array_equal(left, right):
            return False
    return True


def check_determinism(generator: TrafficGenerator) -> dict:
    """Serial==parallel and chunked==unchunked byte-identity verdicts."""
    serial = generator.generate_campaign(IDENTITY_DAYS, SEED)
    parallel = generator.generate_campaign(IDENTITY_DAYS, SEED, jobs=2)
    chunked = generator.generate_campaign(
        IDENTITY_DAYS, SEED, chunk_sessions=10_000
    )
    return {
        "serial_equals_parallel": tables_identical(serial, parallel),
        "chunked_equals_unchunked": tables_identical(serial, chunked),
    }


def time_reference(generator: TrafficGenerator, n_days: int) -> dict:
    """Throughput of the pre-PR per-unit Python loop."""
    start = time.perf_counter()
    table = generate_campaign_reference(
        generator, n_days, np.random.default_rng(SEED)
    )
    elapsed = time.perf_counter() - start
    return {
        "sessions": len(table),
        "seconds": round(elapsed, 3),
        "sessions_per_s": round(len(table) / elapsed),
    }


def time_streamed(generator: TrafficGenerator, n_days: int) -> dict:
    """Throughput of the batched engine consumed chunk by chunk."""
    start = time.perf_counter()
    sessions = 0
    for chunk in generator.iter_campaign_chunks(
        n_days, SEED, chunk_sessions=DEFAULT_CHUNK_SESSIONS
    ):
        sessions += len(chunk.table)
    elapsed = time.perf_counter() - start
    return {
        "sessions": sessions,
        "seconds": round(elapsed, 3),
        "sessions_per_s": round(sessions / elapsed),
        "chunk_sessions": DEFAULT_CHUNK_SESSIONS,
    }


def time_materialized(generator: TrafficGenerator, n_days: int) -> dict:
    """Throughput of the batched engine building the full table."""
    start = time.perf_counter()
    table = generator.generate_campaign(n_days, SEED)
    elapsed = time.perf_counter() - start
    return {
        "sessions": len(table),
        "seconds": round(elapsed, 3),
        "sessions_per_s": round(len(table) / elapsed),
    }


def time_telemetry_overhead(generator: TrafficGenerator, n_days: int) -> dict:
    """Streamed-path cost of a fully attached telemetry, best-of-N.

    Runs the plain and the instrumented arm interleaved so slow machine
    drift hits both equally, and judges the best times against the <3%
    budget (with the absolute epsilon for timer noise).  The instrumented
    arm carries the whole subsystem: chunk spans, throughput counters and
    the ``events.jsonl`` sink on real disk.
    """
    from repro.obs.telemetry import Telemetry

    def streamed_once(telemetry) -> float:
        start = time.perf_counter()
        for chunk in generator.iter_campaign_chunks(
            n_days, SEED, chunk_sessions=DEFAULT_CHUNK_SESSIONS,
            telemetry=telemetry,
        ):
            len(chunk.table)
        return time.perf_counter() - start

    plain_times, instrumented_times = [], []
    with tempfile.TemporaryDirectory() as tmpdir:
        telemetry = Telemetry(directory=tmpdir, verbosity=0)
        for _ in range(TELEMETRY_TRIALS):
            plain_times.append(streamed_once(None))
            instrumented_times.append(streamed_once(telemetry))
        manifest = telemetry.finalize(command="bench-telemetry", seed=SEED)
    plain = min(plain_times)
    instrumented = min(instrumented_times)
    overhead_s = instrumented - plain
    overhead_pct = 100.0 * overhead_s / plain
    within_budget = (
        overhead_pct <= TELEMETRY_OVERHEAD_PCT
        or overhead_s <= TELEMETRY_OVERHEAD_EPS_S
    )
    return {
        "plain_seconds": round(plain, 4),
        "instrumented_seconds": round(instrumented, 4),
        "overhead_pct": round(overhead_pct, 2),
        "budget_pct": TELEMETRY_OVERHEAD_PCT,
        "epsilon_s": TELEMETRY_OVERHEAD_EPS_S,
        "trials": TELEMETRY_TRIALS,
        "within_budget": within_budget,
        "spans_recorded": manifest["spans"]["total"],
        "sessions_counted": manifest["metrics"]["counters"].get(
            "generator.sessions", 0
        ),
    }


def run(smoke: bool) -> dict:
    """Execute every benchmark phase and assemble the report payload."""
    n_bs, n_days = (SMOKE_BS, SMOKE_DAYS) if smoke else (FULL_BS, FULL_DAYS)
    generator = build_generator(n_bs)
    generator.generate_campaign(1, SEED)  # warm code paths + allocator

    identity = check_determinism(generator)
    streamed = time_streamed(generator, n_days)
    rss_streamed = peak_rss_mb()
    telemetry = time_telemetry_overhead(generator, n_days)
    materialized = time_materialized(generator, n_days)
    reference = time_reference(generator, n_days)

    report = {
        "benchmark": "generator-throughput",
        "mode": "smoke" if smoke else "full",
        "workload": {"n_bs": n_bs, "n_days": n_days, "seed": SEED},
        "determinism": identity,
        "reference_loop": reference,
        "batched_streamed": streamed,
        "batched_materialized": materialized,
        "telemetry": telemetry,
        "speedup_streamed": round(
            streamed["sessions_per_s"] / reference["sessions_per_s"], 2
        ),
        "speedup_materialized": round(
            materialized["sessions_per_s"] / reference["sessions_per_s"], 2
        ),
        "peak_rss_mb_after_streamed": round(rss_streamed, 1),
        "peak_rss_mb_final": round(peak_rss_mb(), 1),
        "notes": (
            "streamed = iter_campaign_chunks consumed chunk by chunk (the "
            "engine's bounded-memory campaign mode, also behind "
            "spool_campaign); materialized = full in-memory table, like "
            "the reference per-unit loop; identical root seed throughout"
        ),
    }
    return report


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized workload instead of the full 200 BS x 7 days",
    )
    parser.add_argument(
        "--output",
        default="BENCH_generator.json",
        help="report path (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    report = run(args.smoke)
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    print(f"workload: {report['workload']}")
    print(f"reference loop:      {report['reference_loop']['sessions_per_s']:>12,} sessions/s")
    print(f"batched streamed:    {report['batched_streamed']['sessions_per_s']:>12,} sessions/s ({report['speedup_streamed']}x)")
    print(f"batched materialized:{report['batched_materialized']['sessions_per_s']:>12,} sessions/s ({report['speedup_materialized']}x)")
    telemetry = report["telemetry"]
    print(
        f"telemetry overhead:  {telemetry['overhead_pct']:>11}% "
        f"(budget {telemetry['budget_pct']}%, "
        f"{telemetry['spans_recorded']} spans)"
    )
    print(f"determinism: {report['determinism']}")
    print(f"report: {args.output}")
    if not all(report["determinism"].values()):
        print("FAIL: determinism contract violated", file=sys.stderr)
        return 1
    if not telemetry["within_budget"]:
        print(
            f"FAIL: telemetry overhead {telemetry['overhead_pct']}% "
            f"exceeds the {telemetry['budget_pct']}% budget",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
