"""Fig 5 — volume PDFs and duration–volume pairs for six showcase services.

Reproduces: the per-service statistics of Netflix, Twitch, Deezer, Amazon,
Pokemon GO and Waze, split into working days and weekends.  The series
reported per service are the PDF summary statistics (mode / median / mean),
the paper-narrative landmarks (Netflix ~40 MB mode, Deezer 3.5 & 7.6 MB
modes, Twitch ~20 MB mode), and the workday-vs-weekend EMD, which the paper
shows to be negligible.
"""

import numpy as np

from benchmarks.conftest import BENCH_N_DAYS
from repro.analysis.emd import emd
from repro.dataset.aggregation import pooled_duration_volume, pooled_volume_pdf
from repro.dataset.simulator import SimulationConfig
from repro.io.tables import format_table

SHOWCASE = ("Netflix", "Twitch", "Deezer", "Amazon", "Pokemon GO", "Waze")


def test_fig05_showcase_service_statistics(benchmark, bench_campaign, emit):
    netflix = bench_campaign.for_service("Netflix")
    benchmark.pedantic(
        pooled_volume_pdf, args=(netflix,), rounds=3, iterations=1
    )

    config = SimulationConfig(n_days=BENCH_N_DAYS)
    workdays, weekend = config.working_days(), config.weekend_days()

    rows = []
    for service in SHOWCASE:
        sub = bench_campaign.for_service(service)
        if len(sub) < 200:
            continue
        pdf = pooled_volume_pdf(sub)
        curve = pooled_duration_volume(sub)
        durations, volumes, _ = curve.observed()
        work_pdf = pooled_volume_pdf(sub.for_days(workdays))
        weekend_pdf = pooled_volume_pdf(sub.for_days(weekend))
        day_emd = emd(work_pdf, weekend_pdf)
        rows.append(
            [
                service,
                len(sub),
                pdf.mode_mb(),
                pdf.quantile_mb(0.5),
                pdf.mean_mb(),
                float(volumes[np.argmax(durations)]),
                day_emd,
            ]
        )
    sparklines = []
    glyphs = " .:-=+*#"
    for service in SHOWCASE:
        sub = bench_campaign.for_service(service)
        if len(sub) < 200:
            continue
        density = pooled_volume_pdf(sub).normalized().density
        # Downsample the global grid to 72 columns for the text sparkline.
        blocks = density[: 360 - 360 % 72].reshape(72, -1).mean(axis=1)
        top = blocks.max() or 1.0
        line = "".join(
            glyphs[min(int(b / top * (len(glyphs) - 1)), len(glyphs) - 1)]
            for b in blocks
        )
        sparklines.append(f"{service:>10s} |{line}|")
    emit(
        "fig05_service_pdfs",
        format_table(
            [
                "service",
                "sessions",
                "mode MB",
                "median MB",
                "mean MB",
                "v(d) at max d",
                "EMD work/weekend",
            ],
            rows,
        )
        + "\n\nF_s(x) over log10(MB), 0.1 KB .. 100 GB (Fig 5 top panes):\n"
        + "\n".join(sparklines),
    )

    stats = {row[0]: row for row in rows}
    # Streaming vs message-exchange dichotomy in per-session load.
    assert stats["Netflix"][4] > 10 * stats["Waze"][4]
    assert stats["Twitch"][4] > 10 * stats["Pokemon GO"][4]
    # Day-type invariance (Section 4.4): EMD across day types is tiny.
    for row in rows:
        assert row[6] < 0.1
